//! # uncertain-kcenter
//!
//! A production-quality Rust implementation of
//! *Improvements on the k-center problem for uncertain data*
//! (Sharareh Alipour & Amir Jafari, PODS 2018 / arXiv:1708.09180), together
//! with every substrate the paper depends on: metric spaces, deterministic
//! k-center solvers, exact expected-cost machinery, an exact 1-D solver,
//! and baselines.
//!
//! ## The problem
//!
//! Each input point `Pᵢ` is *uncertain*: an independent discrete
//! distribution over `zᵢ` possible locations. The k-center objective
//! becomes an expectation over the product space of realizations:
//!
//! ```text
//! Ecost(c₁..c_k) = Σ_{R∈Ω} prob(R) · max_i d(P̂ᵢ, C)
//! ```
//!
//! In the *assigned* versions every uncertain point is served by one fixed
//! center across realizations. The paper's algorithms replace each point by
//! a certain representative (the expected point `P̄` in Euclidean space,
//! the 1-center `P̃` in any metric space), solve deterministic k-center on
//! the representatives, and assign points by an expected-distance /
//! expected-point / 1-center rule — achieving factors 2 through 5+ε
//! depending on space and rule (paper Table 1).
//!
//! ## Quick start
//!
//! ```
//! use uncertain_kcenter::prelude::*;
//!
//! // A workload of 40 uncertain points around 3 cluster sites in R^2.
//! let set = clustered(7, 40, 4, 2, 3, 5.0, 1.0, ProbModel::Random);
//!
//! // The paper's pipeline as a validated request: expected points ->
//! // Gonzalez -> EP assignment. Bad input is a typed SolveError, not a
//! // panic.
//! let problem = Problem::euclidean(set, 3).unwrap();
//! let config = SolverConfig::builder()
//!     .rule(AssignmentRule::ExpectedPoint)
//!     .build()
//!     .unwrap();
//! let sol = problem.solve(&config).unwrap();
//!
//! // Certified sanity, straight from the per-solve report: the exact
//! // expected cost respects the lower bound.
//! assert!(sol.report.lower_bound.unwrap() <= sol.ecost);
//!
//! // Throughput workloads fan out with bit-identical results:
//! let problems = vec![problem.clone(), problem];
//! let results = solve_batch(&problems, &config);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```
//!
//! ## Migrating from the 0.1 free functions
//!
//! | legacy (still compiles, `#[deprecated]`) | replacement |
//! |---|---|
//! | `solve_euclidean(&set, k, rule, solver)` | `Problem::euclidean(set, k)?.solve(&config)?` |
//! | `solve_metric(&set, k, rule, solver, &pool, &m)` | `Problem::in_metric(set, k, m, pool)?.solve(&config)?` |
//! | `CertainSolver::Gonzalez` | `SolverConfig::builder().strategy(CertainStrategy::Gonzalez)` |
//! | `CertainSolver::Grid(GridOptions { eps, .. })` | `.strategy(CertainStrategy::Grid).eps(eps)` |
//! | `MetricAssignmentRule::*` | the unified `AssignmentRule::*` |
//! | panic on `k == 0` / empty pool | `Err(SolveError::ZeroK)` / `Err(SolveError::EmptyCandidates)` |
//! | hand-rolled timing around the call | `solution.report.timings` / `.distance_evals` |
//! | `lower_bound_euclidean(&set, k)` after solving | `solution.report.lower_bound` (one call does both) |
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`pool`] | the shared execution layer: worker pool, deterministic chunked execution, `Exec` contexts |
//! | [`metric`] | `Metric` trait; Euclidean/L₁/L∞/L_p, distance matrices, graph & tree metrics, axiom validators |
//! | [`geometry`] | minimum enclosing balls, Weiszfeld medians, convex piecewise-linear functions, compass search |
//! | [`kcenter`] | Gonzalez, local search, exact discrete, grid (1+ε), exact 1-D — the pluggable certain solvers |
//! | [`uncertain`] | the model, exact `E[max]`, expected costs, representatives, workload generators |
//! | [`core`] | `Problem`/`SolverConfig`/`Solution`, the Theorems 2.1–2.7 pipelines, certified lower bounds |
//! | [`onedim`] | the exact 1-D solver (Table 1 row 8) |
//! | [`baselines`] | mode / all-locations / sampling heuristics and brute-force optima |
//! | [`extensions`] | uncertain k-median / k-means, driven by the same `SolverConfig` |
//! | [`stream`] | memory-bounded streaming: `StreamSummary` / `StreamSolver`, epoch reports, state digests |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ukc_baselines as baselines;
pub use ukc_core as core;
pub use ukc_extensions as extensions;
pub use ukc_geometry as geometry;
pub use ukc_kcenter as kcenter;
pub use ukc_metric as metric;
pub use ukc_onedim as onedim;
pub use ukc_pool as pool;
pub use ukc_stream as stream;
pub use ukc_uncertain as uncertain;

/// One-stop imports for applications.
pub mod prelude {
    pub use ukc_baselines::{
        all_locations_baseline, brute_force_restricted, brute_force_unrestricted, mode_baseline,
        sample_union_baseline, BruteForceLimits,
    };
    pub use ukc_core::{
        assign_ed, assign_ed_weighted, assign_ep, assign_oc, expected_point_one_center,
        lower_bound_euclidean, lower_bound_metric, lower_bound_one_center, reference_one_center,
        solve_batch, solve_batch_threads, AssignmentMode, AssignmentRule, CandidatePolicy,
        CertainStrategy, ContinuousSpace, DistanceEvals, EuclideanSpace, MetricAssignmentRule,
        Problem, Report, Solution, SolveError, SolverConfig, SolverConfigBuilder, StageTimings,
    };
    #[allow(deprecated)]
    pub use ukc_core::{
        solve_euclidean, solve_metric, CertainSolver, EuclideanSolution, MetricCertainSolver,
        MetricSolution,
    };
    #[allow(deprecated)]
    pub use ukc_extensions::StreamingUncertainKCenter;
    pub use ukc_extensions::{
        uncertain_kmeans, uncertain_kmeans_configured, uncertain_kmedian, uncertain_kmedian_exact,
        uncertain_kmedian_local_search, StreamingKCenter,
    };
    pub use ukc_kcenter::{
        exact_discrete_kcenter, gonzalez, gonzalez_indices_weighted, grid_kcenter, kcenter_cost,
        kcenter_cost_weighted, local_search_kcenter, one_d_kcenter, ExactOptions, GridOptions,
    };
    pub use ukc_metric::{
        Chebyshev, DistCounter, DistanceOracle, Euclidean, FiniteMetric, Kernel, Manhattan, Metric,
        Minkowski, Point, PointId, PointStore, StoreOracle, TreeMetric, WeightedGraph,
    };
    pub use ukc_onedim::{solve_one_d, OneDimSolution};
    pub use ukc_stream::{
        EpochReport, StreamReport, StreamSolution, StreamSolver, StreamSolverBuilder, StreamSummary,
    };
    pub use ukc_uncertain::generators::{
        clustered, line_instance, on_finite_metric, ring, two_scale, uniform_box, ProbModel,
    };
    pub use ukc_uncertain::{
        cost_cdf_assigned, cost_quantile_assigned, ecost_assigned, ecost_monte_carlo,
        ecost_unassigned, expected_distance, expected_max, expected_point, expected_spreads,
        max_cdf, max_quantile, mode_location, one_center_discrete, one_center_euclidean,
        try_expected_max, try_max_cdf, try_max_quantile, AtomsError, UncertainPoint, UncertainSet,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_pipeline() {
        let set = clustered(1, 10, 3, 2, 2, 4.0, 1.0, ProbModel::Uniform);
        let sol = Problem::euclidean(set.clone(), 2)
            .unwrap()
            .solve(
                &SolverConfig::builder()
                    .rule(AssignmentRule::ExpectedDistance)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert!(sol.ecost >= lower_bound_euclidean(&set, 2) - 1e-9);
        assert_eq!(sol.report.lower_bound, Some(lower_bound_euclidean(&set, 2)));
    }
}
