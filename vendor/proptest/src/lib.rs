//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! implements the subset of proptest this workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Strategy::prop_map`];
//! * range strategies (`0.0f64..1.0`, `1usize..=4`, ...), tuple
//!   strategies, and [`collection::vec()`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`ProptestConfig::with_cases`], [`prop_assert!`] and
//!   [`prop_assert_eq!`].
//!
//! Differences from upstream, deliberately accepted: no shrinking (a
//! failing case reports the panic directly; cases are deterministic per
//! test name, so failures reproduce exactly), and no persistence files.

#![forbid(unsafe_code)]

/// Test-case generation config.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic generator driving test-case production.
pub mod test_runner {
    /// SplitMix64 seeded from the test's name: every run of a given
    /// property replays the identical case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec length range");
            Self { lo, hi }
        }
    }

    /// Generates `Vec`s of values from `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a property-level condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts property-level inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.0, n in 1usize..=5, s in 0u64..100) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..=5).contains(&n));
            prop_assert!(s < 100);
        }

        #[test]
        fn vec_and_tuples_compose(
            v in prop::collection::vec(((-1.0f64..1.0, -1.0f64..1.0), 0.1f64..1.0), 2..=4)
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            for ((x, y), w) in v {
                prop_assert!((-1.0..1.0).contains(&x) && (-1.0..1.0).contains(&y));
                prop_assert!((0.1..1.0).contains(&w));
            }
        }

        #[test]
        fn prop_map_applies(total in prop::collection::vec(1u32..10, 3..=3).prop_map(|v| v.iter().sum::<u32>())) {
            prop_assert!((3..30).contains(&total));
        }
    }
}
