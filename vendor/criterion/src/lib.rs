//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! implements the subset of criterion's API the workspace's benches use —
//! groups, `bench_function` / `bench_with_input`, `sample_size`,
//! `warm_up_time`, `measurement_time`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros — backed by a plain
//! wall-clock harness: warm up, then take `sample_size` timed samples and
//! report min / mean / max per iteration.
//!
//! Run with `cargo bench`. Passing `--quick` (or setting the env var
//! `CRITERION_QUICK=1`) caps warm-up and measurement at a few
//! milliseconds for smoke runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Throughput annotation (recorded, reported as elements/second).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Config {
    fn quick() -> bool {
        std::env::var_os("CRITERION_QUICK").is_some() || std::env::args().any(|a| a == "--quick")
    }

    fn effective(self) -> Config {
        if Self::quick() {
            Config {
                sample_size: self.sample_size.min(3),
                warm_up_time: Duration::from_millis(5),
                measurement_time: Duration::from_millis(20),
            }
        } else {
            self
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            config: self.config,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benches a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_bench(None, &id.into(), self.config, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            Some(&self.name),
            &id.into(),
            self.config,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benches `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            Some(&self.name),
            &id,
            self.config,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the bench closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    config: Config,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`: warm-up, then `sample_size` samples of a batch each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let cfg = self.config;
        // Warm-up while estimating the per-iteration time.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < cfg.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().div_f64(warm_iters as f64);
        // Size batches so all samples fit the measurement budget.
        let budget = cfg.measurement_time.div_f64(cfg.sample_size as f64);
        let batch = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_secs_f64() / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64
        };
        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..cfg.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed().div_f64(batch as f64));
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_bench(
    group: Option<&str>,
    id: &BenchmarkId,
    config: Config,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        config: config.effective(),
        samples: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    if b.samples.is_empty() {
        println!("{label:<56} (no samples — closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    let mean = b
        .samples
        .iter()
        .sum::<Duration>()
        .div_f64(b.samples.len() as f64);
    let mut line = format!(
        "{label:<56} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if mean > Duration::ZERO {
            let rate = count as f64 / mean.as_secs_f64();
            line.push_str(&format!("  thrpt: {rate:.0} {unit}"));
        }
    }
    println!("{line}");
}

/// Bundles bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
    }
}
