//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s StdRng, which is fine: every consumer in
//! this workspace treats seeded streams as opaque determinism, never as a
//! cross-library contract.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random (the stand-in for rand's
/// `Standard` distribution).
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by rejection-free multiply-shift.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's multiply-shift; the tiny modulo bias (< 2^-64 * bound) is
    // irrelevant for workload generation.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait: `gen`, `gen_range`, `gen_bool`.
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the workspace's deterministic
    /// workhorse generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
