//! Golden-equivalence suite: the new `Problem` / `SolverConfig` /
//! `Solution` API must return **bit-identical** results to the legacy
//! `solve_euclidean` / `solve_metric` wrappers for every rule × solver
//! combination, and `solve_batch` must be bit-identical to the
//! sequential loop. All float comparisons here are exact (`to_bits`),
//! not tolerance-based — the two paths are required to be the same
//! computation.

#![allow(deprecated)]

use std::sync::Arc;
use uncertain_kcenter::prelude::*;

fn new_config(rule: AssignmentRule, solver: CertainSolver) -> SolverConfig {
    let builder = SolverConfig::builder().rule(rule).lower_bound(false);
    match solver {
        CertainSolver::Gonzalez => builder.strategy(CertainStrategy::Gonzalez),
        CertainSolver::GonzalezLocalSearch { rounds } => {
            builder.strategy(CertainStrategy::GonzalezLocalSearch { rounds })
        }
        CertainSolver::Grid(opts) => builder.strategy(CertainStrategy::Grid).grid_limits(opts),
        CertainSolver::ExactDiscrete(opts) => builder
            .strategy(CertainStrategy::ExactDiscrete)
            .exact_limits(opts),
    }
    .build()
    .expect("legacy-equivalent configs are valid")
}

fn assert_bits_eq(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

fn euclidean_solvers() -> Vec<CertainSolver> {
    vec![
        CertainSolver::Gonzalez,
        CertainSolver::GonzalezLocalSearch { rounds: 25 },
        CertainSolver::Grid(GridOptions {
            eps: 0.5,
            ..Default::default()
        }),
        CertainSolver::ExactDiscrete(ExactOptions::default()),
    ]
}

#[test]
fn euclidean_problem_solve_matches_legacy_bit_for_bit() {
    for seed in [1u64, 7, 23] {
        let set = clustered(seed, 14, 3, 2, 3, 5.0, 1.2, ProbModel::Random);
        for rule in [
            AssignmentRule::ExpectedDistance,
            AssignmentRule::ExpectedPoint,
            AssignmentRule::OneCenter,
        ] {
            for solver in euclidean_solvers() {
                let legacy = solve_euclidean(&set, 3, rule, solver);
                let modern = Problem::euclidean(set.clone(), 3)
                    .unwrap()
                    .solve(&new_config(rule, solver))
                    .unwrap();
                let ctx = format!("seed {seed} rule {rule:?} solver {solver:?}");
                assert_eq!(legacy.centers, modern.centers, "centers: {ctx}");
                assert_eq!(legacy.assignment, modern.assignment, "assignment: {ctx}");
                assert_eq!(
                    legacy.representatives, modern.representatives,
                    "representatives: {ctx}"
                );
                assert_bits_eq(legacy.ecost, modern.ecost, &format!("ecost: {ctx}"));
                assert_bits_eq(
                    legacy.certain_radius,
                    modern.certain_radius,
                    &format!("certain_radius: {ctx}"),
                );
            }
        }
    }
}

#[test]
fn metric_problem_solve_matches_legacy_bit_for_bit() {
    let fm = WeightedGraph::grid(4, 5, 1.0)
        .shortest_path_metric()
        .unwrap();
    let ids = fm.ids();
    let metric_solvers = vec![
        MetricCertainSolver::Gonzalez,
        MetricCertainSolver::GonzalezLocalSearch { rounds: 25 },
        MetricCertainSolver::ExactDiscrete(ExactOptions::default()),
    ];
    for seed in [2u64, 11] {
        let set = on_finite_metric(seed, fm.len(), 8, 3, ProbModel::Random);
        for rule in [
            MetricAssignmentRule::ExpectedDistance,
            MetricAssignmentRule::OneCenter,
        ] {
            for solver in &metric_solvers {
                let legacy = solve_metric(&set, 2, rule, *solver, &ids, &fm);
                let unified_rule = match rule {
                    MetricAssignmentRule::ExpectedDistance => AssignmentRule::ExpectedDistance,
                    MetricAssignmentRule::OneCenter => AssignmentRule::OneCenter,
                };
                let builder = SolverConfig::builder()
                    .rule(unified_rule)
                    .lower_bound(false);
                let config = match solver {
                    MetricCertainSolver::Gonzalez => builder.strategy(CertainStrategy::Gonzalez),
                    MetricCertainSolver::GonzalezLocalSearch { rounds } => {
                        builder.strategy(CertainStrategy::GonzalezLocalSearch { rounds: *rounds })
                    }
                    MetricCertainSolver::ExactDiscrete(opts) => builder
                        .strategy(CertainStrategy::ExactDiscrete)
                        .exact_limits(*opts),
                }
                .build()
                .unwrap();
                let modern = Problem::in_metric(set.clone(), 2, fm.clone(), ids.clone())
                    .unwrap()
                    .solve(&config)
                    .unwrap();
                let ctx = format!("seed {seed} rule {rule:?} solver {solver:?}");
                assert_eq!(legacy.centers, modern.centers, "centers: {ctx}");
                assert_eq!(legacy.assignment, modern.assignment, "assignment: {ctx}");
                assert_eq!(
                    legacy.representatives, modern.representatives,
                    "representatives: {ctx}"
                );
                assert_bits_eq(legacy.ecost, modern.ecost, &format!("ecost: {ctx}"));
                assert_bits_eq(
                    legacy.certain_radius,
                    modern.certain_radius,
                    &format!("certain_radius: {ctx}"),
                );
            }
        }
    }
}

#[test]
fn solve_batch_is_bit_identical_to_sequential_euclidean() {
    let config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .build()
        .unwrap();
    let problems: Vec<Problem<Point>> = (0..12)
        .map(|seed| {
            let set = clustered(
                seed,
                10 + seed as usize,
                3,
                2,
                2,
                4.0,
                1.0,
                ProbModel::Random,
            );
            Problem::euclidean(set, 2).unwrap()
        })
        .collect();
    let sequential: Vec<_> = problems.iter().map(|p| p.solve(&config)).collect();
    for threads in [2usize, 4, 8] {
        let batch = solve_batch_threads(&problems, &config, threads);
        assert_eq!(batch.len(), sequential.len());
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            let (b, s) = (b.as_ref().unwrap(), s.as_ref().unwrap());
            let ctx = format!("problem {i}, {threads} threads");
            assert_eq!(b.centers, s.centers, "centers: {ctx}");
            assert_eq!(b.assignment, s.assignment, "assignment: {ctx}");
            assert_bits_eq(b.ecost, s.ecost, &format!("ecost: {ctx}"));
            assert_eq!(
                b.report.lower_bound.map(f64::to_bits),
                s.report.lower_bound.map(f64::to_bits),
                "lower bound: {ctx}"
            );
        }
    }
}

#[test]
fn solve_batch_is_bit_identical_to_sequential_metric() {
    let fm = WeightedGraph::cycle(14, 1.0)
        .shortest_path_metric()
        .unwrap();
    let pool: Arc<[usize]> = Arc::from(fm.ids());
    let metric: Arc<dyn Metric<usize> + Send + Sync> = Arc::new(fm.clone());
    let config = SolverConfig::builder()
        .rule(AssignmentRule::OneCenter)
        .build()
        .unwrap();
    let problems: Vec<Problem<usize>> = (0..8)
        .map(|seed| {
            let set = on_finite_metric(seed, fm.len(), 6, 3, ProbModel::Random);
            Problem::in_metric_shared(set, 2, Arc::clone(&metric), Arc::clone(&pool)).unwrap()
        })
        .collect();
    let sequential: Vec<_> = problems.iter().map(|p| p.solve(&config)).collect();
    let batch = solve_batch_threads(&problems, &config, 4);
    for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
        let (b, s) = (b.as_ref().unwrap(), s.as_ref().unwrap());
        assert_eq!(b.centers, s.centers, "centers: problem {i}");
        assert_eq!(b.assignment, s.assignment, "assignment: problem {i}");
        assert_bits_eq(b.ecost, s.ecost, &format!("ecost: problem {i}"));
    }
}

#[test]
fn batch_surfaces_per_problem_errors_in_order() {
    let good = clustered(1, 6, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
    // An EP-rule config against a discrete problem: the batch reports the
    // typed error in that slot without disturbing its neighbors.
    let fm = WeightedGraph::cycle(6, 1.0).shortest_path_metric().unwrap();
    let discrete = Problem::in_metric(
        on_finite_metric(3, fm.len(), 4, 2, ProbModel::Random),
        2,
        fm,
        (0..6).collect(),
    )
    .unwrap();
    let config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .build()
        .unwrap();
    // Mixed batches are possible per-space; here both problems are
    // discrete so every slot fails the same way deterministically.
    let problems = vec![discrete.clone(), discrete];
    let results = solve_batch_threads(&problems, &config, 4);
    for r in &results {
        assert_eq!(
            r.as_ref().err(),
            Some(&SolveError::RuleUnsupported {
                rule: AssignmentRule::ExpectedPoint,
                space: "discrete"
            })
        );
    }
    // And a Euclidean problem under the same config succeeds.
    let ok = Problem::euclidean(good, 2).unwrap().solve(&config);
    assert!(ok.is_ok());
}
