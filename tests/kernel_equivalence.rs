//! Bit-identity and tolerance equivalence between the distance kernels.
//!
//! The solver pipeline evaluates every distance through one of three
//! kernels (`SolverConfig::kernel`): `Scalar`, which preserves the
//! historical per-pair f64 summation order, `Blocked`, the default
//! norm-factorized 8-wide path, and `Tiled`, the register-tiled
//! mini-GEMM over center panels. This suite pins the contract between
//! them:
//!
//! * `Scalar` is **bit-identical** to a hand-rolled reference pipeline
//!   built from the pointwise `Euclidean` metric (exact-equality
//!   goldens);
//! * `Blocked` and `Tiled` agree with `Scalar` on centers and costs
//!   within `1e-9` and on assignments exactly (random instances have no
//!   knife-edge ties at kernel rounding scale);
//! * with the opt-in f32 storage mirror, `Tiled` agrees with `Scalar`
//!   within the f32 rounding bound documented at
//!   `PointStore::try_enable_f32` (coordinates round once at ingest;
//!   accumulation stays f64);
//! * nearest-center ties break toward the lowest index under every
//!   kernel, including tied centers straddling tile-panel boundaries;
//! * the per-stage `Report.distance_evals` counters are **identical**
//!   across the kernels — switching kernels must never change which
//!   pairs are evaluated, only their rounding.

use proptest::prelude::*;
use uncertain_kcenter::prelude::*;

fn cfg(rule: AssignmentRule, strategy: CertainStrategy, kernel: Kernel) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .kernel(kernel)
        .eps(0.5)
        .lower_bound(false)
        .build()
        .expect("static test config")
}

fn rules() -> [AssignmentRule; 3] {
    [
        AssignmentRule::ExpectedDistance,
        AssignmentRule::ExpectedPoint,
        AssignmentRule::OneCenter,
    ]
}

fn strategies() -> [CertainStrategy; 4] {
    [
        CertainStrategy::Gonzalez,
        CertainStrategy::GonzalezLocalSearch { rounds: 10 },
        CertainStrategy::Grid,
        CertainStrategy::ExactDiscrete,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The factorized kernels (Blocked, Tiled) agree with Scalar on
    /// random instances: same assignment, centers and costs within
    /// 1e-9, identical per-stage eval counts.
    #[test]
    fn factorized_kernels_agree_with_scalar(
        seed in 0u64..1000,
        n in 3usize..16,
        z in 1usize..4,
        dim in 1usize..4,
        k in 1usize..4,
    ) {
        let k = k.min(n);
        let set = clustered(seed, n, z, dim, 3, 5.0, 1.0, ProbModel::Random);
        for rule in rules() {
            for strategy in strategies() {
                let scalar = Problem::euclidean(set.clone(), k)
                    .unwrap()
                    .solve(&cfg(rule, strategy, Kernel::Scalar))
                    .unwrap();
                for kernel in [Kernel::Blocked, Kernel::Tiled] {
                    let other = Problem::euclidean(set.clone(), k)
                        .unwrap()
                        .solve(&cfg(rule, strategy, kernel))
                        .unwrap();
                    prop_assert_eq!(
                        &scalar.assignment, &other.assignment,
                        "assignment ({:?}/{:?}/{:?})", rule, strategy, kernel
                    );
                    prop_assert_eq!(scalar.centers.len(), other.centers.len());
                    for (a, b) in scalar.centers.iter().zip(other.centers.iter()) {
                        for (x, y) in a.coords().iter().zip(b.coords().iter()) {
                            prop_assert!((x - y).abs() <= 1e-9, "center coord {x} vs {y}");
                        }
                    }
                    prop_assert!(
                        (scalar.ecost - other.ecost).abs() <= 1e-9 * (1.0 + scalar.ecost),
                        "ecost {} vs {} ({:?}/{:?}/{:?})",
                        scalar.ecost, other.ecost, rule, strategy, kernel
                    );
                    prop_assert!(
                        (scalar.certain_radius - other.certain_radius).abs()
                            <= 1e-9 * (1.0 + scalar.certain_radius),
                        "radius {} vs {}", scalar.certain_radius, other.certain_radius
                    );
                    // The acceptance bar: switching kernels never changes the
                    // number of distance evaluations, stage by stage.
                    let (s, b) = (scalar.report.distance_evals, other.report.distance_evals);
                    prop_assert_eq!(s.representatives, b.representatives);
                    prop_assert_eq!(s.certain_solve, b.certain_solve, "{:?}/{:?}", rule, strategy);
                    prop_assert_eq!(s.assignment, b.assignment);
                    prop_assert_eq!(s.cost, b.cost);
                    prop_assert_eq!(s.lower_bound, b.lower_bound);
                }
            }
        }
    }

    /// Exact-equality golden: the Scalar kernel reproduces a hand-rolled
    /// pointwise-metric pipeline bit for bit, for every assignment rule
    /// over the Gonzalez backend.
    #[test]
    fn scalar_kernel_matches_pointwise_reference_bitwise(
        seed in 0u64..1000,
        n in 2usize..14,
        z in 1usize..4,
        dim in 1usize..4,
        k in 1usize..3,
    ) {
        let k = k.min(n);
        let set = uniform_box(seed, n, z, dim, 10.0, 2.0, ProbModel::Random);
        for rule in rules() {
            // Reference: the paper pipeline over boxed points and the
            // pointwise Euclidean metric (pre-kernel arithmetic).
            let reps: Vec<Point> = match rule {
                AssignmentRule::OneCenter => set.iter().map(one_center_euclidean).collect(),
                _ => set.iter().map(expected_point).collect(),
            };
            let certain = gonzalez(&reps, k, &Euclidean, 0);
            let assignment = match rule {
                AssignmentRule::ExpectedDistance => assign_ed(&set, &certain.centers, &Euclidean),
                AssignmentRule::ExpectedPoint => assign_ep(&set, &certain.centers, &Euclidean),
                AssignmentRule::OneCenter => assign_oc(&set, &certain.centers, &reps, &Euclidean),
            };
            let ecost = ecost_assigned(&set, &certain.centers, &assignment, &Euclidean);

            let sol = Problem::euclidean(set.clone(), k)
                .unwrap()
                .solve(&cfg(rule, CertainStrategy::Gonzalez, Kernel::Scalar))
                .unwrap();

            prop_assert_eq!(&sol.assignment, &assignment, "{:?}", rule);
            prop_assert_eq!(sol.centers.len(), certain.centers.len());
            for (a, b) in sol.centers.iter().zip(certain.centers.iter()) {
                prop_assert_eq!(a.coords(), b.coords(), "{:?}", rule);
            }
            prop_assert_eq!(
                sol.ecost.to_bits(), ecost.to_bits(),
                "ecost {} vs {} ({:?})", sol.ecost, ecost, rule
            );
            prop_assert_eq!(
                sol.certain_radius.to_bits(), certain.radius.to_bits(),
                "radius ({:?})", rule
            );
        }
    }

    /// Batch solving under every kernel stays bit-identical to the
    /// sequential loop (the kernels are deterministic and thread-free).
    #[test]
    fn batch_is_bit_identical_under_every_kernel(seed in 0u64..300) {
        for kernel in Kernel::ALL {
            let config = cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez, kernel);
            let problems: Vec<Problem<Point>> = (0..4)
                .map(|i| {
                    let set = clustered(seed + i, 8, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
                    Problem::euclidean(set, 2).unwrap()
                })
                .collect();
            let sequential = solve_batch_threads(&problems, &config, 1);
            let threaded = solve_batch_threads(&problems, &config, 3);
            for (a, b) in sequential.iter().zip(threaded.iter()) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                prop_assert_eq!(a.ecost.to_bits(), b.ecost.to_bits());
                prop_assert_eq!(&a.assignment, &b.assignment);
            }
        }
    }
}

/// A factorized kernel's distance of a point to itself is exactly zero
/// (cached norms make `‖a‖² + ‖a‖² − 2a·a` cancel — the blocked kernel
/// caches blocked-order norms, the tiled kernel sequential-order norms,
/// each matching its own dot product), so duplicate-point degeneracies
/// behave identically under every kernel.
#[test]
fn duplicate_points_collapse_identically() {
    let set = UncertainSet::new(vec![
        UncertainPoint::certain(Point::new(vec![0.1, 0.2, 0.3])),
        UncertainPoint::certain(Point::new(vec![0.1, 0.2, 0.3])),
        UncertainPoint::certain(Point::new(vec![0.1, 0.2, 0.3])),
    ]);
    for kernel in Kernel::ALL {
        let sol = Problem::euclidean(set.clone(), 2)
            .unwrap()
            .solve(&cfg(
                AssignmentRule::ExpectedPoint,
                CertainStrategy::Gonzalez,
                kernel,
            ))
            .unwrap();
        assert_eq!(sol.certain_radius, 0.0, "{kernel:?}");
        assert_eq!(sol.ecost, 0.0, "{kernel:?}");
    }
}

/// Deterministic pseudo-random coordinates in `[0, 1)` (xorshift; no
/// external RNG so the goldens below never drift).
fn coords(seed: u64, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| (0..dim).map(|_| rnd()).collect()).collect()
}

/// Builds a store, additionally enabling the f32 mirror when CI's
/// determinism matrix sets `UKC_TEST_STORAGE=f32`. The tests using this
/// helper assert storage-independent properties (tie-breaking, pair
/// counts), so they must pass identically either way — only the tiled
/// kernel even reads the mirror.
fn store_of(seed: u64, n: usize, dim: usize) -> PointStore {
    let mut store = PointStore::new(dim);
    for row in coords(seed, n, dim) {
        store.try_push(&row).unwrap();
    }
    if std::env::var("UKC_TEST_STORAGE").as_deref() == Ok("f32") {
        store.try_enable_f32().unwrap();
    }
    store
}

/// With the opt-in f32 mirror, the tiled kernel agrees with the scalar
/// f64 reference within the f32 rounding bound: coordinates round once
/// at ingest (relative error ≤ `f32::EPSILON / 2` per coordinate) and
/// accumulation stays f64, so for unit-box coordinates the distance
/// error is bounded by a few `f32::EPSILON · √d`. The instance is large
/// enough (`n·d ≥ FACTORIZED_MIN_WORK`) that the tiled path genuinely
/// engages rather than falling back to scalar.
#[test]
fn tiled_f32_storage_matches_scalar_within_f32_bound() {
    let (n, dim) = (1_500, 16);
    let mut store = store_of(77, n, dim);
    store.try_enable_f32().unwrap();
    assert!(store.has_f32());

    let ids: Vec<PointId> = (0..n).map(PointId).collect();
    let q = PointId(n - 1);
    let scalar = StoreOracle::new(&store, Kernel::Scalar);
    let tiled = StoreOracle::new(&store, Kernel::Tiled);
    let mut want = vec![0.0; n];
    let mut got = vec![0.0; n];
    scalar.dists_to_one(&ids, &q, &mut want);
    tiled.dists_to_one(&ids, &q, &mut got);
    // Unit box, d = 16: distances are ≤ 4, squared-space f32 rounding
    // contributes ≲ 8·ε₃₂ per pair; 1e-5·(1+d) leaves slack without
    // masking a broken mirror (f64-vs-f64 would be ~1e-16, a *stale*
    // mirror ~1e-1).
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        assert!(
            (w - g).abs() <= 1e-5 * (1.0 + w),
            "point {i}: scalar {w} vs tiled-f32 {g}"
        );
    }

    // Exact duplicates still cancel exactly: both coordinates round to
    // the same f32 row, and the sequential-order norm matches the
    // sequential-order dot bit for bit.
    let mut dup_store = PointStore::new(3);
    let a = dup_store.try_push(&[0.1, 0.2, 0.3]).unwrap();
    let b = dup_store.try_push(&[0.1, 0.2, 0.3]).unwrap();
    dup_store.try_enable_f32().unwrap();
    let d = ukc_metric::batch::pair_dist(&dup_store, a, b, Kernel::Tiled);
    assert_eq!(d, 0.0);
}

/// Nearest-center ties break toward the lowest index under every
/// kernel, including identical centers straddling the tiled kernel's
/// 4-wide panel boundaries, at a size where the tiled path engages.
#[test]
fn nearest_ties_break_low_under_every_kernel() {
    let (n, dim, k) = (400, 8, 10);
    let mut store = store_of(99, n, dim);
    // Ten identical centers — panels 0, 1, and a padded tail panel.
    let c = store.coords(PointId(0)).to_vec();
    let centers: Vec<PointId> = (0..k).map(|_| store.try_push(&c).unwrap()).collect();
    let queries: Vec<PointId> = (0..n).map(PointId).collect();
    for kernel in Kernel::ALL {
        let oracle = StoreOracle::new(&store, kernel);
        let mut out = vec![(0usize, 0.0f64); n];
        oracle.nearest_each(&queries, &centers, &mut out);
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(*idx, 0, "query {i} under {kernel:?} picked center {idx}");
        }
    }
}
