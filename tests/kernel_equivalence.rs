//! Bit-identity and tolerance equivalence between the distance kernels.
//!
//! The solver pipeline evaluates every distance through one of two
//! kernels (`SolverConfig::kernel`): `Scalar`, which preserves the
//! historical per-pair f64 summation order, and `Blocked`, the default
//! norm-factorized 8-wide path. This suite pins the contract between
//! them:
//!
//! * `Scalar` is **bit-identical** to a hand-rolled reference pipeline
//!   built from the pointwise `Euclidean` metric (exact-equality
//!   goldens);
//! * `Blocked` agrees with `Scalar` on centers and costs within `1e-9`
//!   and on assignments exactly (random instances have no knife-edge
//!   ties at kernel rounding scale);
//! * the per-stage `Report.distance_evals` counters are **identical**
//!   between the kernels — switching kernels must never change which
//!   pairs are evaluated, only their rounding.

use proptest::prelude::*;
use uncertain_kcenter::prelude::*;

fn cfg(rule: AssignmentRule, strategy: CertainStrategy, kernel: Kernel) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .kernel(kernel)
        .eps(0.5)
        .lower_bound(false)
        .build()
        .expect("static test config")
}

fn rules() -> [AssignmentRule; 3] {
    [
        AssignmentRule::ExpectedDistance,
        AssignmentRule::ExpectedPoint,
        AssignmentRule::OneCenter,
    ]
}

fn strategies() -> [CertainStrategy; 4] {
    [
        CertainStrategy::Gonzalez,
        CertainStrategy::GonzalezLocalSearch { rounds: 10 },
        CertainStrategy::Grid,
        CertainStrategy::ExactDiscrete,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scalar and Blocked agree on random instances: same assignment,
    /// centers and costs within 1e-9, identical per-stage eval counts.
    #[test]
    fn scalar_and_blocked_agree(
        seed in 0u64..1000,
        n in 3usize..16,
        z in 1usize..4,
        dim in 1usize..4,
        k in 1usize..4,
    ) {
        let k = k.min(n);
        let set = clustered(seed, n, z, dim, 3, 5.0, 1.0, ProbModel::Random);
        for rule in rules() {
            for strategy in strategies() {
                let scalar = Problem::euclidean(set.clone(), k)
                    .unwrap()
                    .solve(&cfg(rule, strategy, Kernel::Scalar))
                    .unwrap();
                let blocked = Problem::euclidean(set.clone(), k)
                    .unwrap()
                    .solve(&cfg(rule, strategy, Kernel::Blocked))
                    .unwrap();
                prop_assert_eq!(
                    &scalar.assignment, &blocked.assignment,
                    "assignment ({:?}/{:?})", rule, strategy
                );
                prop_assert_eq!(scalar.centers.len(), blocked.centers.len());
                for (a, b) in scalar.centers.iter().zip(blocked.centers.iter()) {
                    for (x, y) in a.coords().iter().zip(b.coords().iter()) {
                        prop_assert!((x - y).abs() <= 1e-9, "center coord {x} vs {y}");
                    }
                }
                prop_assert!(
                    (scalar.ecost - blocked.ecost).abs() <= 1e-9 * (1.0 + scalar.ecost),
                    "ecost {} vs {} ({:?}/{:?})", scalar.ecost, blocked.ecost, rule, strategy
                );
                prop_assert!(
                    (scalar.certain_radius - blocked.certain_radius).abs()
                        <= 1e-9 * (1.0 + scalar.certain_radius),
                    "radius {} vs {}", scalar.certain_radius, blocked.certain_radius
                );
                // The acceptance bar: switching kernels never changes the
                // number of distance evaluations, stage by stage.
                let (s, b) = (scalar.report.distance_evals, blocked.report.distance_evals);
                prop_assert_eq!(s.representatives, b.representatives);
                prop_assert_eq!(s.certain_solve, b.certain_solve, "{:?}/{:?}", rule, strategy);
                prop_assert_eq!(s.assignment, b.assignment);
                prop_assert_eq!(s.cost, b.cost);
                prop_assert_eq!(s.lower_bound, b.lower_bound);
            }
        }
    }

    /// Exact-equality golden: the Scalar kernel reproduces a hand-rolled
    /// pointwise-metric pipeline bit for bit, for every assignment rule
    /// over the Gonzalez backend.
    #[test]
    fn scalar_kernel_matches_pointwise_reference_bitwise(
        seed in 0u64..1000,
        n in 2usize..14,
        z in 1usize..4,
        dim in 1usize..4,
        k in 1usize..3,
    ) {
        let k = k.min(n);
        let set = uniform_box(seed, n, z, dim, 10.0, 2.0, ProbModel::Random);
        for rule in rules() {
            // Reference: the paper pipeline over boxed points and the
            // pointwise Euclidean metric (pre-kernel arithmetic).
            let reps: Vec<Point> = match rule {
                AssignmentRule::OneCenter => set.iter().map(one_center_euclidean).collect(),
                _ => set.iter().map(expected_point).collect(),
            };
            let certain = gonzalez(&reps, k, &Euclidean, 0);
            let assignment = match rule {
                AssignmentRule::ExpectedDistance => assign_ed(&set, &certain.centers, &Euclidean),
                AssignmentRule::ExpectedPoint => assign_ep(&set, &certain.centers, &Euclidean),
                AssignmentRule::OneCenter => assign_oc(&set, &certain.centers, &reps, &Euclidean),
            };
            let ecost = ecost_assigned(&set, &certain.centers, &assignment, &Euclidean);

            let sol = Problem::euclidean(set.clone(), k)
                .unwrap()
                .solve(&cfg(rule, CertainStrategy::Gonzalez, Kernel::Scalar))
                .unwrap();

            prop_assert_eq!(&sol.assignment, &assignment, "{:?}", rule);
            prop_assert_eq!(sol.centers.len(), certain.centers.len());
            for (a, b) in sol.centers.iter().zip(certain.centers.iter()) {
                prop_assert_eq!(a.coords(), b.coords(), "{:?}", rule);
            }
            prop_assert_eq!(
                sol.ecost.to_bits(), ecost.to_bits(),
                "ecost {} vs {} ({:?})", sol.ecost, ecost, rule
            );
            prop_assert_eq!(
                sol.certain_radius.to_bits(), certain.radius.to_bits(),
                "radius ({:?})", rule
            );
        }
    }

    /// Batch solving under either kernel stays bit-identical to the
    /// sequential loop (the kernels are deterministic and thread-free).
    #[test]
    fn batch_is_bit_identical_under_both_kernels(seed in 0u64..300) {
        for kernel in [Kernel::Scalar, Kernel::Blocked] {
            let config = cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez, kernel);
            let problems: Vec<Problem<Point>> = (0..4)
                .map(|i| {
                    let set = clustered(seed + i, 8, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
                    Problem::euclidean(set, 2).unwrap()
                })
                .collect();
            let sequential = solve_batch_threads(&problems, &config, 1);
            let threaded = solve_batch_threads(&problems, &config, 3);
            for (a, b) in sequential.iter().zip(threaded.iter()) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                prop_assert_eq!(a.ecost.to_bits(), b.ecost.to_bits());
                prop_assert_eq!(&a.assignment, &b.assignment);
            }
        }
    }
}

/// The blocked kernel's distance of a point to itself is exactly zero
/// (cached norms make `‖a‖² + ‖a‖² − 2a·a` cancel), so duplicate-point
/// degeneracies behave identically under both kernels.
#[test]
fn duplicate_points_collapse_identically() {
    let set = UncertainSet::new(vec![
        UncertainPoint::certain(Point::new(vec![0.1, 0.2, 0.3])),
        UncertainPoint::certain(Point::new(vec![0.1, 0.2, 0.3])),
        UncertainPoint::certain(Point::new(vec![0.1, 0.2, 0.3])),
    ]);
    for kernel in [Kernel::Scalar, Kernel::Blocked] {
        let sol = Problem::euclidean(set.clone(), 2)
            .unwrap()
            .solve(&cfg(
                AssignmentRule::ExpectedPoint,
                CertainStrategy::Gonzalez,
                kernel,
            ))
            .unwrap();
        assert_eq!(sol.certain_radius, 0.0, "{kernel:?}");
        assert_eq!(sol.ecost, 0.0, "{kernel:?}");
    }
}
