//! The streaming subsystem's acceptance gates, in the style of
//! `tests/parallel_equivalence.rs`:
//!
//! 1. **accuracy** — streaming a 100k-point instance in chunks yields a
//!    solution whose expected cost is within the documented
//!    approximation factor of the full batch solve (EP rule, budget `k`:
//!    the doubling factor 8 substituted into Theorem 2.5's `2 + (1+ε)`
//!    gives 10);
//! 2. **memory** — the peak working set stays `budget + 1 + chunk`,
//!    sublinear in the stream length;
//! 3. **determinism** — stream digests are bit-identical across pool
//!    lane counts (`threads` 1 vs 4 — CI additionally re-runs the suite
//!    under `UKC_THREADS=1` and `4`), across all three distance kernels
//!    (the summary pins `Kernel::Scalar` internally, so the config's
//!    kernel must not leak into stream evolution), and across
//!    chunkings; with the scalar kernel the finalized solution is
//!    bit-identical too.

use uncertain_kcenter::prelude::*;

const N: usize = 100_000;
const K: usize = 8;
const CHUNK: usize = 4096;

fn big_stream() -> UncertainSet<Point> {
    clustered(4242, N, 2, 2, 10, 40.0, 2.0, ProbModel::Random)
}

fn config(threads: usize, kernel: Kernel) -> SolverConfig {
    SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .threads(threads)
        .kernel(kernel)
        .lower_bound(false)
        .build()
        .expect("valid config")
}

/// Streams `set` through a solver in `CHUNK`-sized epochs.
fn stream_through(set: &UncertainSet<Point>, budget: usize, cfg: &SolverConfig) -> StreamSolver {
    let mut solver = StreamSolver::builder(K)
        .config(cfg.clone())
        .budget(budget)
        .build()
        .expect("k > 0");
    for chunk in set.points().chunks(CHUNK) {
        solver.push_chunk(chunk).expect("valid chunk");
    }
    solver
}

/// The exact expected cost of serving `set` with `centers` under the EP
/// rule — how the acceptance criterion scores streamed centers offline.
fn ep_cost(set: &UncertainSet<Point>, centers: &[Point]) -> f64 {
    let assignment = assign_ep(set, centers, &Euclidean);
    ecost_assigned(set, centers, &assignment, &Euclidean)
}

#[test]
fn streaming_100k_is_within_the_documented_factor_with_sublinear_memory() {
    let set = big_stream();
    let cfg = config(0, Kernel::Blocked);

    // The batch reference: the paper's pipeline over the full instance.
    let batch = Problem::euclidean(set.clone(), K)
        .expect("valid instance")
        .solve(&cfg)
        .expect("batch solve succeeds");

    // Budget = k is the classic doubling regime with the documented
    // end-to-end factor 10 (EP); the default 4k budget may only do
    // better thanks to its finer summary, so it gets the same gate.
    for budget in [K, uncertain_kcenter::stream::DEFAULT_BUDGET_PER_CENTER * K] {
        let solver = stream_through(&set, budget, &cfg);
        let solution = solver.solution().expect("non-empty stream");
        assert!(solution.centers.len() <= K);
        let streamed = ep_cost(&set, &solution.centers);
        assert!(
            streamed <= 10.0 * batch.ecost + 1e-9,
            "budget {budget}: streamed {streamed} vs batch {} exceeds the documented 10x",
            batch.ecost
        );

        // Memory: the working set is the summary plus one chunk buffer,
        // never the stream.
        let report = solver.report();
        assert_eq!(report.points, N as u64);
        assert!(
            report.memory_peak_points <= budget + 1 + CHUNK,
            "peak {} exceeds budget + chunk",
            report.memory_peak_points
        );
        assert!(report.memory_peak_points < N / 10);

        // The certified bracket holds for every streamed expected point.
        let worst_pbar = set
            .iter()
            .map(|up| {
                let pbar = expected_point(up);
                solution
                    .centers
                    .iter()
                    .map(|c| Euclidean.dist(&pbar, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0f64, f64::max);
        assert!(worst_pbar <= solution.radius_bound + 1e-9);
    }
}

#[test]
fn stream_digests_are_bit_identical_across_threads_kernels_and_chunkings() {
    // A 20k-point prefix keeps this determinism matrix fast.
    let set = UncertainSet::new(big_stream().points()[..20_000].to_vec());
    let mut digests = Vec::new();
    let mut summaries = Vec::new();
    for threads in [1usize, 4] {
        for kernel in Kernel::ALL {
            let solver = stream_through(&set, 4 * K, &config(threads, kernel));
            digests.push(solver.digest());
            summaries.push((threads, kernel, solver.summary().center_points()));
        }
    }
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "digests diverged: {digests:?}");
    }
    // The digest equality is backed by literally identical summaries.
    for (threads, kernel, centers) in &summaries[1..] {
        assert_eq!(centers.len(), summaries[0].2.len());
        for (a, b) in centers.iter().zip(&summaries[0].2) {
            assert_eq!(
                a.coords(),
                b.coords(),
                "threads {threads} kernel {kernel:?}"
            );
        }
    }

    // Chunking is ingestion plumbing, not state: any split of the same
    // stream evolves the same summary.
    let cfg = config(0, Kernel::Blocked);
    let by_487: u64 = {
        let mut solver = StreamSolver::builder(K)
            .config(cfg.clone())
            .budget(4 * K)
            .build()
            .unwrap();
        for chunk in set.points().chunks(487) {
            solver.push_chunk(chunk).unwrap();
        }
        solver.digest()
    };
    assert_eq!(by_487, digests[0]);

    // With the kernel pinned scalar end to end, the finalized solution
    // is thread-blind bit for bit (the execution-layer contract).
    let sol1 = stream_through(&set, 4 * K, &config(1, Kernel::Scalar))
        .solution()
        .unwrap();
    let sol4 = stream_through(&set, 4 * K, &config(4, Kernel::Scalar))
        .solution()
        .unwrap();
    assert_eq!(sol1.certain_radius.to_bits(), sol4.certain_radius.to_bits());
    assert_eq!(sol1.centers.len(), sol4.centers.len());
    for (a, b) in sol1.centers.iter().zip(&sol4.centers) {
        assert_eq!(a.coords(), b.coords());
    }
}

#[test]
fn stream_solver_agrees_with_the_deprecated_wrapper_at_budget_k() {
    // The migration contract both ways: at budget = k the new summary
    // is the legacy doubling summary, so the deprecated wrapper (which
    // now runs on it) and a direct StreamSolver see the same centers.
    let set = UncertainSet::new(big_stream().points()[..5_000].to_vec());
    #[allow(deprecated)]
    let wrapper_centers = {
        let mut wrapper = StreamingUncertainKCenter::new(K);
        for up in set.iter() {
            wrapper.insert(up.clone());
        }
        let (centers, _, _) = wrapper.finalize().expect("non-empty");
        centers
    };
    let solver = stream_through(&set, K, &config(1, Kernel::Scalar));
    let solution = solver.solution().expect("non-empty");
    assert_eq!(solution.centers.len(), wrapper_centers.len());
    for (a, b) in solution.centers.iter().zip(&wrapper_centers) {
        assert_eq!(a.coords(), b.coords());
    }
}
