//! Non-flaky perf smoke: the tiled kernel must not be slower than the
//! scalar kernel on the fused assignment sweep it was built for.
//!
//! `#[ignore]`d because it is only meaningful in release mode; CI runs
//! it explicitly via
//! `cargo test --release --test perf_smoke -- --ignored`.
//!
//! The assertion floor is deliberately **1.0×** (parity), not the ≥3×
//! the benches demonstrate at `n = 100k`: a loaded CI box can halve any
//! single measurement, but best-of-N against best-of-N crossing below
//! parity would mean the tiled path has genuinely regressed to worse
//! than the code it replaces. The dispatch cutoffs guarantee the tiled
//! kernel falls back to scalar below the profitable size, so parity is
//! the true floor everywhere.

use std::time::Instant;

use uncertain_kcenter::prelude::*;

const N: usize = 10_000;
const DIM: usize = 32;
const K: usize = 16;
const ROUNDS: usize = 5;

fn store(seed: u64) -> PointStore {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut store = PointStore::new(DIM);
    for _ in 0..N {
        let row: Vec<f64> = (0..DIM).map(|_| rnd() * 10.0).collect();
        store.try_push(&row).unwrap();
    }
    store
}

/// Best-of-N seconds for one full `nearest_each` assignment sweep.
fn best_sweep_secs(store: &PointStore, kernel: Kernel) -> f64 {
    let queries = store.ids();
    let centers: Vec<PointId> = (0..K).map(|i| PointId(i * (N / K))).collect();
    let oracle = StoreOracle::new(store, kernel);
    let mut out = vec![(0usize, 0.0f64); N];
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        oracle.nearest_each(&queries, &centers, &mut out);
        best = best.min(t.elapsed().as_secs_f64());
    }
    // Keep the result observable so the sweep cannot be optimized out.
    assert!(out.iter().all(|(i, d)| *i < K && d.is_finite()));
    best
}

/// Best-of-N seconds for one full additively-weighted
/// (`nearest_each_weighted`) assignment sweep.
fn best_weighted_sweep_secs(store: &PointStore, kernel: Kernel) -> f64 {
    let queries = store.ids();
    let centers: Vec<PointId> = (0..K).map(|i| PointId(i * (N / K))).collect();
    let weights: Vec<f64> = (0..K).map(|i| i as f64 * 0.25).collect();
    let oracle = StoreOracle::new(store, kernel);
    let mut out = vec![(0usize, 0.0f64); N];
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        oracle.nearest_each_weighted(&queries, &centers, &weights, &mut out);
        best = best.min(t.elapsed().as_secs_f64());
    }
    assert!(out.iter().all(|(i, d)| *i < K && d.is_finite()));
    best
}

#[test]
#[ignore = "perf assertion; run in release mode via CI's perf-smoke step"]
fn tiled_assignment_is_not_slower_than_scalar() {
    let store = store(4242);
    let scalar = best_sweep_secs(&store, Kernel::Scalar);
    let tiled = best_sweep_secs(&store, Kernel::Tiled);
    let speedup = scalar / tiled;
    eprintln!(
        "perf-smoke assign n={N} d={DIM} k={K}: scalar {scalar:.6}s, \
         tiled {tiled:.6}s, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 1.0,
        "tiled kernel regressed below scalar parity: {speedup:.2}x"
    );
}

/// The weighted (Apollonius) sweep gets the same floor: the tiled
/// weighted path must never be slower than the weighted scalar loop it
/// replaces. The per-center subtraction is O(k) bookkeeping on top of
/// the same distance panels, so the dispatch cutoffs and the parity
/// argument above carry over unchanged.
#[test]
#[ignore = "perf assertion; run in release mode via CI's perf-smoke step"]
fn weighted_tiled_assignment_is_not_slower_than_weighted_scalar() {
    let store = store(4243);
    let scalar = best_weighted_sweep_secs(&store, Kernel::Scalar);
    let tiled = best_weighted_sweep_secs(&store, Kernel::Tiled);
    let speedup = scalar / tiled;
    eprintln!(
        "perf-smoke weighted assign n={N} d={DIM} k={K}: scalar {scalar:.6}s, \
         tiled {tiled:.6}s, speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 1.0,
        "weighted tiled kernel regressed below weighted scalar parity: {speedup:.2}x"
    );
}
