//! Integration tests certifying every approximation factor of the paper's
//! Table 1 on randomized workloads (fast versions of experiments E1–E9;
//! the full sweeps live in `cargo run -p ukc-experiments`).
//!
//! Certification logic: with `LB ≤ opt` a certified lower bound and `UB`
//! the best solution found by any method (so `opt ≤ UB`), a bound `alg ≤
//! factor · opt` is *violated* only if `alg > factor · UB`. Every test
//! asserts non-violation; several also assert the stronger `alg ≤ factor ·
//! LB` where the bound is tight enough.

use uncertain_kcenter::prelude::*;

/// One Euclidean solve through the `Problem` API with a (rule, default
/// Gonzalez) config and no per-solve bound.
fn solve_eu(set: &UncertainSet<Point>, k: usize, rule: AssignmentRule) -> Solution<Point> {
    solve_eu_with(set, k, rule, CertainStrategy::Gonzalez)
}

/// Like [`solve_eu`] with an explicit certain strategy.
fn solve_eu_with(
    set: &UncertainSet<Point>,
    k: usize,
    rule: AssignmentRule,
    strategy: CertainStrategy,
) -> Solution<Point> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .lower_bound(false)
        .build()
        .expect("static test config");
    Problem::euclidean(set.clone(), k.min(set.n()))
        .expect("test instances are valid")
        .solve(&config)
        .expect("euclidean pipeline accepts every test config")
}

/// One grid-strategy solve at a given ε.
#[allow(dead_code)]
fn solve_eu_grid(
    set: &UncertainSet<Point>,
    k: usize,
    rule: AssignmentRule,
    eps: f64,
) -> Solution<Point> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(CertainStrategy::Grid)
        .eps(eps)
        .lower_bound(false)
        .build()
        .expect("static test config");
    Problem::euclidean(set.clone(), k)
        .expect("test instances are valid")
        .solve(&config)
        .expect("euclidean pipeline accepts every test config")
}

/// One metric-space solve through the `Problem` API.
#[allow(dead_code)]
fn solve_me<M: Metric<usize> + Send + Sync + Clone + 'static>(
    set: &UncertainSet<usize>,
    k: usize,
    rule: AssignmentRule,
    strategy: CertainStrategy,
    pool: &[usize],
    metric: &M,
) -> Solution<usize> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .lower_bound(false)
        .build()
        .expect("static test config");
    Problem::in_metric(set.clone(), k, metric.clone(), pool.to_vec())
        .expect("test instances are valid")
        .solve(&config)
        .expect("metric pipeline accepts ED/OC rules")
}

fn enriched_pool(set: &UncertainSet<Point>) -> Vec<Point> {
    let mut pool = set.location_pool();
    pool.extend(set.iter().map(expected_point));
    pool
}

#[test]
fn theorem_2_1_one_center_factor_2() {
    for seed in 0..10u64 {
        let set = uniform_box(seed, 6, 3, 2, 10.0, 2.0, ProbModel::Random);
        let (_, opt) = reference_one_center(&set);
        for anchor in 0..set.n() {
            let (_, alg) = expected_point_one_center(&set, anchor);
            assert!(
                alg <= 2.0 * opt + 1e-6,
                "seed {seed} anchor {anchor}: {alg} > 2*{opt}"
            );
        }
    }
}

#[test]
fn theorem_2_2_restricted_ed_factor_6_greedy() {
    for seed in 0..8u64 {
        let set = clustered(seed, 6, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let sol = solve_eu(&set, 2, AssignmentRule::ExpectedDistance);
        let pool = enriched_pool(&set);
        let brute = brute_force_restricted(
            &set,
            &pool,
            2,
            AssignmentRule::ExpectedDistance,
            &Euclidean,
            BruteForceLimits::default(),
        )
        .expect("small instance");
        // brute.ecost >= opt_ED, so violation iff alg > 6 * brute.
        assert!(
            sol.ecost <= 6.0 * brute.ecost + 1e-9,
            "seed {seed}: {} vs 6*{}",
            sol.ecost,
            brute.ecost
        );
    }
}

#[test]
fn theorem_2_2_restricted_ep_factor_4_greedy() {
    for seed in 0..8u64 {
        let set = uniform_box(seed, 6, 2, 2, 20.0, 2.0, ProbModel::Random);
        let sol = solve_eu(&set, 2, AssignmentRule::ExpectedPoint);
        let pool = enriched_pool(&set);
        let brute = brute_force_restricted(
            &set,
            &pool,
            2,
            AssignmentRule::ExpectedPoint,
            &Euclidean,
            BruteForceLimits::default(),
        )
        .expect("small instance");
        assert!(
            sol.ecost <= 4.0 * brute.ecost + 1e-9,
            "seed {seed}: {} vs 4*{}",
            sol.ecost,
            brute.ecost
        );
    }
}

#[test]
fn theorem_2_2_grid_backends_tighten_factors() {
    for seed in 0..4u64 {
        let set = clustered(seed, 6, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let pool = enriched_pool(&set);
        for (rule, factor) in [
            (AssignmentRule::ExpectedDistance, 5.25),
            (AssignmentRule::ExpectedPoint, 3.25),
        ] {
            let sol = solve_eu_grid(&set, 2, rule, 0.25);
            let brute = brute_force_restricted(
                &set,
                &pool,
                2,
                rule,
                &Euclidean,
                BruteForceLimits::default(),
            )
            .expect("small instance");
            assert!(
                sol.ecost <= factor * brute.ecost + 1e-9,
                "seed {seed} rule {rule:?}: {} vs {factor}*{}",
                sol.ecost,
                brute.ecost
            );
        }
    }
}

#[test]
fn theorems_2_4_2_5_unrestricted_factors() {
    for seed in 0..8u64 {
        let set = clustered(seed, 5, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let pool = enriched_pool(&set);
        let opt = brute_force_unrestricted(&set, &pool, 2, &Euclidean, BruteForceLimits::default())
            .expect("tiny instance");
        // Theorem 2.4 (ED, Gonzalez => 5+1=6... the paper's greedy row is 4
        // via EP; use the stated factors): ED+greedy unrestricted <= 6*opt,
        // EP+greedy <= 4*opt.
        let ed = solve_eu(&set, 2, AssignmentRule::ExpectedDistance);
        assert!(ed.ecost <= 6.0 * opt.ecost + 1e-9, "seed {seed} ED");
        let ep = solve_eu(&set, 2, AssignmentRule::ExpectedPoint);
        assert!(ep.ecost <= 4.0 * opt.ecost + 1e-9, "seed {seed} EP");
        // Theorem 2.5 with grid (3+eps).
        let grid = solve_eu_grid(&set, 2, AssignmentRule::ExpectedPoint, 0.5);
        assert!(grid.ecost <= 3.5 * opt.ecost + 1e-9, "seed {seed} grid");
    }
}

#[test]
fn theorem_2_3_one_d_lift_factor_3() {
    for seed in 0..8u64 {
        let set = line_instance(seed, 5, 3, 40.0, 2.0, ProbModel::Random);
        let sol = solve_one_d(&set, 2);
        let pool = enriched_pool(&set);
        let opt = brute_force_unrestricted(&set, &pool, 2, &Euclidean, BruteForceLimits::default())
            .expect("tiny instance");
        assert!(
            sol.ecost_ed <= 3.0 * opt.ecost + 1e-9,
            "seed {seed}: {} vs 3*{}",
            sol.ecost_ed,
            opt.ecost
        );
    }
}

#[test]
fn theorems_2_6_2_7_metric_factors() {
    let fm = WeightedGraph::cycle(10, 1.0)
        .shortest_path_metric()
        .unwrap();
    let ids = fm.ids();
    for seed in 0..6u64 {
        let set = on_finite_metric(seed, fm.len(), 5, 3, ProbModel::Random);
        let opt = brute_force_unrestricted(&set, &ids, 2, &fm, BruteForceLimits::default())
            .expect("tiny instance");
        // Theorem 2.7 with the exact discrete certain solver (eps = 0):
        // factor 5; Gonzalez (eps = 1): factor 7.
        let oc_exact = solve_me(
            &set,
            2,
            AssignmentRule::OneCenter,
            CertainStrategy::ExactDiscrete,
            &ids,
            &fm,
        );
        assert!(
            oc_exact.ecost <= 5.0 * opt.ecost + 1e-9,
            "seed {seed} OC exact"
        );
        let oc_gz = solve_me(
            &set,
            2,
            AssignmentRule::OneCenter,
            CertainStrategy::Gonzalez,
            &ids,
            &fm,
        );
        assert!(
            oc_gz.ecost <= 7.0 * opt.ecost + 1e-9,
            "seed {seed} OC greedy"
        );
        // Theorem 2.6: ED rule, factors 7 / 9.
        let ed_exact = solve_me(
            &set,
            2,
            AssignmentRule::ExpectedDistance,
            CertainStrategy::ExactDiscrete,
            &ids,
            &fm,
        );
        assert!(
            ed_exact.ecost <= 7.0 * opt.ecost + 1e-9,
            "seed {seed} ED exact"
        );
    }
}

#[test]
fn lower_bounds_never_exceed_any_solution() {
    for seed in 0..6u64 {
        let set = two_scale(seed, 8, 3, 2, 1.0, 80.0, 0.3);
        let lb = lower_bound_euclidean(&set, 2);
        for rule in [
            AssignmentRule::ExpectedDistance,
            AssignmentRule::ExpectedPoint,
            AssignmentRule::OneCenter,
        ] {
            let sol = solve_eu(&set, 2, rule);
            assert!(lb <= sol.ecost + 1e-9, "seed {seed} rule {rule:?}");
        }
        let pool = enriched_pool(&set);
        if let Some(opt) =
            brute_force_unrestricted(&set, &pool, 2, &Euclidean, BruteForceLimits::default())
        {
            assert!(lb <= opt.ecost + 1e-9, "seed {seed} vs unrestricted brute");
        }
    }
}

#[test]
fn one_center_lower_bound_sandwiches_reference() {
    for seed in 0..6u64 {
        let set = uniform_box(seed, 5, 3, 2, 10.0, 2.0, ProbModel::Random);
        let lb = lower_bound_one_center(&set, &Euclidean);
        let (_, opt) = reference_one_center(&set);
        assert!(lb <= opt + 1e-6, "seed {seed}: {lb} > {opt}");
        // And the bound is non-trivial: at least a third of opt on these
        // workloads (empirical but stable — deterministic seeds).
        assert!(
            lb >= opt / 3.0,
            "seed {seed}: bound too weak ({lb} vs {opt})"
        );
    }
}
