//! Integration coverage for the `ukc-server` HTTP protocol.
//!
//! Binds a real server on an ephemeral loopback port and exercises every
//! endpoint over actual TCP: the happy paths, malformed JSON, unknown
//! instance IDs, oversized bodies, typed error payloads, the solution
//! cache (asserted via the `/metrics` hit counter), and bit-identity of
//! concurrently served solves against direct `Problem::solve` calls.

use std::net::SocketAddr;

use ukc_core::{Problem, SolverConfig};
use ukc_json::format::JsonInstance;
use ukc_json::Json;
use ukc_metric::Point;
use ukc_server::client::{self, HttpResponse};
use ukc_server::{serve, ServerConfig};
use ukc_uncertain::generators::{clustered, ProbModel};
use ukc_uncertain::UncertainSet;

fn start(config: ServerConfig) -> (ukc_server::ServerHandle, SocketAddr) {
    let handle = serve(config).expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

fn small_set(seed: u64) -> UncertainSet<Point> {
    clustered(seed, 14, 3, 2, 2, 5.0, 1.0, ProbModel::Random)
}

fn instance_body(seed: u64) -> String {
    JsonInstance::from_set(&small_set(seed)).to_json().compact()
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    client::request(addr, "GET", path, None).expect("request")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> HttpResponse {
    client::request(addr, "POST", path, Some(body)).expect("request")
}

fn parse(response: &HttpResponse) -> Json {
    Json::parse(&response.body).unwrap_or_else(|e| panic!("non-JSON body ({e}): {}", response.body))
}

/// The typed error payload: `{"error": {"status", "kind", "message"}}`.
fn error_kind(response: &HttpResponse) -> (f64, String) {
    let doc = parse(response);
    let err = doc.get("error").expect("error object");
    (
        err.get("status").and_then(Json::as_f64).expect("status"),
        err.get("kind")
            .and_then(Json::as_str)
            .expect("kind")
            .to_string(),
    )
}

fn metric(addr: SocketAddr, path: &[&str]) -> f64 {
    let doc = parse(&get(addr, "/metrics"));
    let mut node = &doc;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    node.as_f64().expect("numeric metric")
}

#[test]
fn healthz_and_metrics_respond() {
    let (handle, addr) = start(ServerConfig::default());
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let doc = parse(&health);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert!(doc.get("uptime_seconds").and_then(Json::as_f64).is_some());

    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let doc = parse(&metrics);
    for section in [
        "requests",
        "responses",
        "cache",
        "scheduler",
        "solves",
        "pool",
    ] {
        assert!(doc.get(section).is_some(), "missing {section}");
    }
    handle.shutdown();
}

/// `/metrics` exposes the shared worker pool's occupancy gauges
/// (workers, busy, queued chunks, lifetime tasks/chunks, waves run on
/// the pool), the worker gauge matches the process-wide pool, and the
/// lifetime counters are monotone across a served solve.
#[test]
fn pool_gauges_are_exported_and_monotone() {
    let (handle, addr) = start(ServerConfig::default());
    for gauge in [
        "workers",
        "busy",
        "queued_chunks",
        "tasks",
        "chunks",
        "waves",
    ] {
        assert!(metric(addr, &["pool", gauge]) >= 0.0, "{gauge}");
    }
    // The worker gauge reflects the process-wide pool (lanes - 1).
    assert_eq!(
        metric(addr, &["pool", "workers"]),
        ukc_pool::global().workers() as f64
    );
    let tasks_before = metric(addr, &["pool", "tasks"]);
    let chunks_before = metric(addr, &["pool", "chunks"]);
    let body = format!(
        r#"{{"k": 2, "instance": {}}}"#,
        instance_body(11).trim_end()
    );
    assert_eq!(post(addr, "/solve", &body).status, 200);
    assert!(metric(addr, &["pool", "tasks"]) >= tasks_before);
    assert!(metric(addr, &["pool", "chunks"]) >= chunks_before);
    handle.shutdown();
}

#[test]
fn instance_lifecycle_upload_dedupe_get_list_delete() {
    let (handle, addr) = start(ServerConfig::default());

    // Upload creates.
    let created = post(addr, "/instances", &instance_body(1));
    assert_eq!(created.status, 201);
    let doc = parse(&created);
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .expect("id")
        .to_string();
    assert_eq!(doc.get("created").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("n").and_then(Json::as_usize), Some(14));

    // An identical upload (here: points in reverse order) dedupes to the
    // same content ID with 200, not 201.
    let mut points = small_set(1).points().to_vec();
    points.reverse();
    let permuted = JsonInstance::from_set(&UncertainSet::new(points))
        .to_json()
        .compact();
    let deduped = post(addr, "/instances", &permuted);
    assert_eq!(deduped.status, 200);
    let doc = parse(&deduped);
    assert_eq!(doc.get("id").and_then(Json::as_str), Some(id.as_str()));
    assert_eq!(doc.get("created").and_then(Json::as_bool), Some(false));

    // A different instance gets a different ID.
    let other = post(addr, "/instances", &instance_body(2));
    assert_eq!(other.status, 201);
    let other_id = parse(&other)
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_ne!(other_id, id);

    // List shows both, sorted by ID.
    let list = parse(&get(addr, "/instances"));
    let items = list.get("instances").and_then(Json::as_array).unwrap();
    assert_eq!(items.len(), 2);
    let ids: Vec<&str> = items
        .iter()
        .map(|i| i.get("id").and_then(Json::as_str).unwrap())
        .collect();
    let mut sorted = ids.clone();
    sorted.sort();
    assert_eq!(ids, sorted);

    // Get returns the full instance document, which round-trips.
    let fetched = get(addr, &format!("/instances/{id}"));
    assert_eq!(fetched.status, 200);
    let doc = parse(&fetched);
    let instance = doc.get("instance").expect("instance document");
    let roundtrip = JsonInstance::from_json(instance).unwrap().to_set().unwrap();
    assert_eq!(roundtrip.n(), 14);

    // Delete removes exactly once.
    let deleted = client::request(addr, "DELETE", &format!("/instances/{id}"), None).unwrap();
    assert_eq!(deleted.status, 200);
    assert_eq!(
        parse(&deleted).get("deleted").and_then(Json::as_bool),
        Some(true)
    );
    let again = client::request(addr, "DELETE", &format!("/instances/{id}"), None).unwrap();
    assert_eq!(again.status, 404);
    assert_eq!(get(addr, &format!("/instances/{id}")).status, 404);

    handle.shutdown();
}

#[test]
fn typed_errors_cover_the_failure_matrix() {
    let (handle, addr) = start(ServerConfig {
        max_body_bytes: 4096,
        ..ServerConfig::default()
    });

    // Malformed JSON → 400 bad_json.
    let r = post(addr, "/instances", "{not json");
    assert_eq!(error_kind(&r), (400.0, "bad_json".into()));

    // Schema violation → 400 bad_schema.
    let r = post(addr, "/instances", r#"{"points": []}"#);
    assert_eq!(error_kind(&r), (400.0, "bad_schema".into()));

    // Valid JSON, invalid instance → 422 bad_instance.
    let r = post(
        addr,
        "/instances",
        r#"{"dim": 2, "points": [{"locations": [[1]], "probs": [1]}]}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "bad_instance".into()));

    // Unknown instance ID → 404 instance_not_found, on get and solve.
    let r = get(addr, "/instances/ffffffffffffffff");
    assert_eq!(error_kind(&r), (404.0, "instance_not_found".into()));
    let r = post(addr, "/instances/ffffffffffffffff/solve", r#"{"k": 2}"#);
    assert_eq!(error_kind(&r), (404.0, "instance_not_found".into()));

    // Unknown route → 404 route_not_found; wrong method → 405.
    let r = get(addr, "/nope");
    assert_eq!(error_kind(&r), (404.0, "route_not_found".into()));
    let r = post(addr, "/healthz", "{}");
    assert_eq!(error_kind(&r), (405.0, "method_not_allowed".into()));

    // Oversized body → 413 payload_too_large.
    let huge = format!(r#"{{"dim": 2, "points": [{}]}}"#, "x".repeat(8192));
    let r = post(addr, "/instances", &huge);
    assert_eq!(error_kind(&r), (413.0, "payload_too_large".into()));

    // SolveError variants surface with their own kinds.
    let upload = parse(&post(addr, "/instances", &instance_body(3)));
    let id = upload.get("id").and_then(Json::as_str).unwrap();
    let r = post(addr, &format!("/instances/{id}/solve"), r#"{"k": 0}"#);
    assert_eq!(error_kind(&r), (422.0, "zero_k".into()));
    let r = post(addr, &format!("/instances/{id}/solve"), r#"{"k": 500}"#);
    assert_eq!(error_kind(&r), (422.0, "k_exceeds_n".into()));
    let r = post(
        addr,
        &format!("/instances/{id}/solve"),
        r#"{"k": 2, "eps": -0.5}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "bad_epsilon".into()));
    let r = post(
        addr,
        &format!("/instances/{id}/solve"),
        r#"{"k": 2, "slover": "grid"}"#,
    );
    assert_eq!(error_kind(&r), (400.0, "unknown_field".into()));

    handle.shutdown();
}

/// Regression: payloads whose numbers parse to non-finite floats (JSON
/// `1e999` → +∞) or whose locations are empty used to reach the panicking
/// `Point` constructor and kill the worker thread mid-request. All of
/// them must now come back as typed 422s — and the server must stay up.
#[test]
fn non_finite_and_empty_coordinates_are_422_not_panics() {
    let (handle, addr) = start(ServerConfig::default());

    // 1e999 overflows f64 to +∞: rejected as a bad instance.
    let r = post(
        addr,
        "/instances",
        r#"{"dim": 1, "points": [{"locations": [[1e999]], "probs": [1]}]}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "bad_instance".into()));

    // Same payload inline through the one-shot endpoint.
    let r = post(
        addr,
        "/solve",
        r#"{"k": 1, "instance": {"dim": 1, "points": [{"locations": [[-1e999]], "probs": [1]}]}}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "bad_instance".into()));

    // NaN-producing probability (∞ is not a valid probability either).
    let r = post(
        addr,
        "/instances",
        r#"{"dim": 1, "points": [{"locations": [[0]], "probs": [1e999]}]}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "bad_instance".into()));

    // dim-0 instance with an empty location: previously panicked inside
    // `Point::new` on the worker thread (connection dropped); now a 422.
    let r = post(
        addr,
        "/instances",
        r#"{"dim": 0, "points": [{"locations": [[]], "probs": [1]}]}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "bad_instance".into()));

    // The server survived all of the above and still solves.
    let r = post(
        addr,
        "/solve",
        &format!(r#"{{"k": 2, "instance": {}}}"#, instance_body(9)),
    );
    assert_eq!(r.status, 200);

    handle.shutdown();
}

#[test]
fn repeated_solves_hit_the_cache_and_report_it() {
    let (handle, addr) = start(ServerConfig::default());
    let upload = parse(&post(addr, "/instances", &instance_body(4)));
    let id = upload.get("id").and_then(Json::as_str).unwrap().to_string();

    assert_eq!(metric(addr, &["cache", "hits"]), 0.0);
    let body = r#"{"k": 3, "rule": "ep"}"#;

    let first = post(addr, &format!("/instances/{id}/solve"), body);
    assert_eq!(first.status, 200);
    let first_doc = parse(&first);
    assert_eq!(first_doc.get("cached").and_then(Json::as_bool), Some(false));
    // The reported digest is the instance's store ID (not a k-dependent
    // problem digest), so clients can cross-reference it.
    assert_eq!(
        first_doc.get("instance_digest").and_then(Json::as_str),
        Some(id.as_str())
    );

    let second = post(addr, &format!("/instances/{id}/solve"), body);
    let second_doc = parse(&second);
    assert_eq!(second_doc.get("cached").and_then(Json::as_bool), Some(true));

    // The acceptance criterion: the second identical solve is a cache
    // hit, visible in /metrics.
    assert_eq!(metric(addr, &["cache", "hits"]), 1.0);
    assert_eq!(metric(addr, &["cache", "misses"]), 1.0);
    assert_eq!(metric(addr, &["solves", "ok"]), 1.0);

    // The cached response carries the same solution bits.
    for key in ["ecost", "certain_radius"] {
        assert_eq!(
            first_doc.get(key).and_then(Json::as_f64),
            second_doc.get(key).and_then(Json::as_f64),
            "{key}"
        );
    }
    assert_eq!(
        first_doc.get("centers").unwrap(),
        second_doc.get("centers").unwrap()
    );
    assert_eq!(
        first_doc.get("assignment").unwrap(),
        second_doc.get("assignment").unwrap()
    );

    // A different config is a different cache key.
    let third = post(
        addr,
        &format!("/instances/{id}/solve"),
        r#"{"k": 3, "rule": "ed"}"#,
    );
    assert_eq!(
        parse(&third).get("cached").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(metric(addr, &["cache", "misses"]), 2.0);

    // `"cache": false` bypasses without recording a hit.
    let bypass = post(
        addr,
        &format!("/instances/{id}/solve"),
        r#"{"k": 3, "rule": "ep", "cache": false}"#,
    );
    assert_eq!(
        parse(&bypass).get("cached").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(metric(addr, &["cache", "hits"]), 1.0);

    handle.shutdown();
}

#[test]
fn concurrent_solves_are_bit_identical_to_sequential() {
    let (handle, addr) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    // Upload several distinct instances, then solve them all at once
    // from parallel client threads (they coalesce into scheduler waves).
    let seeds: Vec<u64> = (10..18).collect();
    let mut ids = Vec::new();
    for &seed in &seeds {
        let doc = parse(&post(addr, "/instances", &instance_body(seed)));
        ids.push(doc.get("id").and_then(Json::as_str).unwrap().to_string());
    }

    let mut threads = Vec::new();
    for (seed, id) in seeds.iter().copied().zip(ids.iter().cloned()) {
        threads.push(std::thread::spawn(move || {
            let r = client::request(
                addr,
                "POST",
                &format!("/instances/{id}/solve"),
                Some(r#"{"k": 3, "cache": false}"#),
            )
            .unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
            (seed, Json::parse(&r.body).unwrap())
        }));
    }

    let config = SolverConfig::default();
    for thread in threads {
        let (seed, served) = thread.join().unwrap();
        // The expected side must see the same bytes the server saw: the
        // upload round-trips through JSON, whose probability
        // re-normalization can shift an ulp vs. the generator's set.
        let uploaded = JsonInstance::parse(&instance_body(seed))
            .unwrap()
            .to_set()
            .unwrap();
        let expected = Problem::euclidean(uploaded, 3)
            .unwrap()
            .solve(&config)
            .unwrap();
        // Bit-identical payload: exact float equality after the f64 →
        // shortest-round-trip-JSON → f64 round trip, which is lossless.
        assert_eq!(
            served
                .get("ecost")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            expected.ecost.to_bits(),
            "seed {seed}"
        );
        let centers = served.get("centers").and_then(Json::as_array).unwrap();
        assert_eq!(centers.len(), expected.centers.len());
        for (center, exp) in centers.iter().zip(&expected.centers) {
            let coords: Vec<f64> = center
                .as_array()
                .unwrap()
                .iter()
                .map(|c| c.as_f64().unwrap())
                .collect();
            assert_eq!(coords, exp.coords());
        }
        let assignment: Vec<usize> = served
            .get("assignment")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|a| a.as_usize().unwrap())
            .collect();
        assert_eq!(assignment, expected.assignment);
    }

    // The wave machinery actually ran.
    assert!(metric(addr, &["scheduler", "waves"]) >= 1.0);
    assert_eq!(
        metric(addr, &["scheduler", "wave_jobs"]),
        seeds.len() as f64
    );
    handle.shutdown();
}

#[test]
fn oneshot_solve_and_keep_alive_sessions() {
    let (handle, addr) = start(ServerConfig::default());

    // One-shot with an inline instance.
    let body = format!(
        r#"{{"k": 2, "solver": "local-search", "rounds": 4, "instance": {}}}"#,
        instance_body(6)
    );
    let r = post(addr, "/solve", &body);
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = parse(&r);
    assert!(doc.get("report").is_some());
    assert_eq!(
        doc.get("method").and_then(Json::as_str),
        Some("euclidean/ep/gonzalez+local-search")
    );

    // A second identical one-shot hits the cache too: content digests
    // make inline and stored instances share identity.
    let r = post(addr, "/solve", &body);
    assert_eq!(parse(&r).get("cached").and_then(Json::as_bool), Some(true));

    // Many requests on one keep-alive connection.
    let mut conn = client::ClientConn::connect(addr).unwrap();
    for _ in 0..3 {
        let r = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(r.status, 200);
    }
    let r = conn.request("POST", "/solve", Some(&body)).unwrap();
    assert_eq!(r.status, 200);

    handle.shutdown();
}

#[test]
fn append_grows_an_instance_under_a_new_content_id() {
    let (handle, addr) = start(ServerConfig::default());
    let upload = parse(&post(addr, "/instances", &instance_body(21)));
    let id = upload.get("id").and_then(Json::as_str).unwrap().to_string();

    // Append a second batch: the grown instance gets its own digest ID;
    // the original stays stored and solvable.
    let grown = post(addr, &format!("/instances/{id}/append"), &instance_body(22));
    assert_eq!(grown.status, 201, "{}", grown.body);
    let doc = parse(&grown);
    let new_id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
    assert_ne!(new_id, id);
    assert_eq!(
        doc.get("previous_id").and_then(Json::as_str),
        Some(id.as_str())
    );
    assert_eq!(doc.get("appended").and_then(Json::as_usize), Some(14));
    assert_eq!(doc.get("n").and_then(Json::as_usize), Some(28));
    assert_eq!(get(addr, &format!("/instances/{id}")).status, 200);
    assert_eq!(get(addr, &format!("/instances/{new_id}")).status, 200);

    // Appending the same batch again deduplicates onto the same grown ID.
    let again = post(addr, &format!("/instances/{id}/append"), &instance_body(22));
    assert_eq!(again.status, 200);
    assert_eq!(
        parse(&again).get("id").and_then(Json::as_str),
        Some(new_id.as_str())
    );

    // Typed failures: unknown base instance, mismatched dimension.
    let r = post(
        addr,
        "/instances/ffffffffffffffff/append",
        &instance_body(22),
    );
    assert_eq!(error_kind(&r), (404.0, "instance_not_found".into()));
    let r = post(
        addr,
        &format!("/instances/{id}/append"),
        r#"{"dim": 3, "points": [{"locations": [[0, 1, 2]], "probs": [1]}]}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "dimension_mismatch".into()));

    handle.shutdown();
}

#[test]
fn stream_lifecycle_push_solution_and_digest_keyed_caching() {
    let (handle, addr) = start(ServerConfig::default());

    // Create a stream; server-assigned ID, echoed configuration.
    let created = post(addr, "/streams", r#"{"k": 3, "rule": "ep", "budget": 12}"#);
    assert_eq!(created.status, 201, "{}", created.body);
    let doc = parse(&created);
    let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(doc.get("k").and_then(Json::as_usize), Some(3));
    assert_eq!(doc.get("budget").and_then(Json::as_usize), Some(12));
    assert_eq!(doc.get("points_seen").and_then(Json::as_f64), Some(0.0));

    // Push two chunks (= two epochs); the digest evolves.
    let push1 = parse(&post(
        addr,
        &format!("/streams/{id}/push"),
        &instance_body(31),
    ));
    assert_eq!(push1.get("epoch").and_then(Json::as_f64), Some(1.0));
    assert_eq!(push1.get("points_seen").and_then(Json::as_f64), Some(14.0));
    let digest1 = push1
        .get("digest")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let push2 = parse(&post(
        addr,
        &format!("/streams/{id}/push"),
        &instance_body(32),
    ));
    assert_eq!(push2.get("epoch").and_then(Json::as_f64), Some(2.0));
    let digest2 = push2
        .get("digest")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_ne!(digest1, digest2);
    let summary_size = push2.get("summary_size").and_then(Json::as_usize).unwrap();
    assert!(summary_size <= 12);

    // Solutions run through the scheduler and cache on the digest:
    // unchanged stream -> second read is a cache hit.
    let hits_before = metric(addr, &["cache", "hits"]);
    let sol1 = get(addr, &format!("/streams/{id}/solution"));
    assert_eq!(sol1.status, 200, "{}", sol1.body);
    let sol1 = parse(&sol1);
    assert_eq!(sol1.get("cached").and_then(Json::as_bool), Some(false));
    let stream_meta = sol1.get("stream").expect("stream metadata");
    assert_eq!(
        stream_meta.get("digest").and_then(Json::as_str),
        Some(digest2.as_str())
    );
    assert_eq!(
        stream_meta.get("points_seen").and_then(Json::as_f64),
        Some(28.0)
    );
    let radius_bound = stream_meta
        .get("radius_bound")
        .and_then(Json::as_f64)
        .unwrap();
    let certain_radius = sol1.get("certain_radius").and_then(Json::as_f64).unwrap();
    assert!(radius_bound >= certain_radius);
    let centers = sol1.get("centers").and_then(Json::as_array).unwrap();
    assert!(centers.len() <= 3);

    let sol2 = parse(&get(addr, &format!("/streams/{id}/solution")));
    assert_eq!(sol2.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(metric(addr, &["cache", "hits"]), hits_before + 1.0);
    assert_eq!(sol1.get("centers").unwrap(), sol2.get("centers").unwrap());

    // A push invalidates by construction: the digest changed, so the
    // next solution is a fresh solve.
    post(addr, &format!("/streams/{id}/push"), &instance_body(33));
    let sol3 = parse(&get(addr, &format!("/streams/{id}/solution")));
    assert_eq!(sol3.get("cached").and_then(Json::as_bool), Some(false));

    // Lifecycle + typed errors.
    let listed = parse(&get(addr, "/streams"));
    assert_eq!(
        listed
            .get("streams")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(1)
    );
    assert_eq!(get(addr, &format!("/streams/{id}")).status, 200);
    let r = get(addr, "/streams/s9999ff/solution");
    assert_eq!(error_kind(&r), (404.0, "stream_not_found".into()));
    let r = post(
        addr,
        &format!("/streams/{id}/push"),
        r#"{"dim": 5, "points": [{"locations": [[0, 1, 2, 3, 4]], "probs": [1]}]}"#,
    );
    assert_eq!(error_kind(&r), (422.0, "dimension_mismatch".into()));
    let r = post(addr, "/streams", r#"{"k": 0}"#);
    assert_eq!(error_kind(&r), (422.0, "zero_k".into()));
    let r = post(addr, "/streams", r#"{"k": 2, "budget": 0}"#);
    assert_eq!(error_kind(&r), (400.0, "bad_schema".into()));

    // An empty stream has no solution yet.
    let empty = parse(&post(addr, "/streams", r#"{"k": 2}"#));
    let empty_id = empty.get("id").and_then(Json::as_str).unwrap();
    let r = get(addr, &format!("/streams/{empty_id}/solution"));
    assert_eq!(error_kind(&r), (422.0, "empty_set".into()));

    let r = client::request(addr, "DELETE", &format!("/streams/{id}"), None).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(get(addr, &format!("/streams/{id}")).status, 404);
    assert_eq!(metric(addr, &["requests", "streams_push"]), 4.0);

    handle.shutdown();
}

/// The bounded per-stream ingest queue pushes back under a burst: with
/// a slow apply (the fault-injection delay) and a queue of 4, a burst
/// of 8 concurrent pushes splits into acks and typed
/// `429 ingest_overloaded` rejections carrying `Retry-After`. No acked
/// push is ever lost — the acked epochs are exactly `1..=accepted` and
/// the stream converges to that epoch count — and the `/metrics`
/// ingest counters agree with the observed split.
#[test]
fn ingest_backpressure_rejects_bursts_and_loses_no_acked_push() {
    let config = ServerConfig {
        ingest_queue_cap: 4,
        ingest_apply_delay_ms: 250,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);

    let created = parse(&post(addr, "/streams", r#"{"k": 2, "budget": 16}"#));
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Fire 8 pushes concurrently. The worker applies at most ~4/s, so
    // the 4-deep queue must fill and reject at least one of them.
    let mut threads = Vec::new();
    for seed in 0..8u64 {
        let path = format!("/streams/{id}/push");
        let body = instance_body(40 + seed);
        threads.push(std::thread::spawn(move || {
            client::request(addr, "POST", &path, Some(&body)).expect("request")
        }));
    }
    let responses: Vec<HttpResponse> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    let mut acked_epochs = Vec::new();
    let mut rejected = 0u64;
    for r in &responses {
        match r.status {
            200 => {
                let doc = parse(r);
                acked_epochs.push(doc.get("epoch").and_then(Json::as_f64).unwrap() as u64);
            }
            429 => {
                assert_eq!(error_kind(r), (429.0, "ingest_overloaded".into()));
                assert!(
                    r.headers
                        .iter()
                        .any(|(name, value)| name == "retry-after" && value == "1"),
                    "429 without Retry-After: {:?}",
                    r.headers
                );
                rejected += 1;
            }
            other => panic!("unexpected status {other}: {}", r.body),
        }
    }
    let accepted = acked_epochs.len() as u64;
    assert_eq!(accepted + rejected, 8);
    assert!(rejected >= 1, "queue of 4 never filled under an 8-burst");
    // 4 queued + 1 in flight can all be acked even if the whole burst
    // lands before the worker pops a single job.
    assert!(accepted >= 4, "only {accepted} pushes accepted");

    // Every ack is real: the acked epochs are exactly 1..=accepted
    // (rejections never consumed an epoch), and the drained stream
    // reports the same count.
    acked_epochs.sort_unstable();
    assert_eq!(acked_epochs, (1..=accepted).collect::<Vec<_>>());
    let meta = parse(&get(addr, &format!("/streams/{id}")));
    assert_eq!(
        meta.get("epochs").and_then(Json::as_f64),
        Some(accepted as f64)
    );

    assert_eq!(metric(addr, &["ingest", "accepted"]), accepted as f64);
    assert_eq!(metric(addr, &["ingest", "rejected"]), rejected as f64);

    handle.shutdown();
}

/// With a staleness budget, `GET /streams/{id}/solution` inside the
/// window re-serves the last rendered response — marked
/// `"stale": true`, still carrying the *previous* digest even after a
/// push moved the stream — and performs no new solve.
#[test]
fn staleness_budget_serves_cached_reads_without_solving() {
    let config = ServerConfig {
        solve_staleness_ms: 60_000,
        ..ServerConfig::default()
    };
    let (handle, addr) = start(config);

    let created = parse(&post(addr, "/streams", r#"{"k": 2}"#));
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    post(addr, &format!("/streams/{id}/push"), &instance_body(51));

    // The first read solves fresh and primes the staleness window.
    let fresh = parse(&get(addr, &format!("/streams/{id}/solution")));
    assert_eq!(fresh.get("stale"), None, "fresh solve marked stale");
    let digest = fresh
        .get("stream")
        .unwrap()
        .get("digest")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // The stream moves on, but a read inside the budget still re-serves
    // the previous response: old digest, `"stale": true`, and zero new
    // solves recorded anywhere in /metrics.
    post(addr, &format!("/streams/{id}/push"), &instance_body(52));
    let solves_before = metric(addr, &["solves", "ok"]);
    let stale = parse(&get(addr, &format!("/streams/{id}/solution")));
    assert_eq!(stale.get("stale").and_then(Json::as_bool), Some(true));
    assert_eq!(
        stale
            .get("stream")
            .unwrap()
            .get("digest")
            .and_then(Json::as_str),
        Some(digest.as_str())
    );
    assert!(metric(addr, &["ingest", "stale_served"]) >= 1.0);
    assert_eq!(metric(addr, &["solves", "ok"]), solves_before);

    handle.shutdown();
}
