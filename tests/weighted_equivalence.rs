//! Equivalence and determinism contracts for the additively-weighted
//! (Apollonius) assignment mode.
//!
//! Weighted assignment compares centers by `d(p, cᵢ) − wᵢ` instead of
//! raw distance. This suite pins its contract against the plain mode:
//!
//! * **w = 0 is bit-identical to plain** — for every kernel (`Scalar`,
//!   `Blocked`, `Tiled`) and both storage modes (the CI determinism
//!   matrix re-runs this file with `UKC_TEST_STORAGE=f32`), a weighted
//!   sweep with all-zero weights produces exactly the plain sweep's
//!   bits, and an all-certain instance (every spread zero) solves to
//!   exactly the plain solution;
//! * weighted `Blocked` and `Tiled` agree with weighted `Scalar` within
//!   `1e-9` on distances and exactly on argmin indices;
//! * switching kernels never changes **which pairs are evaluated**: the
//!   weighted sweeps report identical pair-evaluation counts across all
//!   three kernels, equal to the plain sweeps' counts;
//! * weighted argmin ties break toward the lowest center index,
//!   including exact Apollonius ties (`d₁ − w₁ == d₂ − w₂` with
//!   different distances) and tied centers straddling tile panels;
//! * unsupported combinations are **typed rejections**
//!   ([`SolveError::WeightedUnsupported`]), never silent fallbacks.

use proptest::prelude::*;
use uncertain_kcenter::prelude::*;

fn cfg(kernel: Kernel, mode: AssignmentMode, strategy: CertainStrategy) -> SolverConfig {
    SolverConfig::builder()
        .rule(AssignmentRule::ExpectedDistance)
        .strategy(strategy)
        .kernel(kernel)
        .assignment(mode)
        .eps(0.5)
        .lower_bound(false)
        .build()
        .expect("static test config")
}

/// Deterministic pseudo-random coordinates in `[0, 1)` (xorshift; no
/// external RNG so the goldens never drift).
fn coords(seed: u64, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| (0..dim).map(|_| rnd()).collect()).collect()
}

/// Builds a store, additionally enabling the f32 mirror when CI's
/// determinism matrix sets `UKC_TEST_STORAGE=f32`. Every property in
/// this file must hold identically either way: plain and weighted
/// sweeps read the *same* storage, so w = 0 bit-identity is
/// storage-independent by construction.
fn store_of(seed: u64, n: usize, dim: usize) -> PointStore {
    let mut store = PointStore::new(dim);
    for row in coords(seed, n, dim) {
        store.try_push(&row).unwrap();
    }
    if std::env::var("UKC_TEST_STORAGE").as_deref() == Ok("f32") {
        store.try_enable_f32().unwrap();
    }
    store
}

/// Deterministic weights in `[0, 0.5)`, one per center.
fn weights_of(seed: u64, k: usize) -> Vec<f64> {
    coords(seed, k, 1).into_iter().map(|r| r[0] * 0.5).collect()
}

/// Zero-weight sweeps reproduce the plain sweeps bit for bit, under
/// every kernel, at a size where the factorized paths genuinely engage
/// (`n·d` well past the factorization threshold, k spanning several
/// tile panels).
#[test]
fn zero_weight_sweeps_are_bit_identical_to_plain() {
    let (n, dim, k) = (600, 8, 10);
    let store = store_of(11, n, dim);
    let points: Vec<PointId> = (0..n - k).map(PointId).collect();
    let centers: Vec<PointId> = (n - k..n).map(PointId).collect();
    let zeros = vec![0.0; k];
    for kernel in Kernel::ALL {
        let oracle = StoreOracle::new(&store, kernel);
        let mut plain = vec![f64::INFINITY; points.len()];
        let mut weighted = vec![f64::INFINITY; points.len()];
        oracle.dists_to_centers_min(&points, &centers, &mut plain);
        oracle.dists_to_centers_min_weighted(&points, &centers, &zeros, &mut weighted);
        for (i, (p, w)) in plain.iter().zip(&weighted).enumerate() {
            assert_eq!(p.to_bits(), w.to_bits(), "point {i} under {kernel:?}");
        }

        let mut plain_nearest = vec![(0usize, 0.0f64); points.len()];
        let mut weighted_nearest = vec![(0usize, 0.0f64); points.len()];
        oracle.nearest_each(&points, &centers, &mut plain_nearest);
        oracle.nearest_each_weighted(&points, &centers, &zeros, &mut weighted_nearest);
        for (i, ((pi, pd), (wi, wd))) in plain_nearest.iter().zip(&weighted_nearest).enumerate() {
            assert_eq!(pi, wi, "argmin for point {i} under {kernel:?}");
            assert_eq!(
                pd.to_bits(),
                wd.to_bits(),
                "dist for point {i} under {kernel:?}"
            );
        }
    }
}

/// The weighted sweeps evaluate exactly the same point–center pairs as
/// the plain sweeps, under every kernel: the pair-evaluation tallies are
/// identical across all three kernels and equal to the plain tallies.
/// Weights must only change arithmetic, never coverage.
#[test]
fn weighted_pair_evaluation_counts_are_identical() {
    let (n, dim, k) = (500, 6, 7);
    let store = store_of(23, n, dim);
    let points: Vec<PointId> = (0..n - k).map(PointId).collect();
    let centers: Vec<PointId> = (n - k..n).map(PointId).collect();
    let w = weights_of(42, k);
    let mut counts = Vec::new();
    for kernel in Kernel::ALL {
        let counter = DistCounter::new();
        let oracle = StoreOracle::new(&store, kernel).with_counter(&counter);
        let mut min = vec![f64::INFINITY; points.len()];
        oracle.dists_to_centers_min_weighted(&points, &centers, &w, &mut min);
        let mut nearest = vec![(0usize, 0.0f64); points.len()];
        oracle.nearest_each_weighted(&points, &centers, &w, &mut nearest);
        counts.push(counter.count());

        let plain_counter = DistCounter::new();
        let plain_oracle = StoreOracle::new(&store, kernel).with_counter(&plain_counter);
        let mut plain_min = vec![f64::INFINITY; points.len()];
        plain_oracle.dists_to_centers_min(&points, &centers, &mut plain_min);
        let mut plain_nearest = vec![(0usize, 0.0f64); points.len()];
        plain_oracle.nearest_each(&points, &centers, &mut plain_nearest);
        assert_eq!(
            counter.count(),
            plain_counter.count(),
            "weighted vs plain tally under {kernel:?}"
        );
    }
    assert_eq!(counts[0], counts[1], "Scalar vs Blocked weighted tally");
    assert_eq!(counts[0], counts[2], "Scalar vs Tiled weighted tally");
    assert_eq!(counts[0], 2 * (points.len() as u64) * (k as u64));
}

/// Weighted `Blocked` and `Tiled` agree with weighted `Scalar` within
/// `1e-9` on distances and exactly on argmin indices, with nonzero
/// weights in play. This is an f64-arithmetic contract, so the store is
/// built without the f32 mirror regardless of the CI storage matrix
/// (the mirror's documented bound is the looser one pinned in
/// `kernel_equivalence.rs`); every other test in this file is
/// storage-independent and runs under both modes.
#[test]
fn weighted_factorized_kernels_match_scalar_within_1e9() {
    let (n, dim, k) = (700, 8, 9);
    let mut store = PointStore::new(dim);
    for row in coords(37, n, dim) {
        store.try_push(&row).unwrap();
    }
    let points: Vec<PointId> = (0..n - k).map(PointId).collect();
    let centers: Vec<PointId> = (n - k..n).map(PointId).collect();
    let w = weights_of(5, k);
    let scalar = StoreOracle::new(&store, Kernel::Scalar);
    let mut want_min = vec![f64::INFINITY; points.len()];
    scalar.dists_to_centers_min_weighted(&points, &centers, &w, &mut want_min);
    let mut want_nearest = vec![(0usize, 0.0f64); points.len()];
    scalar.nearest_each_weighted(&points, &centers, &w, &mut want_nearest);
    for kernel in [Kernel::Blocked, Kernel::Tiled] {
        let oracle = StoreOracle::new(&store, kernel);
        let mut got_min = vec![f64::INFINITY; points.len()];
        oracle.dists_to_centers_min_weighted(&points, &centers, &w, &mut got_min);
        for (i, (a, b)) in want_min.iter().zip(&got_min).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                "point {i} under {kernel:?}: {a} vs {b}"
            );
        }
        let mut got_nearest = vec![(0usize, 0.0f64); points.len()];
        oracle.nearest_each_weighted(&points, &centers, &w, &mut got_nearest);
        for (i, ((ai, ad), (bi, bd))) in want_nearest.iter().zip(&got_nearest).enumerate() {
            assert_eq!(ai, bi, "argmin for point {i} under {kernel:?}");
            assert!(
                (ad - bd).abs() <= 1e-9 * (1.0 + ad.abs()),
                "dist for point {i} under {kernel:?}: {ad} vs {bd}"
            );
        }
    }
}

/// Weighted argmin ties break toward the lowest center index under
/// every kernel, with identical centers carrying identical weights
/// straddling the tiled kernel's 4-wide panel boundaries.
#[test]
fn weighted_nearest_ties_break_low_under_every_kernel() {
    let (n, dim, k) = (400, 8, 10);
    let mut store = store_of(99, n, dim);
    let c = store.coords(PointId(0)).to_vec();
    let centers: Vec<PointId> = (0..k).map(|_| store.try_push(&c).unwrap()).collect();
    let queries: Vec<PointId> = (0..n).map(PointId).collect();
    let w = vec![0.25; k];
    for kernel in Kernel::ALL {
        let oracle = StoreOracle::new(&store, kernel);
        let mut out = vec![(0usize, 0.0f64); n];
        oracle.nearest_each_weighted(&queries, &centers, &w, &mut out);
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(*idx, 0, "query {i} under {kernel:?} picked center {idx}");
        }
    }
}

/// An *exact* Apollonius tie — different distances, weights chosen so
/// `d₁ − w₁ == d₂ − w₂` with no rounding — still breaks toward the
/// lowest index, in either center order.
#[test]
fn exact_apollonius_ties_break_low() {
    let q = Point::new(vec![0.0]);
    let near = Point::new(vec![1.0]); // d = 1, w = 0   → value 1
    let far = Point::new(vec![2.0]); // d = 2, w = 1   → value 1
    let (idx, v) = Euclidean
        .nearest_weighted(&q, &[near.clone(), far.clone()], &[0.0, 1.0])
        .unwrap();
    assert_eq!((idx, v), (0, 1.0));
    let (idx, v) = Euclidean
        .nearest_weighted(&q, &[far, near], &[1.0, 0.0])
        .unwrap();
    assert_eq!((idx, v), (0, 1.0));
}

/// All-certain instances have zero spread everywhere, so the weighted
/// pipeline must reproduce the plain pipeline **bit for bit** — same
/// centers, same assignment, same costs — under every kernel.
#[test]
fn all_certain_weighted_solve_is_bit_identical_to_plain() {
    let (n, dim, k) = (60, 3, 4);
    let points: Vec<UncertainPoint<Point>> = coords(7, n, dim)
        .into_iter()
        .map(|row| UncertainPoint::certain(Point::new(row)))
        .collect();
    let set = UncertainSet::new(points);
    for kernel in Kernel::ALL {
        let plain = Problem::euclidean(set.clone(), k)
            .unwrap()
            .solve(&cfg(
                kernel,
                AssignmentMode::Plain,
                CertainStrategy::Gonzalez,
            ))
            .unwrap();
        let weighted = Problem::euclidean(set.clone(), k)
            .unwrap()
            .solve(&cfg(
                kernel,
                AssignmentMode::AdditivelyWeighted,
                CertainStrategy::Gonzalez,
            ))
            .unwrap();
        assert_eq!(&plain.assignment, &weighted.assignment, "{kernel:?}");
        assert_eq!(
            plain.ecost.to_bits(),
            weighted.ecost.to_bits(),
            "{kernel:?}: ecost {} vs {}",
            plain.ecost,
            weighted.ecost
        );
        assert_eq!(
            plain.certain_radius.to_bits(),
            weighted.certain_radius.to_bits(),
            "{kernel:?}"
        );
        assert_eq!(plain.centers.len(), weighted.centers.len());
        for (a, b) in plain.centers.iter().zip(weighted.centers.iter()) {
            assert_eq!(a.coords(), b.coords(), "{kernel:?}");
        }
        assert!(weighted.report.method.ends_with("/weighted"));
        assert!(!plain.report.method.ends_with("/weighted"));
    }
}

/// Every unsupported weighted combination is a typed
/// [`SolveError::WeightedUnsupported`], never a silent plain fallback:
/// non-Gonzalez strategies and discrete problems all reject.
#[test]
fn weighted_unsupported_combinations_reject_with_typed_errors() {
    let set = clustered(3, 12, 2, 2, 3, 4.0, 1.0, ProbModel::Random);
    for strategy in [
        CertainStrategy::GonzalezLocalSearch { rounds: 5 },
        CertainStrategy::Grid,
        CertainStrategy::ExactDiscrete,
    ] {
        let err = Problem::euclidean(set.clone(), 2)
            .unwrap()
            .solve(&cfg(
                Kernel::Blocked,
                AssignmentMode::AdditivelyWeighted,
                strategy,
            ))
            .unwrap_err();
        assert!(
            matches!(err, SolveError::WeightedUnsupported { .. }),
            "{strategy:?}: {err}"
        );
    }
    // Discrete (finite-metric) problems reject too.
    let pool: Vec<Point> = coords(9, 8, 2).into_iter().map(Point::new).collect();
    let err = Problem::in_metric(set, 2, Euclidean, pool)
        .unwrap()
        .solve(&cfg(
            Kernel::Scalar,
            AssignmentMode::AdditivelyWeighted,
            CertainStrategy::Gonzalez,
        ))
        .unwrap_err();
    assert!(
        matches!(err, SolveError::WeightedUnsupported { .. }),
        "discrete: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random uncertain instances, the weighted pipeline under the
    /// factorized kernels agrees with weighted `Scalar`: same
    /// assignment, costs within 1e-9, and identical per-stage
    /// distance-evaluation counts (weights never change which pairs are
    /// evaluated, under any kernel).
    #[test]
    fn weighted_solve_kernels_agree(
        seed in 0u64..1000,
        n in 4usize..16,
        z in 1usize..4,
        dim in 1usize..4,
        k in 1usize..4,
    ) {
        let k = k.min(n);
        let set = clustered(seed, n, z, dim, 3, 5.0, 1.0, ProbModel::Random);
        let scalar = Problem::euclidean(set.clone(), k)
            .unwrap()
            .solve(&cfg(
                Kernel::Scalar,
                AssignmentMode::AdditivelyWeighted,
                CertainStrategy::Gonzalez,
            ))
            .unwrap();
        for kernel in [Kernel::Blocked, Kernel::Tiled] {
            let other = Problem::euclidean(set.clone(), k)
                .unwrap()
                .solve(&cfg(
                    kernel,
                    AssignmentMode::AdditivelyWeighted,
                    CertainStrategy::Gonzalez,
                ))
                .unwrap();
            prop_assert_eq!(&scalar.assignment, &other.assignment, "{:?}", kernel);
            prop_assert!(
                (scalar.ecost - other.ecost).abs() <= 1e-9 * (1.0 + scalar.ecost),
                "ecost {} vs {} ({:?})", scalar.ecost, other.ecost, kernel
            );
            prop_assert!(
                (scalar.certain_radius - other.certain_radius).abs()
                    <= 1e-9 * (1.0 + scalar.certain_radius),
                "radius {} vs {} ({:?})", scalar.certain_radius, other.certain_radius, kernel
            );
            let (s, o) = (scalar.report.distance_evals, other.report.distance_evals);
            prop_assert_eq!(s.representatives, o.representatives, "{:?}", kernel);
            prop_assert_eq!(s.certain_solve, o.certain_solve, "{:?}", kernel);
            prop_assert_eq!(s.assignment, o.assignment, "{:?}", kernel);
            prop_assert_eq!(s.cost, o.cost, "{:?}", kernel);
        }
    }
}
