//! Property tests over the typed-error contract: `k == 0`, empty sets,
//! and `k > n` always come back as `SolveError` variants — never panics —
//! across every rule × strategy combination, in both spaces.

use proptest::prelude::*;
use uncertain_kcenter::prelude::*;

fn rules() -> [AssignmentRule; 3] {
    [
        AssignmentRule::ExpectedDistance,
        AssignmentRule::ExpectedPoint,
        AssignmentRule::OneCenter,
    ]
}

fn strategies() -> [CertainStrategy; 4] {
    [
        CertainStrategy::Gonzalez,
        CertainStrategy::GonzalezLocalSearch { rounds: 5 },
        CertainStrategy::Grid,
        CertainStrategy::ExactDiscrete,
    ]
}

fn config(rule: AssignmentRule, strategy: CertainStrategy) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .build()
        .expect("rule × strategy configs are all buildable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `k == 0` is `SolveError::ZeroK` for every instance shape.
    #[test]
    fn zero_k_is_typed(seed in 0u64..500, n in 1usize..8, z in 1usize..4) {
        let set = uniform_box(seed, n, z, 2, 10.0, 1.0, ProbModel::Random);
        prop_assert_eq!(Problem::euclidean(set, 0).err(), Some(SolveError::ZeroK));
    }

    /// An empty point list is `SolveError::EmptySet` for any k (the set
    /// is validated before k, so even `k == 0` reports the empty set).
    #[test]
    fn empty_set_is_typed(k in 0usize..6) {
        prop_assert_eq!(
            Problem::euclidean_points(vec![], k).err(),
            Some(SolveError::EmptySet)
        );
    }

    /// `k > n` is `SolveError::KExceedsN` with the exact numbers.
    #[test]
    fn k_exceeds_n_is_typed(seed in 0u64..500, n in 1usize..6, extra in 1usize..5) {
        let set = uniform_box(seed, n, 2, 2, 10.0, 1.0, ProbModel::Random);
        let k = n + extra;
        prop_assert_eq!(
            Problem::euclidean(set, k).err(),
            Some(SolveError::KExceedsN { k, n })
        );
    }

    /// Valid problems solve without panicking for every rule × strategy
    /// combination, in the Euclidean space.
    #[test]
    fn all_combos_solve_euclidean(seed in 0u64..200, n in 2usize..7, k in 1usize..3) {
        let n = n.max(k);
        let set = uniform_box(seed, n, 2, 2, 10.0, 1.0, ProbModel::Random);
        let problem = Problem::euclidean(set, k).expect("k <= n by construction");
        for rule in rules() {
            for strategy in strategies() {
                let sol = problem.solve(&config(rule, strategy))
                    .expect("euclidean space supports every combination");
                prop_assert_eq!(sol.centers.len(), k);
                prop_assert!(sol.ecost.is_finite());
                prop_assert!(sol.report.lower_bound.expect("bound on") <= sol.ecost + 1e-9);
            }
        }
    }

    /// Discrete problems: every combination either solves or returns the
    /// documented typed error (EP rule / grid strategy unsupported) —
    /// never a panic.
    #[test]
    fn all_combos_typed_on_discrete(seed in 0u64..200, n in 2usize..6, k in 1usize..3) {
        let n = n.max(k);
        let fm = WeightedGraph::cycle(8, 1.0).shortest_path_metric().expect("valid cycle");
        let set = on_finite_metric(seed, fm.len(), n, 2, ProbModel::Random);
        let pool: Vec<usize> = fm.ids();
        let problem = Problem::in_metric(set, k, fm, pool).expect("k <= n by construction");
        for rule in rules() {
            for strategy in strategies() {
                match problem.solve(&config(rule, strategy)) {
                    Ok(sol) => {
                        prop_assert!(rule != AssignmentRule::ExpectedPoint);
                        prop_assert!(strategy != CertainStrategy::Grid);
                        prop_assert_eq!(sol.centers.len(), k);
                        prop_assert!(sol.ecost.is_finite());
                    }
                    Err(SolveError::RuleUnsupported { rule: r, space }) => {
                        prop_assert_eq!(r, AssignmentRule::ExpectedPoint);
                        prop_assert_eq!(space, "discrete");
                    }
                    Err(SolveError::StrategyUnsupported { strategy: s, space }) => {
                        prop_assert_eq!(s, "grid");
                        prop_assert_eq!(space, "discrete");
                    }
                    Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                }
            }
        }
    }

    /// Non-positive or non-finite ε never builds a config.
    #[test]
    fn bad_epsilon_is_typed(eps in -5.0f64..0.0) {
        prop_assert!(matches!(
            SolverConfig::builder().eps(eps).build(),
            Err(SolveError::BadEpsilon { .. })
        ));
    }

    /// An empty candidate pool is `SolveError::EmptyCandidates`.
    #[test]
    fn empty_pool_is_typed(seed in 0u64..200) {
        let fm = WeightedGraph::cycle(6, 1.0).shortest_path_metric().expect("valid cycle");
        let set = on_finite_metric(seed, fm.len(), 3, 2, ProbModel::Random);
        prop_assert_eq!(
            Problem::in_metric(set, 2, fm, vec![]).err(),
            Some(SolveError::EmptyCandidates)
        );
    }

    /// Mixed-dimension locations are `SolveError::DimensionMismatch` at
    /// problem construction, never a panic inside a solve.
    #[test]
    fn mixed_dims_are_typed(d1 in 1usize..4, extra in 1usize..3) {
        let set = UncertainSet::new(vec![
            UncertainPoint::certain(Point::origin(d1)),
            UncertainPoint::certain(Point::origin(d1 + extra)),
        ]);
        prop_assert_eq!(
            Problem::euclidean(set, 1).err(),
            Some(SolveError::DimensionMismatch { point: 1, got: d1 + extra, expected: d1 })
        );
    }
}

/// Malformed atom lists through the public `try_` entry points are typed
/// errors; the panicking wrappers keep their messages for internal use.
#[test]
fn expected_max_atom_errors_are_typed() {
    assert_eq!(try_expected_max(&[]), Err(AtomsError::NoVariables));
    assert_eq!(
        try_expected_max(&[vec![]]),
        Err(AtomsError::EmptyVariable { index: 0 })
    );
    assert!(matches!(
        try_expected_max(&[vec![(1.0, 1.0)], vec![(f64::NAN, 1.0)]]),
        Err(AtomsError::NonFiniteValue { index: 1, .. })
    ));
    assert!(matches!(
        try_expected_max(&[vec![(1.0, -0.5), (2.0, 1.5)]]),
        Err(AtomsError::BadProbability { index: 0, .. })
    ));
    assert!(matches!(
        try_expected_max(&[vec![(1.0, 0.25)]]),
        Err(AtomsError::BadSum { index: 0, .. })
    ));
    assert!(matches!(
        try_max_cdf(&[vec![]], 1.0),
        Err(AtomsError::EmptyVariable { index: 0 })
    ));
    assert!(matches!(
        try_max_quantile(&[vec![(1.0, 1.0)]], 0.0),
        Err(AtomsError::BadQuantile { .. })
    ));
    // Valid inputs agree with the panicking path.
    let coin = vec![(0.0, 0.5), (1.0, 0.5)];
    let vars = [coin.clone(), coin];
    assert_eq!(try_expected_max(&vars), Ok(expected_max(&vars)));
    assert_eq!(try_max_cdf(&vars, 0.5), Ok(max_cdf(&vars, 0.5)));
    assert_eq!(try_max_quantile(&vars, 0.9), Ok(max_quantile(&vars, 0.9)));
}
