//! Cross-crate integration tests: the full pipeline against independent
//! oracles (realization enumeration, Monte Carlo, metric embeddings).

use rand::rngs::StdRng;
use rand::SeedableRng;
use uncertain_kcenter::prelude::*;
use uncertain_kcenter::uncertain::{ecost_assigned_enumerate, ecost_unassigned_enumerate};

/// One Euclidean solve through the `Problem` API with a (rule, default
/// Gonzalez) config and no per-solve bound.
fn solve_eu(set: &UncertainSet<Point>, k: usize, rule: AssignmentRule) -> Solution<Point> {
    solve_eu_with(set, k, rule, CertainStrategy::Gonzalez)
}

/// Like [`solve_eu`] with an explicit certain strategy.
fn solve_eu_with(
    set: &UncertainSet<Point>,
    k: usize,
    rule: AssignmentRule,
    strategy: CertainStrategy,
) -> Solution<Point> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .lower_bound(false)
        .build()
        .expect("static test config");
    Problem::euclidean(set.clone(), k.min(set.n()))
        .expect("test instances are valid")
        .solve(&config)
        .expect("euclidean pipeline accepts every test config")
}

/// One grid-strategy solve at a given ε.
#[allow(dead_code)]
fn solve_eu_grid(
    set: &UncertainSet<Point>,
    k: usize,
    rule: AssignmentRule,
    eps: f64,
) -> Solution<Point> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(CertainStrategy::Grid)
        .eps(eps)
        .lower_bound(false)
        .build()
        .expect("static test config");
    Problem::euclidean(set.clone(), k)
        .expect("test instances are valid")
        .solve(&config)
        .expect("euclidean pipeline accepts every test config")
}

/// One metric-space solve through the `Problem` API.
#[allow(dead_code)]
fn solve_me<M: Metric<usize> + Send + Sync + Clone + 'static>(
    set: &UncertainSet<usize>,
    k: usize,
    rule: AssignmentRule,
    strategy: CertainStrategy,
    pool: &[usize],
    metric: &M,
) -> Solution<usize> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .lower_bound(false)
        .build()
        .expect("static test config");
    Problem::in_metric(set.clone(), k, metric.clone(), pool.to_vec())
        .expect("test instances are valid")
        .solve(&config)
        .expect("metric pipeline accepts ED/OC rules")
}

#[test]
fn exact_cost_matches_enumeration_through_full_pipeline() {
    for seed in 0..6u64 {
        let set = clustered(seed, 5, 3, 2, 2, 5.0, 1.0, ProbModel::Random);
        let sol = solve_eu(&set, 2, AssignmentRule::ExpectedDistance);
        let enumerated = ecost_assigned_enumerate(&set, &sol.centers, &sol.assignment, &Euclidean);
        assert!(
            (sol.ecost - enumerated).abs() < 1e-9,
            "seed {seed}: sweep {} vs enumeration {enumerated}",
            sol.ecost
        );
    }
}

#[test]
fn exact_cost_matches_monte_carlo_through_full_pipeline() {
    let set = clustered(3, 20, 4, 2, 3, 5.0, 1.5, ProbModel::HeavyTail);
    let sol = solve_eu(&set, 3, AssignmentRule::ExpectedPoint);
    let mut rng = StdRng::seed_from_u64(123);
    let mc = ecost_monte_carlo(
        &set,
        &sol.centers,
        Some(&sol.assignment),
        &Euclidean,
        200_000,
        &mut rng,
    );
    assert!(
        (mc.mean - sol.ecost).abs() < 6.0 * mc.std_error + 1e-3,
        "exact {} vs MC {} ± {}",
        sol.ecost,
        mc.mean,
        mc.std_error
    );
}

#[test]
fn euclidean_instance_embedded_as_finite_metric_gives_consistent_costs() {
    // Embed all locations into a FiniteMetric and re-run the metric
    // pipeline; expected costs of identical (centers, assignment) must
    // agree exactly.
    let set = clustered(7, 6, 3, 2, 2, 5.0, 1.0, ProbModel::Random);
    let pool = set.location_pool();
    let fm = FiniteMetric::from_points(&pool, &Euclidean);
    // Rebuild the uncertain set over ids: location j of point i is at
    // pool index (sum of z's before i) + j.
    let mut offset = 0usize;
    let id_points: Vec<UncertainPoint<usize>> = set
        .iter()
        .map(|up| {
            let ids: Vec<usize> = (0..up.z()).map(|j| offset + j).collect();
            offset += up.z();
            UncertainPoint::new(ids, up.probs().to_vec()).unwrap()
        })
        .collect();
    let id_set = UncertainSet::new(id_points);
    let ids: Vec<usize> = (0..pool.len()).collect();

    // Same centers: pick 2 pool members.
    let centers_euclid = vec![pool[0].clone(), pool[7].clone()];
    let centers_ids = vec![0usize, 7usize];
    let assignment = assign_ed(&set, &centers_euclid, &Euclidean);
    let assignment_ids = assign_ed(&id_set, &centers_ids, &fm);
    assert_eq!(assignment, assignment_ids, "ED assignment must agree");

    let cost_euclid = ecost_assigned(&set, &centers_euclid, &assignment, &Euclidean);
    let cost_ids = ecost_assigned(&id_set, &centers_ids, &assignment_ids, &fm);
    assert!((cost_euclid - cost_ids).abs() < 1e-9);

    // Lower bounds agree too (over the same discrete pool).
    let lb_ids = lower_bound_metric(&id_set, 2, &ids, &fm);
    let sol = solve_me(
        &id_set,
        2,
        AssignmentRule::ExpectedDistance,
        CertainStrategy::Gonzalez,
        &ids,
        &fm,
    );
    assert!(lb_ids <= sol.ecost + 1e-9);
}

#[test]
fn more_centers_never_increase_cost() {
    let set = clustered(9, 24, 3, 2, 4, 5.0, 1.0, ProbModel::Random);
    let mut prev = f64::INFINITY;
    for k in 1..=6 {
        let sol = solve_eu_with(
            &set,
            k,
            AssignmentRule::ExpectedPoint,
            CertainStrategy::GonzalezLocalSearch { rounds: 20 },
        );
        // Local search is not globally monotone in k, but the trend must
        // hold with slack: k+1 centers never cost more than 1.5x the k
        // solution on these workloads, and the k=6 cost beats k=1.
        assert!(
            sol.ecost <= prev * 1.5 + 1e-9,
            "k={k}: {} vs prev {prev}",
            sol.ecost
        );
        prev = prev.min(sol.ecost);
    }
    let k1 = solve_eu(&set, 1, AssignmentRule::ExpectedPoint);
    let k6 = solve_eu(&set, 6, AssignmentRule::ExpectedPoint);
    assert!(k6.ecost <= k1.ecost + 1e-9);
}

#[test]
fn unassigned_cost_lower_bounds_assigned_cost_end_to_end() {
    for seed in 0..5u64 {
        let set = uniform_box(seed, 10, 3, 2, 20.0, 2.0, ProbModel::Random);
        let sol = solve_eu(&set, 3, AssignmentRule::ExpectedDistance);
        let unassigned = ecost_unassigned(&set, &sol.centers, &Euclidean);
        assert!(
            unassigned <= sol.ecost + 1e-9,
            "seed {seed}: unassigned {} > assigned {}",
            unassigned,
            sol.ecost
        );
        let enumerated = ecost_unassigned_enumerate(&set, &sol.centers, &Euclidean);
        assert!((unassigned - enumerated).abs() < 1e-9);
    }
}

#[test]
fn one_d_solver_agrees_with_generic_pipeline_on_easy_instances() {
    // Two well-separated clusters on a line: both solvers must find the
    // same (trivially optimal) clustering.
    let mk = |base: f64| -> Vec<UncertainPoint<Point>> {
        (0..4)
            .map(|i| {
                UncertainPoint::new(
                    vec![
                        Point::scalar(base + i as f64 * 0.2),
                        Point::scalar(base + i as f64 * 0.2 + 0.4),
                    ],
                    vec![0.5, 0.5],
                )
                .unwrap()
            })
            .collect()
    };
    let mut pts = mk(0.0);
    pts.extend(mk(1000.0));
    let set = UncertainSet::new(pts);
    let exact = solve_one_d(&set, 2);
    let generic = solve_eu(&set, 2, AssignmentRule::ExpectedDistance);
    assert!(exact.ecost_ed < 10.0);
    assert!(generic.ecost < 10.0);
    // Identical cluster structure.
    assert_eq!(exact.assignment[..4], exact.assignment[..4]);
    assert!(exact.assignment[..4]
        .iter()
        .all(|&a| a == exact.assignment[0]));
    assert!(exact.assignment[4..]
        .iter()
        .all(|&a| a == exact.assignment[4]));
}

#[test]
fn tree_and_graph_metrics_interoperate_with_solver() {
    // The same tree as a TreeMetric and as a graph closure: identical
    // pipeline outputs.
    let edges = [
        (0usize, 1usize, 2.0f64),
        (1, 2, 1.0),
        (1, 3, 3.0),
        (3, 4, 1.0),
        (0, 5, 2.5),
    ];
    let tm = TreeMetric::from_edges(6, &edges).unwrap();
    let mut g = WeightedGraph::new(6);
    for &(u, v, w) in &edges {
        g.add_edge(u, v, w).unwrap();
    }
    let fm = g.shortest_path_metric().unwrap();
    let set = on_finite_metric(5, 6, 5, 2, ProbModel::Random);
    let ids: Vec<usize> = (0..6).collect();
    let sol_tree = solve_me(
        &set,
        2,
        AssignmentRule::OneCenter,
        CertainStrategy::Gonzalez,
        &ids,
        &tm,
    );
    let sol_graph = solve_me(
        &set,
        2,
        AssignmentRule::OneCenter,
        CertainStrategy::Gonzalez,
        &ids,
        &fm,
    );
    assert_eq!(sol_tree.centers, sol_graph.centers);
    assert_eq!(sol_tree.assignment, sol_graph.assignment);
    assert!((sol_tree.ecost - sol_graph.ecost).abs() < 1e-9);
}

#[test]
fn baselines_and_paper_algorithms_share_cost_semantics() {
    // Feeding the baseline's centers through the core cost function must
    // reproduce the baseline's reported cost.
    let set = clustered(11, 10, 3, 2, 2, 5.0, 1.0, ProbModel::Random);
    let b = mode_baseline(&set, 2, &Euclidean);
    let recomputed = ecost_assigned(&set, &b.centers, &b.assignment, &Euclidean);
    assert!((b.ecost - recomputed).abs() < 1e-12);
}
