//! The execution layer's determinism contract, end to end.
//!
//! `SolverConfig::threads` is a pure *resource* knob: every batched sweep
//! the pool parallelizes uses chunk boundaries and reduction orders that
//! are functions of input size alone, so solver output must be
//! **bit-identical** for `threads ∈ {1, 2, ncpu}` — solutions, per-stage
//! `Report.distance_evals`, certified lower bounds, instance digests,
//! and the serving layer's cache keys — under both distance kernels.
//!
//! The CI matrix re-runs the whole test suite under `UKC_THREADS=1` and
//! `UKC_THREADS=4`, so these assertions are exercised both with an empty
//! pool (every sweep inline) and with real workers claiming chunks.

use proptest::prelude::*;
use ukc_server::cache::SolveKey;
use uncertain_kcenter::prelude::*;

fn ncpu() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The lane counts every pinned quantity must agree across.
fn thread_grid() -> Vec<usize> {
    let mut grid = vec![1, 2, ncpu()];
    grid.dedup();
    grid
}

fn cfg(
    rule: AssignmentRule,
    strategy: CertainStrategy,
    kernel: Kernel,
    threads: usize,
) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .kernel(kernel)
        .eps(0.5)
        .threads(threads)
        .build()
        .expect("static test config")
}

/// Bitwise solution identity: floats by bit pattern, structures exactly.
fn assert_identical(a: &Solution<Point>, b: &Solution<Point>, ctx: &str) {
    assert_eq!(a.ecost.to_bits(), b.ecost.to_bits(), "ecost ({ctx})");
    assert_eq!(
        a.certain_radius.to_bits(),
        b.certain_radius.to_bits(),
        "radius ({ctx})"
    );
    assert_eq!(a.assignment, b.assignment, "assignment ({ctx})");
    assert_eq!(a.centers.len(), b.centers.len(), "center count ({ctx})");
    for (x, y) in a.centers.iter().zip(&b.centers) {
        assert_eq!(x.coords(), y.coords(), "center coords ({ctx})");
    }
    for (x, y) in a.representatives.iter().zip(&b.representatives) {
        assert_eq!(x.coords(), y.coords(), "representative coords ({ctx})");
    }
    assert_eq!(
        a.report.lower_bound.map(f64::to_bits),
        b.report.lower_bound.map(f64::to_bits),
        "lower bound ({ctx})"
    );
    assert_eq!(a.report.method, b.report.method, "method ({ctx})");
    let (ea, eb) = (a.report.distance_evals, b.report.distance_evals);
    assert_eq!(ea.representatives, eb.representatives, "rep evals ({ctx})");
    assert_eq!(ea.certain_solve, eb.certain_solve, "certain evals ({ctx})");
    assert_eq!(ea.assignment, eb.assignment, "assignment evals ({ctx})");
    assert_eq!(ea.cost, eb.cost, "cost evals ({ctx})");
    assert_eq!(ea.lower_bound, eb.lower_bound, "bound evals ({ctx})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random small instances: every rule × kernel over the Gonzalez
    /// backend is bit-identical across the thread grid (output, eval
    /// counts, lower bounds, digests).
    #[test]
    fn threads_never_change_solutions(
        seed in 0u64..1000,
        n in 3usize..16,
        z in 1usize..4,
        dim in 1usize..4,
        k in 1usize..4,
    ) {
        let k = k.min(n);
        let set = clustered(seed, n, z, dim, 3, 5.0, 1.0, ProbModel::Random);
        for rule in [
            AssignmentRule::ExpectedDistance,
            AssignmentRule::ExpectedPoint,
            AssignmentRule::OneCenter,
        ] {
            for kernel in [Kernel::Scalar, Kernel::Blocked] {
                let strategy = CertainStrategy::Gonzalez;
                let problem = Problem::euclidean(set.clone(), k).unwrap();
                let digest = problem.instance_digest();
                let baseline = problem.solve(&cfg(rule, strategy, kernel, 1)).unwrap();
                for threads in thread_grid() {
                    let sol = problem.solve(&cfg(rule, strategy, kernel, threads)).unwrap();
                    assert_identical(
                        &baseline,
                        &sol,
                        &format!("{rule:?}/{strategy:?}/{kernel:?}/t{threads}"),
                    );
                    prop_assert_eq!(problem.instance_digest(), digest);
                }
            }
        }
    }

    /// The heavier backends (grid, local search, exact discrete) obey
    /// the same contract.
    #[test]
    fn threads_never_change_heavy_backends(seed in 0u64..300, n in 3usize..10) {
        let set = clustered(seed, n, 2, 2, 2, 4.0, 1.0, ProbModel::Uniform);
        for strategy in [
            CertainStrategy::Grid,
            CertainStrategy::GonzalezLocalSearch { rounds: 8 },
            CertainStrategy::ExactDiscrete,
        ] {
            for kernel in [Kernel::Scalar, Kernel::Blocked] {
                let problem = Problem::euclidean(set.clone(), 2).unwrap();
                let baseline = problem
                    .solve(&cfg(AssignmentRule::ExpectedPoint, strategy, kernel, 1))
                    .unwrap();
                for threads in thread_grid() {
                    let sol = problem
                        .solve(&cfg(AssignmentRule::ExpectedPoint, strategy, kernel, threads))
                        .unwrap();
                    assert_identical(&baseline, &sol, &format!("{strategy:?}/{kernel:?}/t{threads}"));
                }
            }
        }
    }

    /// Pool-backed batch fan-out is bit-identical to the sequential loop
    /// for any lane cap.
    #[test]
    fn batch_on_the_pool_is_bit_identical(seed in 0u64..200) {
        let config = cfg(
            AssignmentRule::ExpectedPoint,
            CertainStrategy::Gonzalez,
            Kernel::Blocked,
            0, // auto lanes inside each solve, on the same pool
        );
        let problems: Vec<Problem<Point>> = (0..6)
            .map(|i| {
                let set = clustered(seed + i, 9, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
                Problem::euclidean(set, 2).unwrap()
            })
            .collect();
        let sequential = solve_batch_threads(&problems, &config, 1);
        for threads in [2usize, 4, ncpu()] {
            let pooled = solve_batch_threads(&problems, &config, threads);
            for (a, b) in sequential.iter().zip(&pooled) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_identical(a, b, &format!("batch t{threads}"));
            }
        }
    }
}

/// A large instance (well past the parallel kernels' row threshold, so
/// with a populated pool the sweeps really do fan out): Gonzalez, ED and
/// EP rules, both kernels, pinned bitwise across the thread grid plus a
/// wider lane request than the machine has.
#[test]
fn large_instance_is_bitwise_identical_across_threads() {
    // ~12k store rows (6k locations + 6k representatives) at dim 3.
    let set = clustered(99, 6000, 1, 3, 4, 40.0, 2.0, ProbModel::Random);
    for rule in [
        AssignmentRule::ExpectedPoint,
        AssignmentRule::ExpectedDistance,
    ] {
        for kernel in [Kernel::Scalar, Kernel::Blocked] {
            let problem = Problem::euclidean(set.clone(), 6).unwrap();
            let baseline = problem
                .solve(&cfg(rule, CertainStrategy::Gonzalez, kernel, 1))
                .unwrap();
            assert!(baseline.report.distance_evals.total() > 0);
            let mut grid = thread_grid();
            grid.push(4);
            grid.push(3 * ncpu()); // oversubscribed request: capped, not UB
            for threads in grid {
                let sol = problem
                    .solve(&cfg(rule, CertainStrategy::Gonzalez, kernel, threads))
                    .unwrap();
                assert_identical(
                    &baseline,
                    &sol,
                    &format!("large/{rule:?}/{kernel:?}/t{threads}"),
                );
            }
        }
    }
}

/// An uncertain large instance through the OC rule exercises the
/// parallel cost sweep over multi-location points.
#[test]
fn large_uncertain_oc_solve_is_thread_invariant() {
    let set = clustered(7, 3000, 2, 2, 3, 25.0, 1.5, ProbModel::Random);
    let problem = Problem::euclidean(set, 4).unwrap();
    let baseline = problem
        .solve(&cfg(
            AssignmentRule::OneCenter,
            CertainStrategy::Gonzalez,
            Kernel::Blocked,
            1,
        ))
        .unwrap();
    for threads in [2usize, 4] {
        let sol = problem
            .solve(&cfg(
                AssignmentRule::OneCenter,
                CertainStrategy::Gonzalez,
                Kernel::Blocked,
                threads,
            ))
            .unwrap();
        assert_identical(&baseline, &sol, &format!("oc/t{threads}"));
    }
}

/// The serving layer's cache key is thread-blind: a solution computed at
/// any lane count serves requests at any other, because the digest and
/// the canonical config rendering exclude `threads`.
#[test]
fn cache_keys_and_digests_are_thread_blind() {
    let set = clustered(5, 14, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
    let set_digest = ukc_core::digest_set(&set);
    let problem = Problem::euclidean(set, 3).unwrap();
    let digest = problem.instance_digest();
    let baseline_key = SolveKey::new(
        digest,
        set_digest,
        &cfg(
            AssignmentRule::ExpectedPoint,
            CertainStrategy::Gonzalez,
            Kernel::Blocked,
            1,
        ),
    );
    for threads in [0usize, 2, 4, ncpu()] {
        let config = cfg(
            AssignmentRule::ExpectedPoint,
            CertainStrategy::Gonzalez,
            Kernel::Blocked,
            threads,
        );
        assert_eq!(problem.instance_digest(), digest, "t{threads}");
        assert_eq!(
            SolveKey::new(digest, set_digest, &config),
            baseline_key,
            "cache key must ignore threads (t{threads})"
        );
        // And the cached payload really would be interchangeable: the
        // solve at this lane count matches the threads=1 bits.
        let a = problem
            .solve(&cfg(
                AssignmentRule::ExpectedPoint,
                CertainStrategy::Gonzalez,
                Kernel::Blocked,
                1,
            ))
            .unwrap();
        let b = problem.solve(&config).unwrap();
        assert_eq!(a.ecost.to_bits(), b.ecost.to_bits(), "t{threads}");
        assert_eq!(a.assignment, b.assignment, "t{threads}");
    }
}
