//! Robustness suite: degenerate instances, extreme scales, malformed
//! inputs, and probability-mass corner cases across the whole stack.
//! Every test pins down behavior a downstream user would otherwise have
//! to discover in production.

use uncertain_kcenter::prelude::*;

/// One Euclidean solve through the `Problem` API (no per-solve bound).
fn solve_eu(set: &UncertainSet<Point>, k: usize, rule: AssignmentRule) -> Solution<Point> {
    solve_eu_with(set, k, rule, CertainStrategy::Gonzalez)
}

/// Like [`solve_eu`] with an explicit certain strategy.
fn solve_eu_with(
    set: &UncertainSet<Point>,
    k: usize,
    rule: AssignmentRule,
    strategy: CertainStrategy,
) -> Solution<Point> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .lower_bound(false)
        .build()
        .expect("static test config");
    Problem::euclidean(set.clone(), k)
        .expect("test instances are valid")
        .solve(&config)
        .expect("euclidean pipeline accepts every test config")
}

// ---------------------------------------------------------------------
// Degenerate instances
// ---------------------------------------------------------------------

#[test]
fn single_point_single_location() {
    let set = UncertainSet::new(vec![UncertainPoint::certain(Point::new(vec![1.0, 2.0]))]);
    let sol = solve_eu(&set, 1, AssignmentRule::ExpectedDistance);
    assert_eq!(sol.ecost, 0.0);
    assert_eq!(sol.centers.len(), 1);
    assert_eq!(sol.assignment, vec![0]);
    assert_eq!(lower_bound_euclidean(&set, 1), 0.0);
}

#[test]
fn all_points_identical() {
    let up =
        UncertainPoint::new(vec![Point::scalar(5.0), Point::scalar(5.0)], vec![0.5, 0.5]).unwrap();
    let set = UncertainSet::new(vec![up.clone(), up.clone(), up]);
    for rule in [
        AssignmentRule::ExpectedDistance,
        AssignmentRule::ExpectedPoint,
    ] {
        let sol = solve_eu(&set, 2, rule);
        assert!(sol.ecost.abs() < 1e-12, "rule {rule:?}");
    }
    let one_d = solve_one_d(&set, 2);
    assert!(one_d.med_cost.abs() < 1e-12);
    assert!(one_d.ecost_ed.abs() < 1e-12);
}

#[test]
fn k_exceeds_n() {
    let set = uniform_box(1, 3, 2, 2, 10.0, 1.0, ProbModel::Random);
    // The validated API rejects over-asking with a typed error...
    assert_eq!(
        Problem::euclidean(set.clone(), 10).err(),
        Some(SolveError::KExceedsN { k: 10, n: 3 })
    );
    // ...while the deprecated wrapper keeps its historical clamping
    // behavior: at most n distinct representatives -> at most n centers.
    #[allow(deprecated)]
    let sol = solve_euclidean(
        &set,
        10,
        AssignmentRule::ExpectedPoint,
        CertainSolver::Gonzalez,
    );
    assert!(sol.centers.len() <= 3);
    assert!(sol.assignment.iter().all(|&a| a < sol.centers.len()));
    assert!(sol.ecost >= lower_bound_euclidean(&set, 10) - 1e-9);
}

#[test]
fn one_dimensional_everything() {
    // d=1 through the generic (not 1-D-specialized) pipeline.
    let set = line_instance(2, 12, 3, 50.0, 1.0, ProbModel::Random);
    let generic = solve_eu(&set, 3, AssignmentRule::ExpectedDistance);
    let special = solve_one_d(&set, 3);
    // The exact solver's ED cost can't be beaten by more than the greedy
    // pipeline's slack; both respect the LB.
    let lb = lower_bound_euclidean(&set, 3);
    assert!(lb <= special.ecost_ed + 1e-9);
    assert!(lb <= generic.ecost + 1e-9);
}

// ---------------------------------------------------------------------
// Extreme scales
// ---------------------------------------------------------------------

#[test]
fn huge_coordinates() {
    let up = |x: f64| {
        UncertainPoint::new(
            vec![Point::new(vec![x, x]), Point::new(vec![x + 1e3, x])],
            vec![0.5, 0.5],
        )
        .unwrap()
    };
    let set = UncertainSet::new(vec![up(1e12), up(1e12 + 1e6), up(-1e12)]);
    let sol = solve_eu(&set, 2, AssignmentRule::ExpectedDistance);
    assert!(sol.ecost.is_finite());
    // The two 1e12-side points share a center; the -1e12 point gets its own.
    assert_eq!(sol.assignment[0], sol.assignment[1]);
    assert_ne!(sol.assignment[0], sol.assignment[2]);
    // Cost is on the 1e6 scale (the intra-group gap), not 1e12.
    assert!(sol.ecost < 1e7, "ecost {}", sol.ecost);
}

#[test]
fn tiny_probabilities_survive() {
    // Mass 1e-9 on a far location: exact machinery must neither drop nor
    // inflate it.
    let p_far = 1e-9;
    let up = UncertainPoint::new(
        vec![Point::scalar(0.0), Point::scalar(1e6)],
        vec![1.0 - p_far, p_far],
    )
    .unwrap();
    let set = UncertainSet::new(vec![up]);
    let centers = vec![Point::scalar(0.0)];
    let e = ecost_assigned(&set, &centers, &[0], &Euclidean);
    assert!((e - p_far * 1e6).abs() < 1e-9, "e = {e}");
    // The quantile view: the 0.999 quantile ignores the tail, the
    // 1.0 quantile sees it.
    let q999 = cost_quantile_assigned(&set, &centers, &[0], &Euclidean, 0.999);
    assert_eq!(q999, 0.0);
    let q1 = cost_quantile_assigned(&set, &centers, &[0], &Euclidean, 1.0);
    assert_eq!(q1, 1e6);
}

#[test]
fn many_points_large_z_exact_costs_stay_stable() {
    // 500 points x 16 locations: the log-space CDF sweep must not
    // underflow to zero or exceed max atom value.
    let set = uniform_box(9, 500, 16, 2, 100.0, 3.0, ProbModel::HeavyTail);
    let sol = solve_eu(&set, 5, AssignmentRule::ExpectedPoint);
    assert!(sol.ecost.is_finite() && sol.ecost > 0.0);
    // Ecost is at most the worst realized distance.
    let worst = cost_quantile_assigned(&set, &sol.centers, &sol.assignment, &Euclidean, 1.0);
    assert!(sol.ecost <= worst + 1e-9);
    // And at least the per-point floor.
    assert!(sol.ecost >= lower_bound_euclidean(&set, 5) - 1e-9);
}

// ---------------------------------------------------------------------
// Malformed inputs are rejected loudly (no silent nonsense)
// ---------------------------------------------------------------------

#[test]
fn invalid_distributions_rejected() {
    use uncertain_kcenter::uncertain::UncertainPointError;
    let bad = UncertainPoint::new(vec![Point::scalar(0.0)], vec![0.5]);
    assert!(matches!(bad, Err(UncertainPointError::BadSum { .. })));
    let bad = UncertainPoint::new(vec![Point::scalar(0.0)], vec![f64::INFINITY]);
    assert!(matches!(
        bad,
        Err(UncertainPointError::BadProbability { .. })
    ));
    let bad = UncertainPoint::<Point>::new(vec![], vec![]);
    assert!(matches!(bad, Err(UncertainPointError::Empty)));
}

#[test]
#[should_panic(expected = "finite")]
fn nan_coordinates_rejected_at_construction() {
    let _ = Point::new(vec![0.0, f64::NAN]);
}

#[test]
fn zero_k_rejected_with_typed_error() {
    let set = uniform_box(1, 3, 2, 2, 10.0, 1.0, ProbModel::Random);
    assert_eq!(Problem::euclidean(set, 0).err(), Some(SolveError::ZeroK));
}

#[test]
#[should_panic(expected = "k must be at least 1")]
fn zero_k_still_panics_in_deprecated_wrapper() {
    let set = uniform_box(1, 3, 2, 2, 10.0, 1.0, ProbModel::Random);
    #[allow(deprecated)]
    let _ = solve_euclidean(
        &set,
        0,
        AssignmentRule::ExpectedPoint,
        CertainSolver::Gonzalez,
    );
}

#[test]
fn metric_validators_catch_broken_matrices() {
    use uncertain_kcenter::metric::FiniteMetricError;
    // Triangle violation.
    let m = vec![
        vec![0.0, 1.0, 9.0],
        vec![1.0, 0.0, 1.0],
        vec![9.0, 1.0, 0.0],
    ];
    assert!(matches!(
        FiniteMetric::from_matrix(m, 1e-9),
        Err(FiniteMetricError::NotAMetric(_))
    ));
}

// ---------------------------------------------------------------------
// Probability-mass corner cases
// ---------------------------------------------------------------------

#[test]
fn point_mass_equals_certain_point() {
    // A distribution with all mass on one location behaves exactly like a
    // certain point everywhere in the stack.
    let massed = UncertainPoint::new(
        vec![Point::scalar(3.0), Point::scalar(99.0)],
        vec![1.0, 0.0],
    )
    .unwrap();
    let certain = UncertainPoint::certain(Point::scalar(3.0));
    let set_a = UncertainSet::new(vec![massed, UncertainPoint::certain(Point::scalar(10.0))]);
    let set_b = UncertainSet::new(vec![certain, UncertainPoint::certain(Point::scalar(10.0))]);
    let a = solve_eu(&set_a, 1, AssignmentRule::ExpectedDistance);
    let b = solve_eu(&set_b, 1, AssignmentRule::ExpectedDistance);
    assert!((a.ecost - b.ecost).abs() < 1e-12);
}

#[test]
fn near_tolerance_probability_sums_renormalize() {
    // Sums within 1e-6 of 1 are accepted and silently fixed.
    let up = UncertainPoint::new(
        vec![Point::scalar(0.0), Point::scalar(1.0)],
        vec![0.5, 0.5 + 9e-7],
    )
    .unwrap();
    let total: f64 = up.probs().iter().sum();
    assert!((total - 1.0).abs() < 1e-15);
}

#[test]
fn quantiles_are_monotone_in_q() {
    let set = clustered(4, 10, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
    let sol = solve_eu(&set, 2, AssignmentRule::ExpectedPoint);
    let mut prev = 0.0;
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let v = cost_quantile_assigned(&set, &sol.centers, &sol.assignment, &Euclidean, q);
        assert!(v >= prev - 1e-12, "quantile not monotone at q={q}");
        prev = v;
    }
}

#[test]
fn cdf_brackets_expectation() {
    // Markov-style sanity: Ecost must lie between the 0+ and 1.0 quantiles,
    // and the CDF at Ecost must be strictly positive for non-degenerate
    // instances.
    let set = clustered(5, 8, 3, 2, 2, 4.0, 1.0, ProbModel::HeavyTail);
    let sol = solve_eu(&set, 2, AssignmentRule::ExpectedDistance);
    let worst = cost_quantile_assigned(&set, &sol.centers, &sol.assignment, &Euclidean, 1.0);
    assert!(sol.ecost <= worst + 1e-12);
    let cdf_at_e = cost_cdf_assigned(&set, &sol.centers, &sol.assignment, &Euclidean, sol.ecost);
    assert!(cdf_at_e > 0.0);
}
