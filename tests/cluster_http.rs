//! Integration coverage for coordinator mode (`ukc-server` + the
//! `ukc-cluster` registry) over real TCP.
//!
//! Spins up real shard servers on ephemeral loopback ports, points a
//! coordinator at them, and pins the cluster contract: digest-routed
//! requests produce byte-identical documents to a single unsharded
//! control server; hot instances replicate and survive the loss of
//! their owning shard; a cold instance on a dead shard fails with the
//! typed `503 shard_unavailable`; the bounded scheduler queue answers
//! `503 overloaded` with `Retry-After`; and the cluster lifecycle
//! endpoints drive the registry.

use std::net::SocketAddr;

use ukc_json::format::JsonInstance;
use ukc_json::Json;
use ukc_metric::Point;
use ukc_server::client::{self, HttpResponse};
use ukc_server::{serve, ServerConfig, ServerHandle};
use ukc_uncertain::generators::{clustered, ProbModel};
use ukc_uncertain::UncertainSet;

fn small_set(seed: u64) -> UncertainSet<Point> {
    clustered(seed, 12, 3, 2, 2, 5.0, 1.0, ProbModel::Random)
}

fn instance_body(seed: u64) -> String {
    JsonInstance::from_set(&small_set(seed)).to_json().compact()
}

fn start_single() -> (ServerHandle, SocketAddr) {
    let handle = serve(ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    (handle, addr)
}

/// One coordinator over `n` freshly-bound shard servers. The prober is
/// disabled so liveness changes only through forwarded requests —
/// deterministic for tests; retries are off so a dead shard fails fast.
fn start_cluster(n: usize, replicate_after: u64) -> (ServerHandle, SocketAddr, Vec<ServerHandle>) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|_| serve(ServerConfig::default()).expect("bind shard"))
        .collect();
    let coordinator = serve(ServerConfig {
        shards: shards.iter().map(|s| s.addr().to_string()).collect(),
        replicate_after,
        shard_retries: 0,
        probe_interval_ms: 0,
        ..ServerConfig::default()
    })
    .expect("bind coordinator");
    let addr = coordinator.addr();
    (coordinator, addr, shards)
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    client::request(addr, "GET", path, None).expect("request")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> HttpResponse {
    client::request(addr, "POST", path, Some(body)).expect("request")
}

fn parse(response: &HttpResponse) -> Json {
    Json::parse(&response.body).unwrap_or_else(|e| panic!("non-JSON body ({e}): {}", response.body))
}

fn error_kind(response: &HttpResponse) -> (f64, String) {
    let doc = parse(response);
    let err = doc.get("error").expect("error object");
    (
        err.get("status").and_then(Json::as_f64).expect("status"),
        err.get("kind")
            .and_then(Json::as_str)
            .expect("kind")
            .to_string(),
    )
}

/// Strips volatile keys (timings live in `report`; `shards` carries
/// wall-clock attribution) so the rest compares byte-for-byte.
fn stripped(doc: &Json, volatile: &[&str]) -> Json {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !volatile.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), stripped(v, volatile)))
                .collect(),
        ),
        Json::Arr(items) => Json::arr(items.iter().map(|i| stripped(i, volatile))),
        other => other.clone(),
    }
}

/// Which shard actually stores `id` (asked directly, not via routing).
fn shard_holding(shards: &[ServerHandle], id: &str) -> usize {
    shards
        .iter()
        .position(|s| get(s.addr(), &format!("/instances/{id}")).status == 200)
        .expect("some shard stores the instance")
}

#[test]
fn coordinator_output_is_byte_identical_to_single_node() {
    let (control, control_addr) = start_single();
    let (coordinator, coord_addr, shards) = start_cluster(2, 0);

    // Uploads through the coordinator land on shards but answer with the
    // exact document (and status) the control server produces.
    let seeds: Vec<u64> = (40..52).collect();
    let mut ids = Vec::new();
    for &seed in &seeds {
        let body = instance_body(seed);
        let from_cluster = post(coord_addr, "/instances", &body);
        let from_control = post(control_addr, "/instances", &body);
        assert_eq!(from_cluster.status, from_control.status, "seed {seed}");
        assert_eq!(from_cluster.body, from_control.body, "seed {seed}");
        ids.push(
            parse(&from_control)
                .get("id")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
    }
    // Both shards got real work (12 uniform digests over 2 shards).
    for shard in &shards {
        let count = parse(&get(shard.addr(), "/instances"))
            .get("instances")
            .and_then(Json::as_array)
            .unwrap()
            .len();
        assert!(count > 0, "a shard stored nothing");
    }

    // Listing gathers across shards into the control server's document.
    let cluster_list = get(coord_addr, "/instances");
    let control_list = get(control_addr, "/instances");
    assert_eq!(cluster_list.body, control_list.body);

    // Fetches relay the owning shard's exact bytes.
    for id in &ids {
        let path = format!("/instances/{id}");
        assert_eq!(get(coord_addr, &path).body, get(control_addr, &path).body);
    }

    // Digest-routed solves: byte-identical solutions (reports carry
    // wall-clock timings, so only they are stripped).
    let solve_body = r#"{"k": 3, "cache": false}"#;
    for id in &ids {
        let path = format!("/instances/{id}/solve");
        let from_cluster = post(coord_addr, &path, solve_body);
        let from_control = post(control_addr, &path, solve_body);
        assert_eq!(from_cluster.status, 200, "{}", from_cluster.body);
        assert_eq!(
            stripped(&parse(&from_cluster), &["report"]).pretty(),
            stripped(&parse(&from_control), &["report"]).pretty(),
            "solve of {id} diverged"
        );
    }

    // Scatter/gather batch: same per-slot documents in request order,
    // plus coordinator-only per-shard timing attribution.
    let ids_json = Json::arr(ids.iter().map(|id| Json::from(id.as_str()))).compact();
    let batch_body = format!(r#"{{"ids": {ids_json}, "k": 3, "cache": false}}"#);
    let from_cluster = parse(&post(coord_addr, "/solve_batch", &batch_body));
    let from_control = parse(&post(control_addr, "/solve_batch", &batch_body));
    assert_eq!(
        from_cluster.get("count").and_then(Json::as_usize),
        Some(ids.len())
    );
    assert_eq!(
        stripped(&from_cluster, &["report", "shards"]).pretty(),
        stripped(&from_control, &["report"]).pretty(),
    );
    let shard_reports = from_cluster.get("shards").and_then(Json::as_array).unwrap();
    assert_eq!(shard_reports.len(), 2, "both shards took a sub-batch");
    let attributed: usize = shard_reports
        .iter()
        .map(|s| s.get("ids").and_then(Json::as_usize).unwrap())
        .sum();
    assert_eq!(attributed, ids.len());

    // One-shot solves route by content digest and relay verbatim.
    let oneshot = format!(
        r#"{{"k": 2, "cache": false, "instance": {}}}"#,
        instance_body(40)
    );
    assert_eq!(
        stripped(&parse(&post(coord_addr, "/solve", &oneshot)), &["report"]).pretty(),
        stripped(&parse(&post(control_addr, "/solve", &oneshot)), &["report"]).pretty(),
    );

    // Append grows onto the shard owning the *new* digest, with the
    // single-node response document.
    let append_path = format!("/instances/{}/append", ids[0]);
    let from_cluster = post(coord_addr, &append_path, &instance_body(99));
    let from_control = post(control_addr, &append_path, &instance_body(99));
    assert_eq!(from_cluster.status, from_control.status);
    assert_eq!(from_cluster.body, from_control.body);

    // Deletes route too, and the deleted instance is gone cluster-wide.
    let deleted = client::request(
        coord_addr,
        "DELETE",
        &format!("/instances/{}", ids[1]),
        None,
    )
    .unwrap();
    assert_eq!(deleted.status, 200);
    assert_eq!(
        get(coord_addr, &format!("/instances/{}", ids[1])).status,
        404
    );

    coordinator.shutdown();
    control.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn hot_instances_replicate_and_survive_losing_their_shard() {
    let (coordinator, coord_addr, mut shards) = start_cluster(2, 2);

    // Upload until both shards hold several instances.
    let mut ids = Vec::new();
    for seed in 100..116 {
        let doc = parse(&post(coord_addr, "/instances", &instance_body(seed)));
        ids.push(doc.get("id").and_then(Json::as_str).unwrap().to_string());
    }

    // Make one instance hot: the second read crosses replicate_after=2
    // and synchronously copies it to the other shard.
    let hot = ids[0].clone();
    let owner = shard_holding(&shards, &hot);
    assert_eq!(get(coord_addr, &format!("/instances/{hot}")).status, 200);
    assert_eq!(get(coord_addr, &format!("/instances/{hot}")).status, 200);
    let status = parse(&get(coord_addr, "/cluster/status"));
    let replication = status.get("replication").expect("replication gauges");
    assert_eq!(
        replication.get("threshold").and_then(Json::as_usize),
        Some(2)
    );
    assert_eq!(
        replication.get("replicated").and_then(Json::as_usize),
        Some(1)
    );
    // The replica is a verbatim copy: same content digest on the other
    // shard, stored under the identical ID.
    let replica = 1 - owner;
    assert_eq!(
        get(shards[replica].addr(), &format!("/instances/{hot}")).status,
        200
    );

    // A cold instance owned by the same shard, for the failure case.
    let cold = ids[1..]
        .iter()
        .find(|id| shard_holding(&shards, id) == owner)
        .expect("the owner shard holds another instance")
        .clone();

    // Kill the owning shard.
    shards.remove(owner).shutdown();

    // Replicated reads and solves keep working, served by the replica —
    // with the same bytes the owner produced (modulo solve timings).
    let fetched = get(coord_addr, &format!("/instances/{hot}"));
    assert_eq!(fetched.status, 200, "{}", fetched.body);
    assert_eq!(
        parse(&fetched).get("id").and_then(Json::as_str),
        Some(hot.as_str())
    );
    let solved = post(
        coord_addr,
        &format!("/instances/{hot}/solve"),
        r#"{"k": 2}"#,
    );
    assert_eq!(solved.status, 200, "{}", solved.body);

    // The cold instance has no live copy: the typed 503, not a hang or
    // a transport error.
    let r = get(coord_addr, &format!("/instances/{cold}"));
    assert_eq!(error_kind(&r), (503.0, "shard_unavailable".into()));
    let r = post(
        coord_addr,
        &format!("/instances/{cold}/solve"),
        r#"{"k": 2}"#,
    );
    assert_eq!(error_kind(&r), (503.0, "shard_unavailable".into()));

    // Status reflects the observed outage.
    let status = parse(&get(coord_addr, "/cluster/status"));
    let states: Vec<String> = status
        .get("nodes")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|n| n.get("state").and_then(Json::as_str).unwrap().to_string())
        .collect();
    assert!(states.contains(&"down".to_string()), "states: {states:?}");

    coordinator.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn full_queue_answers_503_overloaded_with_retry_after() {
    let handle = serve(ServerConfig {
        queue_cap: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr();

    let upload = parse(&post(addr, "/instances", &instance_body(7)));
    let id = upload.get("id").and_then(Json::as_str).unwrap().to_string();
    let r = post(addr, &format!("/instances/{id}/solve"), r#"{"k": 2}"#);
    assert_eq!(error_kind(&r), (503.0, "overloaded".into()));
    assert_eq!(r.header("retry-after"), Some("1"));

    // Rejections are visible in /metrics and never reach the scheduler.
    let metrics = parse(&get(addr, "/metrics"));
    let scheduler = metrics.get("scheduler").expect("scheduler section");
    assert_eq!(
        scheduler.get("overloaded").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(scheduler.get("waves").and_then(Json::as_f64), Some(0.0));

    // Cache hits bypass the queue: a cap-0 server still serves nothing
    // here, but the upload/read path stays fully available.
    assert_eq!(get(addr, &format!("/instances/{id}")).status, 200);

    handle.shutdown();
}

#[test]
fn healthz_reports_version_mode_and_role() {
    let (single, single_addr) = start_single();
    let doc = parse(&get(single_addr, "/healthz"));
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert!(!doc
        .get("version")
        .and_then(Json::as_str)
        .expect("version")
        .is_empty());
    assert!(doc.get("uptime_seconds").and_then(Json::as_f64).is_some());
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("in-memory"));
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("single"));
    single.shutdown();

    let (coordinator, coord_addr, shards) = start_cluster(2, 0);
    let doc = parse(&get(coord_addr, "/healthz"));
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("coordinator"));
    coordinator.shutdown();
    for shard in shards {
        shard.shutdown();
    }

    let dir = std::env::temp_dir().join(format!("ukc-healthz-{}", std::process::id()));
    let durable = serve(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind durable");
    let doc = parse(&get(durable.addr(), "/healthz"));
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("durable"));
    durable.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cluster_lifecycle_endpoints_drive_the_registry() {
    // A single-node server knows its role and rejects lifecycle writes.
    let (single, single_addr) = start_single();
    let doc = parse(&get(single_addr, "/cluster/status"));
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("single"));
    let r = post(single_addr, "/cluster/nodes", r#"{"addr": "127.0.0.1:1"}"#);
    assert_eq!(error_kind(&r), (400.0, "not_coordinator".into()));
    single.shutdown();

    let (coordinator, coord_addr, shards) = start_cluster(2, 0);
    let doc = parse(&get(coord_addr, "/cluster/status"));
    assert_eq!(doc.get("role").and_then(Json::as_str), Some("coordinator"));
    let nodes = doc.get("nodes").and_then(Json::as_array).unwrap();
    assert_eq!(nodes.len(), 2);
    let width: usize = nodes
        .iter()
        .map(|n| {
            n.get("prefix_end").and_then(Json::as_usize).unwrap()
                - n.get("prefix_start").and_then(Json::as_usize).unwrap()
        })
        .sum();
    assert_eq!(width, 1 << 16, "ranges partition the prefix space");

    // Register a third shard: 201, and it owns a split range.
    let extra = serve(ServerConfig::default()).expect("bind extra shard");
    let r = post(
        coord_addr,
        "/cluster/nodes",
        &format!(r#"{{"addr": "{}"}}"#, extra.addr()),
    );
    assert_eq!(r.status, 201, "{}", r.body);
    let node = parse(&r);
    let node = node.get("node").expect("node document");
    let added_id = node.get("id").and_then(Json::as_usize).unwrap();
    assert!(node.get("prefix_end").and_then(Json::as_usize).unwrap() > 0);
    assert_eq!(
        parse(&get(coord_addr, "/cluster/status"))
            .get("nodes")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        3
    );

    // Deregister it: the response names the reassigned range + heir.
    let r = client::request(
        coord_addr,
        "DELETE",
        &format!("/cluster/nodes/{added_id}"),
        None,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = parse(&r);
    assert_eq!(doc.get("removed").and_then(Json::as_usize), Some(added_id));
    let reassigned = doc.get("reassigned").expect("reassigned range");
    assert!(reassigned.get("heir").and_then(Json::as_usize).is_some());

    // Typed failures: unknown node, and refusing to empty the registry.
    let r = client::request(coord_addr, "DELETE", "/cluster/nodes/99", None).unwrap();
    assert_eq!(error_kind(&r), (404.0, "node_not_found".into()));
    let r = client::request(coord_addr, "DELETE", "/cluster/nodes/0", None).unwrap();
    assert_eq!(r.status, 200);
    let r = client::request(coord_addr, "DELETE", "/cluster/nodes/1", None).unwrap();
    assert_eq!(error_kind(&r), (422.0, "last_node".into()));

    extra.shutdown();
    coordinator.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn solve_batch_on_one_node_preserves_order_and_uses_the_cache() {
    let (handle, addr) = start_single();
    let mut ids = Vec::new();
    for seed in 60..63 {
        let doc = parse(&post(addr, "/instances", &instance_body(seed)));
        ids.push(doc.get("id").and_then(Json::as_str).unwrap().to_string());
    }

    // A batch with a bogus id in the middle: per-slot error, order kept.
    let body = format!(
        r#"{{"ids": ["{}", "ffffffffffffffff", "{}"], "k": 2}}"#,
        ids[0], ids[1]
    );
    let doc = parse(&post(addr, "/solve_batch", &body));
    assert_eq!(doc.get("count").and_then(Json::as_usize), Some(3));
    let slots = doc.get("solutions").and_then(Json::as_array).unwrap();
    assert_eq!(
        slots[0].get("instance_digest").and_then(Json::as_str),
        Some(ids[0].as_str())
    );
    assert_eq!(
        slots[1]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("instance_not_found")
    );
    assert_eq!(
        slots[2].get("instance_digest").and_then(Json::as_str),
        Some(ids[1].as_str())
    );
    assert_eq!(slots[0].get("cached").and_then(Json::as_bool), Some(false));

    // Slot solutions match the individual solve endpoint bit-for-bit.
    let single = parse(&post(
        addr,
        &format!("/instances/{}/solve", ids[0]),
        r#"{"k": 2}"#,
    ));
    assert_eq!(single.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        stripped(&single, &["report", "cached"]).pretty(),
        stripped(&slots[0], &["report", "cached"]).pretty()
    );

    // A repeated batch is all cache hits — no second scheduler wave.
    let waves = |addr| {
        parse(&get(addr, "/metrics"))
            .get("scheduler")
            .and_then(|s| s.get("waves"))
            .and_then(Json::as_f64)
            .unwrap()
    };
    let before = waves(addr);
    let doc = parse(&post(addr, "/solve_batch", &body));
    let slots = doc.get("solutions").and_then(Json::as_array).unwrap();
    assert_eq!(slots[0].get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(slots[2].get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(waves(addr), before);

    // Schema errors fail the batch as a whole.
    let r = post(addr, "/solve_batch", r#"{"k": 2}"#);
    assert_eq!(error_kind(&r), (400.0, "bad_schema".into()));
    let r = post(addr, "/solve_batch", r#"{"ids": [], "k": 2}"#);
    assert_eq!(error_kind(&r), (400.0, "bad_schema".into()));

    handle.shutdown();
}
