//! Property-based tests (proptest) over the core invariants the paper's
//! proofs rely on. Each property is the formal statement of a lemma or a
//! structural fact the implementation must preserve for the approximation
//! guarantees to be meaningful.

use proptest::prelude::*;
use uncertain_kcenter::prelude::*;
use uncertain_kcenter::uncertain::expected_max;

/// Strategy: a discrete distribution of size 1..=4 (values in a box,
/// probabilities normalized).
fn distribution_1d() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-50.0f64..50.0, 0.05f64..1.0), 1..=4).prop_map(|pairs| {
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        let (vals, probs): (Vec<f64>, Vec<f64>) =
            pairs.into_iter().map(|(v, w)| (v, w / total)).unzip();
        (vals, probs)
    })
}

fn uncertain_point_2d() -> impl Strategy<Value = UncertainPoint<Point>> {
    prop::collection::vec(((-50.0f64..50.0, -50.0f64..50.0), 0.05f64..1.0), 1..=4).prop_map(
        |pairs| {
            let total: f64 = pairs.iter().map(|(_, w)| w).sum();
            let locs: Vec<Point> = pairs
                .iter()
                .map(|((x, y), _)| Point::new(vec![*x, *y]))
                .collect();
            let probs: Vec<f64> = pairs.iter().map(|(_, w)| w / total).collect();
            UncertainPoint::new(locs, probs).expect("normalized by construction")
        },
    )
}

fn uncertain_set_2d(
    n: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = UncertainSet<Point>> {
    prop::collection::vec(uncertain_point_2d(), n).prop_map(UncertainSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact sweep equals brute-force enumeration of Ω.
    #[test]
    fn expected_max_equals_enumeration(vars in prop::collection::vec(distribution_1d(), 1..=4)) {
        let atoms: Vec<Vec<(f64, f64)>> = vars
            .iter()
            .map(|(v, p)| v.iter().copied().zip(p.iter().copied()).collect())
            .collect();
        let fast = expected_max(&atoms);
        let slow = uncertain_kcenter::uncertain::expected_max::expected_max_enumerate(&atoms);
        prop_assert!((fast - slow).abs() < 1e-9, "fast {fast} slow {slow}");
    }

    /// `max_i E[X_i] ≤ E[max_i X_i] ≤ max value` — the sandwich every
    /// lower-bound argument uses.
    #[test]
    fn expected_max_sandwich(vars in prop::collection::vec(distribution_1d(), 1..=5)) {
        let atoms: Vec<Vec<(f64, f64)>> = vars
            .iter()
            .map(|(v, p)| v.iter().copied().zip(p.iter().copied()).collect())
            .collect();
        let e = expected_max(&atoms);
        let max_mean = atoms
            .iter()
            .map(|var| var.iter().map(|(v, p)| v * p).sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max);
        let max_val = atoms
            .iter()
            .flat_map(|var| var.iter().filter(|(_, p)| *p > 0.0).map(|(v, _)| *v))
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e >= max_mean - 1e-9);
        prop_assert!(e <= max_val + 1e-9);
    }

    /// Paper Lemma 3.1: `d(P̄, Q) ≤ E d(P, Q)` for every Q.
    #[test]
    fn lemma_3_1_expected_point(up in uncertain_point_2d(), qx in -60.0f64..60.0, qy in -60.0f64..60.0) {
        let q = Point::new(vec![qx, qy]);
        let pbar = expected_point(&up);
        prop_assert!(pbar.dist(&q) <= expected_distance(&up, &q, &Euclidean) + 1e-9);
    }

    /// Gonzalez is a 2-approximation of the exact discrete optimum.
    #[test]
    fn gonzalez_within_2x_of_exact(
        coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..=12),
        k in 1usize..=3,
    ) {
        let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(vec![*x, *y])).collect();
        let gz = gonzalez(&pts, k, &Euclidean, 0);
        let ex = exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default())
            .expect("small instance");
        prop_assert!(ex.radius <= gz.radius + 1e-9);
        prop_assert!(gz.radius <= 2.0 * ex.radius + 1e-9);
    }

    /// The unassigned cost lower-bounds every assigned cost.
    #[test]
    fn unassigned_below_assigned(set in uncertain_set_2d(1..=4), a0 in 0usize..2, a1 in 0usize..2) {
        let centers = vec![Point::new(vec![-10.0, 0.0]), Point::new(vec![10.0, 0.0])];
        let assignment: Vec<usize> = (0..set.n()).map(|i| if i % 2 == 0 { a0 } else { a1 }).collect();
        let un = ecost_unassigned(&set, &centers, &Euclidean);
        let asg = ecost_assigned(&set, &centers, &assignment, &Euclidean);
        prop_assert!(un <= asg + 1e-9);
    }

    /// The certified lower bound never exceeds the pipeline's output, for
    /// every rule.
    #[test]
    fn lower_bound_below_pipeline(set in uncertain_set_2d(2..=5), k in 1usize..=2) {
        let lb = lower_bound_euclidean(&set, k);
        for rule in [AssignmentRule::ExpectedDistance, AssignmentRule::ExpectedPoint] {
            let sol = Problem::euclidean(set.clone(), k.min(set.n()))
                .expect("generated instances are valid")
                .solve(
                    &SolverConfig::builder()
                        .rule(rule)
                        .lower_bound(false)
                        .build()
                        .expect("static test config"),
                )
                .expect("euclidean pipeline accepts every rule");
            prop_assert!(lb <= sol.ecost + 1e-9, "rule {rule:?}: lb {lb} ecost {}", sol.ecost);
        }
    }

    /// Weighted 1-D median minimizes the weighted absolute deviation.
    #[test]
    fn weighted_median_is_minimizer((vals, probs) in distribution_1d(), probe in -60.0f64..60.0) {
        let med = uncertain_kcenter::geometry::weighted_median_1d(&vals, &probs).expect("valid");
        let cost = |x: f64| -> f64 {
            vals.iter().zip(probs.iter()).map(|(v, p)| p * (v - x).abs()).sum()
        };
        prop_assert!(cost(med) <= cost(probe) + 1e-9);
    }

    /// Convex PL functions built from weighted absolute deviations evaluate
    /// exactly, and their level sets invert exactly.
    #[test]
    fn convex_pl_eval_and_level_set((vals, probs) in distribution_1d(), x in -60.0f64..60.0, dr in 0.01f64..30.0) {
        use uncertain_kcenter::geometry::ConvexPiecewiseLinear;
        let f = ConvexPiecewiseLinear::from_weighted_abs(&vals, &probs, 0.0).expect("valid");
        let direct: f64 = vals.iter().zip(probs.iter()).map(|(v, p)| p * (v - x).abs()).sum();
        prop_assert!((f.eval(x) - direct).abs() < 1e-9);
        let (_, fmin) = f.min();
        let r = fmin + dr;
        let (lo, hi) = f.level_set(r).expect("r above min");
        prop_assert!((f.eval(lo) - r).abs() < 1e-7);
        prop_assert!((f.eval(hi) - r).abs() < 1e-7);
        prop_assert!(lo <= hi);
    }

    /// The 1-D deterministic k-center optimum is feasible and minimal
    /// against a direct sweep check.
    #[test]
    fn one_d_kcenter_radius_is_cost(values in prop::collection::vec(-100.0f64..100.0, 2..=16), k in 1usize..=3) {
        let sol = one_d_kcenter(&values, k);
        let pts: Vec<Point> = values.iter().map(|&v| Point::scalar(v)).collect();
        let cost = kcenter_cost(&pts, &sol.centers, &Euclidean);
        prop_assert!(cost <= sol.radius + 1e-9, "cost {cost} radius {}", sol.radius);
        prop_assert!(sol.centers.len() <= k);
    }

    /// Graph shortest-path closures satisfy the metric axioms.
    #[test]
    fn graph_closure_is_metric(edges in prop::collection::vec((0usize..6, 0usize..6, 0.1f64..10.0), 5..=12)) {
        let mut g = WeightedGraph::new(6);
        // A spanning path guarantees connectivity.
        for v in 0..5 {
            g.add_edge(v, v + 1, 1.0).unwrap();
        }
        for (u, v, w) in edges {
            g.add_edge(u, v, w).unwrap();
        }
        let fm = g.shortest_path_metric().expect("connected");
        let ids = fm.ids();
        prop_assert!(ukc_metric::validate::check_metric_axioms(&fm, &ids, 1e-9).is_ok());
    }

    /// Exact Ecost is invariant under relabeling centers and consistently
    /// renumbering the assignment.
    #[test]
    fn ecost_invariant_under_center_permutation(set in uncertain_set_2d(1..=4)) {
        let c0 = Point::new(vec![-5.0, 1.0]);
        let c1 = Point::new(vec![6.0, -2.0]);
        let assignment = assign_ed(&set, &[c0.clone(), c1.clone()], &Euclidean);
        let cost_a = ecost_assigned(&set, &[c0.clone(), c1.clone()], &assignment, &Euclidean);
        let swapped: Vec<usize> = assignment.iter().map(|&a| 1 - a).collect();
        let cost_b = ecost_assigned(&set, &[c1, c0], &swapped, &Euclidean);
        prop_assert!((cost_a - cost_b).abs() < 1e-9);
    }

    /// Adding one constant to **every** center weight shifts all
    /// Apollonius values `d(q, cᵢ) − wᵢ` by the same amount, so the
    /// weighted argmin is invariant (whenever the winner wins by more
    /// than fp noise — an exact tie's resolution may legitimately depend
    /// on rounding in `wᵢ + c`).
    #[test]
    fn weighted_argmin_invariant_under_constant_weight_shift(
        centers in prop::collection::vec(
            ((-50.0f64..50.0, -50.0f64..50.0), 0.0f64..2.0), 2..=6),
        qx in -50.0f64..50.0,
        qy in -50.0f64..50.0,
        c in 0.0f64..2.0,
    ) {
        let q = Point::new(vec![qx, qy]);
        let pts: Vec<Point> = centers.iter().map(|((x, y), _)| Point::new(vec![*x, *y])).collect();
        let w: Vec<f64> = centers.iter().map(|(_, w)| *w).collect();
        let (idx, val) = Euclidean.nearest_weighted(&q, &pts, &w).unwrap();
        // Guard: skip knife-edge ties (runner-up within 1e-9).
        let runner_up = pts.iter().zip(&w).enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, (p, wi))| Euclidean.dist(&q, p) - wi)
            .fold(f64::INFINITY, f64::min);
        if runner_up - val > 1e-9 {
            let shifted: Vec<f64> = w.iter().map(|wi| wi + c).collect();
            let (idx2, val2) = Euclidean.nearest_weighted(&q, &pts, &shifted).unwrap();
            prop_assert_eq!(idx, idx2);
            prop_assert!((val2 - (val - c)).abs() <= 1e-9 * (1.0 + val.abs() + c));
        }
    }

    /// Raising a single center's weight only makes it *more* attractive
    /// (`d − w` decreases), so a point already assigned to it stays
    /// assigned to it — exactly, with no tolerance: fp subtraction is
    /// monotone, and no other center's value moves at all.
    #[test]
    fn weighted_argmin_monotone_in_single_weight(
        centers in prop::collection::vec(
            ((-50.0f64..50.0, -50.0f64..50.0), 0.0f64..2.0), 2..=6),
        qx in -50.0f64..50.0,
        qy in -50.0f64..50.0,
        delta in 0.0f64..5.0,
    ) {
        let q = Point::new(vec![qx, qy]);
        let pts: Vec<Point> = centers.iter().map(|((x, y), _)| Point::new(vec![*x, *y])).collect();
        let w: Vec<f64> = centers.iter().map(|(_, w)| *w).collect();
        let (idx, _) = Euclidean.nearest_weighted(&q, &pts, &w).unwrap();
        let mut raised = w.clone();
        raised[idx] += delta;
        let (idx2, _) = Euclidean.nearest_weighted(&q, &pts, &raised).unwrap();
        prop_assert_eq!(idx, idx2);
    }

    /// The canonical set digest is invariant under point order — the
    /// cache/dedup key must name the multiset, not the upload order.
    /// (The weighted solve path inherits this: permuted uploads share
    /// cache entries in either assignment mode.)
    #[test]
    fn set_digest_invariant_under_permutation(set in uncertain_set_2d(2..=6), seed in 0u64..1000) {
        let mut points: Vec<UncertainPoint<Point>> = set.iter().cloned().collect();
        // Deterministic Fisher–Yates from the proptest seed.
        let mut s = seed | 1;
        for i in (1..points.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            points.swap(i, (s as usize) % (i + 1));
        }
        let permuted = UncertainSet::new(points);
        prop_assert_eq!(
            uncertain_kcenter::core::digest_set(&set),
            uncertain_kcenter::core::digest_set(&permuted)
        );
    }
}
