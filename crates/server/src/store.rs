//! The instance store: long-lived uploaded instances behind content IDs.
//!
//! Instance IDs are the canonical content digest of the uploaded set
//! ([`ukc_core::digest_set`], hex-formatted), so identical uploads —
//! including uploads that merely permute point or location order —
//! deduplicate to one entry, and an ID fetched from one replica is valid
//! on any replica that received the same instance.
//!
//! The map is guarded by an [`RwLock`]: reads (every solve) take the
//! shared lock, uploads and deletes the exclusive one. Values are
//! `Arc`-shared so a delete cannot invalidate an in-flight solve.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use ukc_core::{digest_hex, digest_set};
use ukc_metric::Point;
use ukc_uncertain::UncertainSet;

/// One stored instance.
#[derive(Clone, Debug)]
pub struct StoredInstance {
    /// The content-digest ID (16 hex chars — [`StoredInstance::digest`]
    /// formatted by [`digest_hex`]).
    pub id: String,
    /// The raw content digest, kept so the solve path can derive cache
    /// keys without re-hashing the points.
    pub digest: u64,
    /// The validated uncertain set.
    pub set: Arc<UncertainSet<Point>>,
    /// Ambient dimension.
    pub dim: usize,
}

impl StoredInstance {
    /// Summary used by list/get/upload responses.
    pub fn summary(&self) -> ukc_json::Json {
        ukc_json::Json::obj([
            ("id", ukc_json::Json::from(self.id.as_str())),
            ("n", ukc_json::Json::from(self.set.n())),
            ("dim", ukc_json::Json::from(self.dim)),
            ("max_z", ukc_json::Json::from(self.set.max_z())),
        ])
    }
}

/// The `RwLock`-guarded instance map.
#[derive(Default)]
pub struct InstanceStore {
    map: RwLock<HashMap<String, Arc<StoredInstance>>>,
}

impl InstanceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a validated set, returning the stored entry and whether it
    /// was newly created (`false` means an identical instance was already
    /// present and the upload deduplicated onto it).
    pub fn insert(&self, set: UncertainSet<Point>) -> (Arc<StoredInstance>, bool) {
        let digest = digest_set(&set);
        let id = digest_hex(digest);
        let dim = set.point(0).locations()[0].dim();
        let mut map = self.map.write().expect("instance store lock poisoned");
        if let Some(existing) = map.get(&id) {
            return (Arc::clone(existing), false);
        }
        let stored = Arc::new(StoredInstance {
            id: id.clone(),
            digest,
            set: Arc::new(set),
            dim,
        });
        map.insert(id, Arc::clone(&stored));
        (stored, true)
    }

    /// Fetches an instance by ID.
    pub fn get(&self, id: &str) -> Option<Arc<StoredInstance>> {
        self.map
            .read()
            .expect("instance store lock poisoned")
            .get(id)
            .cloned()
    }

    /// Deletes an instance, returning the removed entry so the caller
    /// can tombstone its durable record and evict its cached solutions.
    pub fn remove(&self, id: &str) -> Option<Arc<StoredInstance>> {
        self.map
            .write()
            .expect("instance store lock poisoned")
            .remove(id)
    }

    /// All instances, sorted by ID for stable listings.
    pub fn list(&self) -> Vec<Arc<StoredInstance>> {
        let mut all: Vec<_> = self
            .map
            .read()
            .expect("instance store lock poisoned")
            .values()
            .cloned()
            .collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }

    /// Number of stored instances.
    pub fn len(&self) -> usize {
        self.map.read().expect("instance store lock poisoned").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_uncertain::generators::{clustered, ProbModel};

    #[test]
    fn identical_uploads_dedupe_to_one_id() {
        let store = InstanceStore::new();
        let set = clustered(1, 8, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let (a, created_a) = store.insert(set.clone());
        let (b, created_b) = store.insert(set);
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(a.id, b.id);
        assert_eq!(store.len(), 1);
        // A permuted upload of the same points is the same instance.
        let mut points = a.set.points().to_vec();
        points.reverse();
        let (c, created_c) = store.insert(UncertainSet::new(points));
        assert!(!created_c);
        assert_eq!(c.id, a.id);
    }

    #[test]
    fn get_remove_list() {
        let store = InstanceStore::new();
        let (a, _) = store.insert(clustered(1, 8, 3, 2, 2, 4.0, 1.0, ProbModel::Random));
        let (b, _) = store.insert(clustered(2, 6, 2, 2, 2, 4.0, 1.0, ProbModel::Random));
        assert_ne!(a.id, b.id);
        assert_eq!(store.list().len(), 2);
        assert!(store.get(&a.id).is_some());
        // Deleting keeps in-flight Arcs alive.
        let held = store.get(&a.id).unwrap();
        let removed = store.remove(&a.id).expect("a existed");
        assert_eq!(removed.id, a.id);
        assert!(store.remove(&a.id).is_none());
        assert!(store.get(&a.id).is_none());
        assert_eq!(held.id, a.id);
        assert_eq!(store.list().len(), 1);
    }
}
