//! Request schemas: typed parsing of solve bodies.
//!
//! The solve body is strict: every field is validated, and unknown
//! top-level fields are rejected with a `400` naming the field, so a
//! typo'd `"slover"` fails loudly instead of silently running defaults.
//!
//! ```json
//! {
//!   "k": 3,
//!   "rule": "ep",            // ed | ep | oc            (default "ep")
//!   "solver": "gonzalez",    // gonzalez | local-search | grid | exact
//!   "rounds": 50,            // local-search only
//!   "eps": 0.25,             // grid only
//!   "seed": 0,
//!   "lower_bound": true,     // certify a lower bound in the report
//!   "kernel": "tiled",       // scalar | blocked | tiled  (default: the
//!                            // server's --kernel, "blocked" out of the box)
//!   "assignment": "plain",   // plain | weighted (additively-weighted
//!                            // Apollonius assignment; default "plain")
//!   "cache": true            // false bypasses the solution cache
//! }
//! ```
//!
//! `POST /solve` adds a required `"instance"` field carrying the same
//! document `POST /instances` accepts.

use crate::error::ApiError;
use ukc_core::{AssignmentMode, AssignmentRule, CertainStrategy, SolveError, SolverConfig};
use ukc_json::format::JsonInstance;
use ukc_json::Json;
use ukc_metric::Kernel;

/// A parsed solve request: `k`, the solver configuration, and whether
/// the solution cache may serve it.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// Number of centers.
    pub k: usize,
    /// The validated configuration.
    pub config: SolverConfig,
    /// `false` forces a fresh solve and skips cache insertion.
    pub use_cache: bool,
    /// Whether the body carried an explicit `"kernel"` field. When it
    /// did not, the handler applies the server-wide default via
    /// [`SolveRequest::apply_default_kernel`].
    pub explicit_kernel: bool,
}

impl SolveRequest {
    /// Applies the server's default distance kernel to requests that did
    /// not pick one explicitly; an explicit `"kernel"` field always wins.
    #[must_use]
    pub fn apply_default_kernel(mut self, kernel: Kernel) -> Self {
        if !self.explicit_kernel {
            self.config = self.config.with_kernel(kernel);
        }
        self
    }
}

const SOLVE_FIELDS: &[&str] = &[
    "k",
    "rule",
    "solver",
    "rounds",
    "eps",
    "seed",
    "lower_bound",
    "kernel",
    "assignment",
    "cache",
];

/// Parses a request body into JSON, mapping parse failures to `400`.
pub fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("bad_json", "body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| ApiError::bad_request("bad_json", e.to_string()))
}

fn reject_unknown_fields(doc: &Json, allowed: &[&str]) -> Result<(), ApiError> {
    if let Json::Obj(pairs) = doc {
        for (key, _) in pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(ApiError::bad_request(
                    "unknown_field",
                    format!("unknown field {key:?}"),
                ));
            }
        }
        Ok(())
    } else {
        Err(ApiError::bad_request(
            "bad_schema",
            "body must be a JSON object",
        ))
    }
}

/// Parses the solve body shared by `POST /instances/{id}/solve` and
/// `POST /solve` (the latter passes `allow_instance = true`).
pub fn parse_solve_request(doc: &Json, allow_instance: bool) -> Result<SolveRequest, ApiError> {
    let mut allowed = SOLVE_FIELDS.to_vec();
    if allow_instance {
        allowed.push("instance");
    }
    parse_solve_fields(doc, &allowed)
}

/// The shared field parser behind [`parse_solve_request`] and
/// [`parse_stream_create`]: rejects fields outside `allowed`, then reads
/// the solve fields proper.
fn parse_solve_fields(doc: &Json, allowed: &[&str]) -> Result<SolveRequest, ApiError> {
    reject_unknown_fields(doc, allowed)?;

    let k = doc
        .get("k")
        .ok_or_else(|| ApiError::bad_request("bad_schema", "missing field \"k\""))?
        .as_usize()
        .ok_or_else(|| {
            ApiError::bad_request("bad_schema", "\"k\" must be a non-negative integer")
        })?;

    let rule = match doc.get("rule").map(|r| (r, r.as_str())) {
        None => AssignmentRule::ExpectedPoint,
        Some((_, Some("ed"))) => AssignmentRule::ExpectedDistance,
        Some((_, Some("ep"))) => AssignmentRule::ExpectedPoint,
        Some((_, Some("oc"))) => AssignmentRule::OneCenter,
        Some((raw, _)) => {
            return Err(ApiError::bad_request(
                "bad_schema",
                format!(
                    "\"rule\" must be \"ed\", \"ep\", or \"oc\", got {}",
                    raw.compact()
                ),
            ))
        }
    };

    let rounds = match doc.get("rounds") {
        None => 50,
        Some(r) => r.as_usize().ok_or_else(|| {
            ApiError::bad_request("bad_schema", "\"rounds\" must be a non-negative integer")
        })?,
    };
    let strategy = match doc.get("solver").map(|s| (s, s.as_str())) {
        None => CertainStrategy::Gonzalez,
        Some((_, Some("gonzalez"))) => CertainStrategy::Gonzalez,
        Some((_, Some("local-search"))) => CertainStrategy::GonzalezLocalSearch { rounds },
        Some((_, Some("grid"))) => CertainStrategy::Grid,
        Some((_, Some("exact"))) => CertainStrategy::ExactDiscrete,
        Some((raw, _)) => {
            return Err(ApiError::bad_request(
                "bad_schema",
                format!(
                "\"solver\" must be \"gonzalez\", \"local-search\", \"grid\", or \"exact\", got {}",
                raw.compact()
            ),
            ))
        }
    };

    // The eps default must match the CLI's (0.25, see `solver_config` in
    // ukc-cli): eps is part of the cache key, so a divergent default
    // would split the cache between curl and `ukc client` requests that
    // mean the same thing.
    let eps = match doc.get("eps") {
        None => 0.25,
        Some(eps) => eps
            .as_f64()
            .ok_or_else(|| ApiError::bad_request("bad_schema", "\"eps\" must be a number"))?,
    };
    let mut builder = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .eps(eps);
    if let Some(seed) = doc.get("seed") {
        let seed = seed.as_usize().ok_or_else(|| {
            ApiError::bad_request("bad_schema", "\"seed\" must be a non-negative integer")
        })?;
        builder = builder.seed(seed as u64);
    }
    if let Some(lb) = doc.get("lower_bound") {
        let lb = lb.as_bool().ok_or_else(|| {
            ApiError::bad_request("bad_schema", "\"lower_bound\" must be a boolean")
        })?;
        builder = builder.lower_bound(lb);
    }
    let explicit_kernel = match doc.get("kernel") {
        None => false,
        Some(raw) => {
            let kernel = raw.as_str().and_then(Kernel::parse).ok_or_else(|| {
                ApiError::bad_request(
                    "bad_schema",
                    format!(
                        "\"kernel\" must be \"scalar\", \"blocked\", or \"tiled\", got {}",
                        raw.compact()
                    ),
                )
            })?;
            builder = builder.kernel(kernel);
            true
        }
    };
    if let Some(raw) = doc.get("assignment") {
        let mode = raw
            .as_str()
            .and_then(AssignmentMode::parse)
            .ok_or_else(|| {
                ApiError::bad_request(
                    "bad_schema",
                    format!(
                        "\"assignment\" must be \"plain\" or \"weighted\", got {}",
                        raw.compact()
                    ),
                )
            })?;
        builder = builder.assignment(mode);
    }
    let use_cache = match doc.get("cache") {
        None => true,
        Some(c) => c
            .as_bool()
            .ok_or_else(|| ApiError::bad_request("bad_schema", "\"cache\" must be a boolean"))?,
    };

    // Builder validation (bad eps) is a semantic error: 422 via SolveError.
    let config = builder.build().map_err(ApiError::from)?;
    // k = 0 can be rejected before touching any instance.
    if k == 0 {
        return Err(SolveError::ZeroK.into());
    }
    Ok(SolveRequest {
        k,
        config,
        use_cache,
        explicit_kernel,
    })
}

/// Parses the `POST /streams` body: the solve fields plus an optional
/// `"budget"` (summary working-set bound; defaults to
/// `ukc_stream::DEFAULT_BUDGET_PER_CENTER * k`, values below `k` are
/// clamped up to `k`).
pub fn parse_stream_create(doc: &Json) -> Result<(SolveRequest, Option<usize>), ApiError> {
    let mut allowed = SOLVE_FIELDS.to_vec();
    allowed.push("budget");
    let budget = match doc.get("budget") {
        None => None,
        Some(b) => Some(b.as_usize().filter(|&b| b > 0).ok_or_else(|| {
            ApiError::bad_request("bad_schema", "\"budget\" must be a positive integer")
        })?),
    };
    // parse_solve_fields runs the unknown-field check against the
    // extended allowlist, so "budget" passes and typos still 400.
    let request = parse_solve_fields(doc, &allowed)?;
    Ok((request, budget))
}

/// Parses the `POST /solve_batch` body: the solve fields plus `"ids"`,
/// a non-empty array of instance IDs. Every id is solved under the one
/// shared configuration; per-id failures surface as per-slot error
/// documents, not a failed batch.
pub fn parse_solve_batch(doc: &Json) -> Result<(Vec<String>, SolveRequest), ApiError> {
    let mut allowed = SOLVE_FIELDS.to_vec();
    allowed.push("ids");
    let request = parse_solve_fields(doc, &allowed)?;
    let ids = doc
        .get("ids")
        .ok_or_else(|| ApiError::bad_request("bad_schema", "missing field \"ids\""))?
        .as_array()
        .ok_or_else(|| {
            ApiError::bad_request("bad_schema", "\"ids\" must be an array of instance IDs")
        })?
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                ApiError::bad_request("bad_schema", "\"ids\" must be an array of instance IDs")
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    if ids.is_empty() {
        return Err(ApiError::bad_request(
            "bad_schema",
            "\"ids\" must not be empty",
        ));
    }
    Ok((ids, request))
}

/// Parses the one-shot body: the solve fields plus the inline instance.
pub fn parse_oneshot(doc: &Json) -> Result<(JsonInstance, SolveRequest), ApiError> {
    let request = parse_solve_request(doc, true)?;
    let instance = doc
        .get("instance")
        .ok_or_else(|| ApiError::bad_request("bad_schema", "missing field \"instance\""))?;
    let instance = JsonInstance::from_json(instance).map_err(ApiError::from)?;
    Ok((instance, request))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<SolveRequest, ApiError> {
        parse_solve_request(&Json::parse(text).unwrap(), false)
    }

    #[test]
    fn defaults_match_the_cli() {
        let r = parse(r#"{"k": 3}"#).unwrap();
        assert_eq!(r.k, 3);
        assert!(r.use_cache);
        assert_eq!(r.config.rule(), AssignmentRule::ExpectedPoint);
        assert_eq!(r.config.strategy(), CertainStrategy::Gonzalez);
        assert!(r.config.computes_lower_bound());
        // Must match ukc-cli's `--eps` default: eps is part of the cache
        // key, so the two surfaces agreeing keeps their requests shared.
        assert_eq!(r.config.eps(), 0.25);
        assert_eq!(r.config.seed(), 0);
    }

    #[test]
    fn full_bodies_parse() {
        let r = parse(
            r#"{"k": 2, "rule": "oc", "solver": "local-search", "rounds": 7,
                "eps": 0.5, "seed": 9, "lower_bound": false, "kernel": "tiled",
                "cache": false}"#,
        )
        .unwrap();
        assert_eq!(r.config.rule(), AssignmentRule::OneCenter);
        assert_eq!(
            r.config.strategy(),
            CertainStrategy::GonzalezLocalSearch { rounds: 7 }
        );
        assert_eq!(r.config.eps(), 0.5);
        assert_eq!(r.config.seed(), 9);
        assert!(!r.config.computes_lower_bound());
        assert_eq!(r.config.kernel(), Kernel::Tiled);
        assert!(r.explicit_kernel);
        assert!(!r.use_cache);
    }

    #[test]
    fn kernel_defaulting_respects_explicit_choice() {
        // No "kernel" field: the server default applies.
        let r = parse(r#"{"k": 2}"#).unwrap();
        assert!(!r.explicit_kernel);
        let r = r.apply_default_kernel(Kernel::Tiled);
        assert_eq!(r.config.kernel(), Kernel::Tiled);
        // Explicit "kernel": the server default must not override it.
        let r = parse(r#"{"k": 2, "kernel": "scalar"}"#).unwrap();
        assert!(r.explicit_kernel);
        let r = r.apply_default_kernel(Kernel::Tiled);
        assert_eq!(r.config.kernel(), Kernel::Scalar);
    }

    #[test]
    fn assignment_field_parses_and_defaults_plain() {
        let r = parse(r#"{"k": 2}"#).unwrap();
        assert_eq!(r.config.assignment(), AssignmentMode::Plain);
        let r = parse(r#"{"k": 2, "assignment": "weighted"}"#).unwrap();
        assert_eq!(r.config.assignment(), AssignmentMode::AdditivelyWeighted);
        let r = parse(r#"{"k": 2, "assignment": "plain"}"#).unwrap();
        assert_eq!(r.config.assignment(), AssignmentMode::Plain);
    }

    #[test]
    fn unknown_fields_and_bad_values_are_400() {
        for (body, needle) in [
            (r#"{"k": 3, "slover": "grid"}"#, "slover"),
            (r#"{"k": 3, "assignment": "apollonius"}"#, "assignment"),
            (r#"{"k": 3, "assignment": 1}"#, "assignment"),
            (r#"{"k": 3, "rule": "xx"}"#, "rule"),
            (r#"{"k": 3, "solver": 5}"#, "solver"),
            (r#"{"rule": "ep"}"#, "\"k\""),
            (r#"{"k": 1.5}"#, "\"k\""),
            (r#"{"k": 3, "cache": "yes"}"#, "cache"),
            (r#"{"k": 3, "kernel": "simd"}"#, "kernel"),
            (r#"{"k": 3, "kernel": 7}"#, "kernel"),
        ] {
            let e = parse(body).unwrap_err();
            assert_eq!(e.status, 400, "{body}");
            assert!(e.message.contains(needle), "{body} -> {}", e.message);
        }
    }

    #[test]
    fn semantic_errors_are_422() {
        let e = parse(r#"{"k": 0}"#).unwrap_err();
        assert_eq!((e.status, e.kind), (422, "zero_k"));
        let e = parse(r#"{"k": 3, "eps": -1}"#).unwrap_err();
        assert_eq!((e.status, e.kind), (422, "bad_epsilon"));
    }

    #[test]
    fn oneshot_requires_instance() {
        let doc = Json::parse(r#"{"k": 2}"#).unwrap();
        let e = parse_oneshot(&doc).unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("instance"));
        let doc = Json::parse(
            r#"{"k": 1, "instance": {"dim": 1, "points": [{"locations": [[0]], "probs": [1]}]}}"#,
        )
        .unwrap();
        let (instance, request) = parse_oneshot(&doc).unwrap();
        assert_eq!(instance.points.len(), 1);
        assert_eq!(request.k, 1);
    }
}
