//! # ukc-server — the solver as a long-running service
//!
//! Turns the [`ukc_core::Problem`] / [`ukc_core::SolverConfig`] solve
//! path into an HTTP service, using only `std` (a TCP listener plus a
//! minimal HTTP/1.1 layer in [`http`]) and [`ukc_json`] for the wire
//! format. Four layers:
//!
//! 1. **protocol** — [`http`] parses requests under hard size limits;
//!    [`error::ApiError`] maps every failure (including each
//!    [`ukc_core::SolveError`] variant) to a status code and a stable
//!    machine-readable `kind`.
//! 2. **instance store** — [`store::InstanceStore`], an `RwLock`-guarded
//!    map of uploaded instances keyed by canonical content digest
//!    ([`ukc_core::digest_set`]), so identical uploads deduplicate.
//! 3. **scheduler + cache** — [`scheduler::Scheduler`] coalesces
//!    concurrent solve requests into [`ukc_core::solve_batch_threads`]
//!    waves (identical in-flight requests collapse to one solve), and
//!    [`cache::LruCache`] remembers solutions by `(digest, config)` so a
//!    repeated request never re-pays the solve.
//! 4. **ops** — `/healthz` and `/metrics` ([`metrics::Metrics`]) expose
//!    per-route counts, cache hit rate, scheduler wave shape, and
//!    aggregated per-stage solve timings.
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /instances` | upload an instance, get its content ID |
//! | `GET /instances` | list stored instances |
//! | `GET /instances/{id}` | fetch one instance |
//! | `DELETE /instances/{id}` | remove it |
//! | `POST /instances/{id}/solve` | solve a stored instance |
//! | `POST /instances/{id}/append` | grow a stored instance (new content ID) |
//! | `POST /solve` | one-shot solve of an inline instance |
//! | `POST /solve_batch` | solve many stored instances in one submission |
//! | `POST /replicate` | cluster-internal verbatim store (digest-preserving) |
//! | `GET /cluster/status` | role, shard registry, replication gauges |
//! | `POST /cluster/nodes` · `DELETE /cluster/nodes/{id}` | shard lifecycle (coordinator) |
//! | `POST /streams` | open a streaming session ([`streams`], backed by `ukc_stream`) |
//! | `POST /streams/{id}/push` | feed one chunk (= one epoch) into a stream |
//! | `GET /streams/{id}/solution` | incremental re-solve of the stream's summary |
//! | `GET /streams` · `GET /streams/{id}` · `DELETE /streams/{id}` | stream lifecycle |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | counters (JSON) |
//!
//! See `docs/PROTOCOL.md` for the full schemas. Embed with [`serve`]
//! (returns a [`ServerHandle`] bound to an ephemeral port in tests), or
//! run `ukc serve` from the CLI.
//!
//! ```
//! use ukc_server::{serve, client, ServerConfig};
//!
//! let handle = serve(ServerConfig::default()).unwrap();
//! let health = client::request(handle.addr(), "GET", "/healthz", None).unwrap();
//! assert_eq!(health.status, 200);
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
mod cluster;
pub mod error;
pub mod http;
pub mod ingest;
pub mod metrics;
pub mod persist;
pub mod scheduler;
pub mod server;
pub mod store;
pub mod streams;

/// The dep-free HTTP/1.1 client, shared with the coordinator's
/// forwarding path (it lives in `ukc_cluster` so both crates use one
/// implementation).
pub use ukc_cluster::client;

pub use error::ApiError;
pub use server::{serve, serve_blocking, ServerConfig, ServerHandle};
