//! Persistence glue: the serving layer's side of the durability
//! contract.
//!
//! `ukc-durable` stores opaque bytes; this module owns what those bytes
//! *mean* — the snapshot payload encoding of an evolved
//! [`StreamSolver`], and boot-time recovery that rebuilds the in-memory
//! stores from a [`Recovery`].
//!
//! Recovery's bit-identity rests on two legs:
//!
//! * **WAL replay** re-parses the stored *wire bodies* through the same
//!   [`crate::api`] path the live server ran and folds them with
//!   [`StreamSolver::push_chunk`] — identical input through a
//!   deterministic fold gives identical state.
//! * **Snapshots** short-circuit the replay: the payload restores the
//!   summary from IEEE bit patterns, and the restored digest is checked
//!   against the digest recorded at snapshot time. A mismatch — or any
//!   gap in the surviving epoch sequence — is a typed
//!   [`StoreError::CorruptSegment`] at boot, never a silently wrong
//!   state.

use std::path::Path;

use crate::api;
use crate::store::InstanceStore;
use crate::streams::StreamStore;
use ukc_durable::codec::{Decoder, Encoder};
use ukc_durable::{Recovery, StoreError};
use ukc_json::format::JsonInstance;
use ukc_stream::{SolverSnapshot, StreamSolver, SummarySnapshot};

/// What boot-time recovery rebuilt, surfaced under `/metrics`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Instances rebuilt from the segment store.
    pub instances: u64,
    /// Streams rebuilt from the WAL.
    pub streams: u64,
    /// Push epochs re-folded (the WAL tail past each snapshot).
    pub replayed_epochs: u64,
    /// Streams whose state was restored from a snapshot instead of a
    /// full replay.
    pub snapshot_restores: u64,
    /// Whether a torn (unacknowledged) WAL tail was dropped.
    pub torn_tail: bool,
}

/// Encodes a solver snapshot into the opaque payload stored by
/// [`ukc_durable::snapshot::SnapshotStore`]. Floats travel as IEEE bit
/// patterns so the restore is exact.
pub fn encode_snapshot(snap: &SolverSnapshot) -> Vec<u8> {
    let s = &snap.summary;
    let mut e = Encoder::new();
    e.put_u64(snap.epochs)
        .put_u64(snap.memory_peak as u64)
        .put_u64(s.budget as u64)
        .put_u64(s.dim as u64)
        .put_f64(s.threshold)
        .put_u64(s.seen)
        .put_u64(s.merges)
        .put_u64(s.distance_evals)
        .put_u64(s.peak_rows as u64)
        .put_u64(s.centers.len() as u64);
    for (center, &weight) in s.centers.iter().zip(&s.weights) {
        for &c in center {
            e.put_f64(c);
        }
        e.put_u64(weight);
    }
    e.finish()
}

/// Decodes a snapshot payload; `None` on any structural damage (the
/// caller treats that as corruption — the payload sits behind a CRC, so
/// a clean-CRC-but-undecodable payload is not a crash artifact).
pub fn decode_snapshot(bytes: &[u8]) -> Option<SolverSnapshot> {
    let mut d = Decoder::new(bytes);
    let epochs = d.u64()?;
    let memory_peak = usize::try_from(d.u64()?).ok()?;
    let budget = usize::try_from(d.u64()?).ok()?;
    let dim = usize::try_from(d.u64()?).ok()?;
    let threshold = d.f64()?;
    let seen = d.u64()?;
    let merges = d.u64()?;
    let distance_evals = d.u64()?;
    let peak_rows = usize::try_from(d.u64()?).ok()?;
    let len = usize::try_from(d.u64()?).ok()?;
    // Cap against nonsense lengths before allocating.
    if len > bytes.len() {
        return None;
    }
    let mut centers = Vec::with_capacity(len);
    let mut weights = Vec::with_capacity(len);
    for _ in 0..len {
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            coords.push(d.f64()?);
        }
        centers.push(coords);
        weights.push(d.u64()?);
    }
    if !d.is_exhausted() {
        return None;
    }
    Some(SolverSnapshot {
        epochs,
        memory_peak,
        summary: SummarySnapshot {
            budget,
            dim,
            threshold,
            seen,
            merges,
            distance_evals,
            peak_rows,
            centers,
            weights,
        },
    })
}

fn corrupt(dir: &Path, detail: String) -> StoreError {
    StoreError::CorruptSegment {
        path: dir.to_path_buf(),
        offset: 0,
        detail,
    }
}

/// Rebuilds the in-memory stores from a [`Recovery`]. Every rebuilt
/// stream's digest is bit-identical to its pre-crash state (see module
/// docs); anything that cannot be rebuilt faithfully is a typed error.
pub fn recover(
    dir: &Path,
    recovery: &Recovery,
    store: &InstanceStore,
    streams: &StreamStore,
    default_kernel: ukc_metric::Kernel,
) -> Result<RecoveryStats, StoreError> {
    let mut stats = RecoveryStats {
        torn_tail: recovery.torn_tail,
        ..RecoveryStats::default()
    };

    for (digest, doc) in &recovery.instances {
        // `to_set_verbatim`, not `to_set`: the stored canonical doc holds
        // probabilities the live server already normalized, and
        // renormalizing them is not bit-idempotent — the digest check
        // below would reject perfectly good segments by an ulp.
        let set = api::parse_body(doc)
            .and_then(|json| JsonInstance::from_json(&json).map_err(Into::into))
            .and_then(|instance| instance.to_set_verbatim().map_err(Into::into))
            .map_err(|e| corrupt(dir, format!("stored instance does not parse: {e}")))?;
        let recomputed = ukc_core::digest_set(&set);
        if recomputed != *digest {
            return Err(corrupt(
                dir,
                format!("stored instance digests to {recomputed:016x}, segment says {digest:016x}"),
            ));
        }
        store.insert(set);
        stats.instances += 1;
    }

    for stream in &recovery.streams {
        let (solve, budget) = api::parse_body(&stream.create)
            .and_then(|json| api::parse_stream_create(&json))
            .map_err(|e| {
                corrupt(
                    dir,
                    format!("stream {} create record does not parse: {e}", stream.seq),
                )
            })?;
        // Mirror handle_stream_create: a create record without an
        // explicit "kernel" field takes the server-wide default, so a
        // recovered stream solves exactly like its live predecessor
        // (given the same --kernel flag across the restart).
        let solve = solve.apply_default_kernel(default_kernel);
        let mut builder = StreamSolver::builder(solve.k).config(solve.config.clone());
        if let Some(budget) = budget {
            builder = builder.budget(budget);
        }
        let mut solver = builder.build().map_err(|e| {
            corrupt(
                dir,
                format!("stream {} create record rejected: {e}", stream.seq),
            )
        })?;

        let mut expected_epoch = 1u64;
        if let Some(snapshot) = &stream.snapshot {
            let decoded = decode_snapshot(&snapshot.payload).ok_or_else(|| {
                corrupt(
                    dir,
                    format!("stream {} snapshot payload does not decode", stream.seq),
                )
            })?;
            if !solver.restore(&decoded) || solver.digest() != snapshot.digest {
                return Err(corrupt(
                    dir,
                    format!(
                        "stream {} snapshot does not restore to digest {:016x}",
                        stream.seq, snapshot.digest
                    ),
                ));
            }
            expected_epoch = snapshot.epochs + 1;
            stats.snapshot_restores += 1;
        }

        for (epoch, body) in &stream.pushes {
            // The surviving epochs must be exactly the contiguous tail
            // past the snapshot: a gap means acknowledged data is gone
            // (e.g. a snapshot file lost after its WAL records were
            // compacted away), which must fail loudly, not replay to a
            // silently different state.
            if *epoch != expected_epoch {
                return Err(corrupt(
                    dir,
                    format!(
                        "stream {} wal resumes at epoch {epoch}, expected {expected_epoch}",
                        stream.seq
                    ),
                ));
            }
            expected_epoch += 1;
            let chunk = api::parse_body(body)
                .and_then(|json| JsonInstance::from_json(&json).map_err(Into::into))
                .and_then(|instance| instance.to_set().map_err(Into::into))
                .map_err(|e| {
                    corrupt(
                        dir,
                        format!("stream {} epoch {epoch} does not parse: {e}", stream.seq),
                    )
                })?;
            solver.push_chunk(chunk.points()).map_err(|e| {
                corrupt(
                    dir,
                    format!("stream {} epoch {epoch} does not replay: {e}", stream.seq),
                )
            })?;
            stats.replayed_epochs += 1;
        }

        streams.restore(stream.seq, solver, solve.use_cache);
        stats.streams += 1;
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_core::SolverConfig;
    use ukc_metric::Point;
    use ukc_uncertain::UncertainPoint;

    fn evolved_solver() -> StreamSolver {
        let mut solver = StreamSolver::builder(2).budget(5).build().unwrap();
        let points: Vec<UncertainPoint<Point>> = (0..40)
            .map(|i| {
                UncertainPoint::new(
                    vec![
                        Point::new(vec![f64::from(i), 0.25]),
                        Point::new(vec![f64::from(i), 1.75]),
                    ],
                    vec![0.5, 0.5],
                )
                .unwrap()
            })
            .collect();
        solver.push_chunk(&points).unwrap();
        solver
    }

    #[test]
    fn snapshot_payload_round_trips_exactly() {
        let solver = evolved_solver();
        let snap = solver.snapshot();
        let bytes = encode_snapshot(&snap);
        let decoded = decode_snapshot(&bytes).expect("payload decodes");
        assert_eq!(decoded, snap);
        // And restoring the decoded snapshot reproduces the digest.
        let mut rebuilt = StreamSolver::builder(2)
            .config(SolverConfig::default())
            .budget(5)
            .build()
            .unwrap();
        assert!(rebuilt.restore(&decoded));
        assert_eq!(rebuilt.digest(), solver.digest());
    }

    #[test]
    fn truncated_payloads_decode_to_none() {
        let bytes = encode_snapshot(&evolved_solver().snapshot());
        for cut in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_none(), "cut {cut}");
        }
        // Trailing garbage is rejected too (payloads are exact).
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_snapshot(&padded).is_none());
    }
}
