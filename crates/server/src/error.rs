//! Typed API errors and their status-code mapping.
//!
//! Every failure the service can produce is an [`ApiError`] with a
//! machine-readable `kind`, mirroring [`SolveError`]'s philosophy: a
//! client can dispatch on `error.kind` without string matching. The JSON
//! payload is always
//!
//! ```json
//! { "error": { "status": 422, "kind": "k_exceeds_n", "message": "..." } }
//! ```
//!
//! Mapping policy: transport/shape problems (unreadable HTTP, invalid
//! JSON, schema violations, unknown fields) are `400`; a well-formed
//! request naming something that does not exist is `404`; a wrong method
//! on a real route is `405`; an oversized body is `413`; a request that
//! parses but is semantically invalid — every [`SolveError`] and every
//! instance-validation failure — is `422`; scheduler shutdown is `503`.

use crate::http::HttpError;
use ukc_core::SolveError;
use ukc_json::format::FormatError;
use ukc_json::Json;

/// A typed, JSON-serializable API failure.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// The HTTP status code.
    pub status: u16,
    /// Stable machine-readable discriminator.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A `400` with the given kind.
    pub fn bad_request(kind: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            kind,
            message: message.into(),
        }
    }

    /// `404` for an unknown route.
    pub fn route_not_found(path: &str) -> Self {
        ApiError {
            status: 404,
            kind: "route_not_found",
            message: format!("no route {path}"),
        }
    }

    /// `404` for an unknown instance.
    pub fn instance_not_found(id: &str) -> Self {
        ApiError {
            status: 404,
            kind: "instance_not_found",
            message: format!("no instance {id}"),
        }
    }

    /// `404` for an unknown stream.
    pub fn stream_not_found(id: &str) -> Self {
        ApiError {
            status: 404,
            kind: "stream_not_found",
            message: format!("no stream {id}"),
        }
    }

    /// `405` for a known route with the wrong method.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        ApiError {
            status: 405,
            kind: "method_not_allowed",
            message: format!("{method} is not supported on {path}"),
        }
    }

    /// `503` when the scheduler is gone (server shutting down).
    pub fn unavailable() -> Self {
        ApiError {
            status: 503,
            kind: "shutting_down",
            message: "the solve scheduler is no longer accepting work".into(),
        }
    }

    /// `503` when the scheduler's bounded queue is full. The response
    /// carries a `Retry-After` header; the request was never enqueued, so
    /// retrying is always safe.
    pub fn overloaded(depth: usize, cap: usize) -> Self {
        ApiError {
            status: 503,
            kind: "overloaded",
            message: format!("solve queue is full ({depth} of {cap} slots); retry shortly"),
        }
    }

    /// `429` when a stream's bounded ingest queue is full. The response
    /// carries a `Retry-After` header; the push was never enqueued, so
    /// retrying is always safe (at-most-once until acked).
    pub fn ingest_overloaded(depth: usize, cap: usize) -> Self {
        ApiError {
            status: 429,
            kind: "ingest_overloaded",
            message: format!("stream ingest queue is full ({depth} of {cap} slots); retry shortly"),
        }
    }

    /// `503` when the shard owning a digest is down and no live replica
    /// holds it. This is the *only* failure mode of a digest-routed read
    /// in a degraded cluster: reads of replicated instances keep working.
    pub fn shard_unavailable(id: &str) -> Self {
        ApiError {
            status: 503,
            kind: "shard_unavailable",
            message: format!("the shard owning {id} is down and no live replica holds it"),
        }
    }

    /// `400` for a cluster-lifecycle request sent to a node that is not
    /// running as a coordinator.
    pub fn not_coordinator() -> Self {
        ApiError {
            status: 400,
            kind: "not_coordinator",
            message: "this server is not running in coordinator mode (start with --shards)".into(),
        }
    }

    /// `502` when a shard answered but with something that is not a
    /// well-formed response (the cluster analog of `bad_http`).
    pub fn shard_error(addr: &str, detail: impl Into<String>) -> Self {
        ApiError {
            status: 502,
            kind: "shard_error",
            message: format!("shard {addr}: {}", detail.into()),
        }
    }

    /// `404` for a cluster node ID that is not in the registry.
    pub fn node_not_found(id: &str) -> Self {
        ApiError {
            status: 404,
            kind: "node_not_found",
            message: format!("no cluster node {id}"),
        }
    }

    /// The wire payload.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "error",
            Json::obj([
                ("status", Json::from(self.status as f64)),
                ("kind", Json::from(self.kind)),
                ("message", Json::from(self.message.as_str())),
            ]),
        )])
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.status, self.kind, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<HttpError> for ApiError {
    fn from(e: HttpError) -> Self {
        match e {
            HttpError::PayloadTooLarge { limit, declared } => ApiError {
                status: 413,
                kind: "payload_too_large",
                message: format!("body of {declared} bytes exceeds the {limit}-byte limit"),
            },
            HttpError::Closed | HttpError::Io(_) | HttpError::BadRequest(_) => {
                ApiError::bad_request("bad_http", e.to_string())
            }
        }
    }
}

impl From<SolveError> for ApiError {
    fn from(e: SolveError) -> Self {
        let kind = match &e {
            SolveError::ZeroK => "zero_k",
            SolveError::EmptySet => "empty_set",
            SolveError::KExceedsN { .. } => "k_exceeds_n",
            SolveError::EmptyCandidates => "empty_candidates",
            SolveError::DimensionMismatch { .. } => "dimension_mismatch",
            SolveError::RuleUnsupported { .. } => "rule_unsupported",
            SolveError::StrategyUnsupported { .. } => "strategy_unsupported",
            SolveError::WeightedUnsupported { .. } => "weighted_unsupported",
            SolveError::BadEpsilon { .. } => "bad_epsilon",
            SolveError::UnknownTableRow { .. } => "unknown_table_row",
        };
        ApiError {
            status: 422,
            kind,
            message: e.to_string(),
        }
    }
}

impl From<ukc_durable::StoreError> for ApiError {
    /// Durability failures: an I/O failure (disk gone, out of space,
    /// permissions) is a retryable `503 storage_unavailable`; CRC-failed
    /// acknowledged data is a `500 corrupt_segment` naming the offending
    /// file, because retrying cannot help and an operator must look.
    fn from(e: ukc_durable::StoreError) -> Self {
        use ukc_durable::StoreError;
        match &e {
            StoreError::Io { .. } | StoreError::NotADirectory { .. } => ApiError {
                status: 503,
                kind: "storage_unavailable",
                message: e.to_string(),
            },
            StoreError::CorruptSegment { .. } => ApiError {
                status: 500,
                kind: "corrupt_segment",
                message: e.to_string(),
            },
        }
    }
}

impl From<ukc_cluster::RegistryError> for ApiError {
    /// Registry lifecycle failures: naming a node that is not registered
    /// is a `404`; a structurally impossible change (removing the last
    /// node, splitting an exhausted prefix space) is a `422`.
    fn from(e: ukc_cluster::RegistryError) -> Self {
        use ukc_cluster::RegistryError;
        match &e {
            RegistryError::UnknownNode(id) => ApiError::node_not_found(&id.to_string()),
            RegistryError::Empty | RegistryError::LastNode => ApiError {
                status: 422,
                kind: "last_node",
                message: e.to_string(),
            },
            RegistryError::SpaceExhausted => ApiError {
                status: 422,
                kind: "space_exhausted",
                message: e.to_string(),
            },
        }
    }
}

impl From<FormatError> for ApiError {
    fn from(e: FormatError) -> Self {
        match &e {
            FormatError::Schema(_) => ApiError::bad_request("bad_schema", e.to_string()),
            FormatError::Empty => ApiError {
                status: 422,
                kind: "empty_set",
                message: e.to_string(),
            },
            FormatError::DimMismatch { .. }
            | FormatError::BadPoint { .. }
            | FormatError::NonFinite { .. }
            | FormatError::EmptyLocation { .. } => ApiError {
                status: 422,
                kind: "bad_instance",
                message: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_errors_map_to_422_with_stable_kinds() {
        let e: ApiError = SolveError::KExceedsN { k: 5, n: 3 }.into();
        assert_eq!((e.status, e.kind), (422, "k_exceeds_n"));
        let e: ApiError = SolveError::ZeroK.into();
        assert_eq!((e.status, e.kind), (422, "zero_k"));
        let e: ApiError = SolveError::BadEpsilon { eps: -1.0 }.into();
        assert_eq!((e.status, e.kind), (422, "bad_epsilon"));
    }

    #[test]
    fn payload_shape_is_stable() {
        let doc = ApiError::instance_not_found("deadbeef").to_json();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("status").and_then(Json::as_f64), Some(404.0));
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("instance_not_found")
        );
        assert!(err
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("deadbeef"));
    }

    #[test]
    fn store_errors_map_to_503_or_500() {
        let e: ApiError = ukc_durable::StoreError::Io {
            path: "/data/wal".into(),
            op: "fsync",
            source: std::io::Error::other("disk gone"),
        }
        .into();
        assert_eq!((e.status, e.kind), (503, "storage_unavailable"));
        let e: ApiError = ukc_durable::StoreError::CorruptSegment {
            path: "/data/instances/seg-000001.log".into(),
            offset: 64,
            detail: "crc mismatch".into(),
        }
        .into();
        assert_eq!((e.status, e.kind), (500, "corrupt_segment"));
        assert!(e.message.contains("seg-000001.log"));
    }

    #[test]
    fn cluster_errors_have_stable_kinds() {
        let e = ApiError::overloaded(4096, 4096);
        assert_eq!((e.status, e.kind), (503, "overloaded"));
        let e = ApiError::shard_unavailable("deadbeef");
        assert_eq!((e.status, e.kind), (503, "shard_unavailable"));
        assert!(e.message.contains("deadbeef"));
        let e = ApiError::not_coordinator();
        assert_eq!((e.status, e.kind), (400, "not_coordinator"));
        let e = ApiError::shard_error("127.0.0.1:9", "bad body");
        assert_eq!((e.status, e.kind), (502, "shard_error"));
        let e: ApiError = ukc_cluster::RegistryError::UnknownNode(7).into();
        assert_eq!((e.status, e.kind), (404, "node_not_found"));
        let e: ApiError = ukc_cluster::RegistryError::LastNode.into();
        assert_eq!((e.status, e.kind), (422, "last_node"));
        let e: ApiError = ukc_cluster::RegistryError::SpaceExhausted.into();
        assert_eq!((e.status, e.kind), (422, "space_exhausted"));
    }

    #[test]
    fn http_errors_map_to_400_or_413() {
        let e: ApiError = HttpError::BadRequest("nope".into()).into();
        assert_eq!((e.status, e.kind), (400, "bad_http"));
        let e: ApiError = HttpError::PayloadTooLarge {
            limit: 10,
            declared: 20,
        }
        .into();
        assert_eq!((e.status, e.kind), (413, "payload_too_large"));
    }
}
