//! A thin blocking HTTP client for smoke use: the CLI's `ukc client`,
//! the integration tests, and the throughput bench all drive the server
//! through this module, so the client exercises the same wire format the
//! server speaks (one request per call; `Connection: close` unless a
//! [`ClientConn`] keep-alive session is used).

use std::io::{BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed response: status code and body text.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

fn io_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Performs one request over a fresh connection.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    send_request(&stream, method, path, body, false)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// A keep-alive session: many requests over one connection (what the
/// throughput bench uses, so connection setup does not dominate).
pub struct ClientConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    /// Connects.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ClientConn { stream, reader })
    }

    /// Performs one request on the open connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        send_request(&self.stream, method, path, body, true)?;
        read_response(&mut self.reader)
    }
}

fn send_request(
    mut stream: &TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: ukc\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    stream.flush()
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<HttpResponse> {
    let status_line = read_line(reader)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io_err(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    // Tolerate a stray trailing CRLF from read_to_end on close.
    while matches!(body.last(), Some(b'\r' | b'\n')) && content_length.is_none() {
        body.pop();
    }
    Ok(HttpResponse {
        status,
        body: String::from_utf8(body).map_err(|_| io_err("non-utf8 response body"))?,
    })
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
        }
    }
    while matches!(line.last(), Some(b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| io_err("non-utf8 response header"))
}
