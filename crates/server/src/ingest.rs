//! Bounded, fair ingestion queues for high-rate stream pushes.
//!
//! Every `POST /streams/{id}/push` is applied by a dedicated ingest
//! worker instead of the connection thread. Two properties fall out:
//!
//! * **Backpressure** — each stream owns a bounded queue of pending
//!   pushes. A full queue rejects the submission immediately (the
//!   handler answers a typed `429 ingest_overloaded` with `Retry-After`)
//!   instead of letting a burst grow latency without bound. A rejected
//!   push was never enqueued, so retrying is always safe.
//! * **Fairness** — workers drain streams round-robin: after taking one
//!   job from a stream, that stream goes to the *back* of the rotation,
//!   so a hot stream pushing thousands of epochs cannot starve a quiet
//!   one out of the apply lane.
//!
//! The queue is generic over the job type so its scheduling discipline
//! can be unit-tested without a server: the server instantiates it with
//! a job carrying the parsed chunk and a reply slot the connection
//! thread blocks on (acks therefore still mean "applied — and, on a
//! durable server, fsync'd", exactly the pre-queue contract).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The stream's queue already holds `cap` pending jobs.
    Full {
        /// Jobs pending for this stream at rejection time.
        depth: usize,
        /// The configured per-stream bound.
        cap: usize,
    },
    /// The queue is shutting down and accepts nothing new.
    Shutdown,
}

struct Inner<T> {
    /// Pending jobs per stream (the job a worker is currently applying
    /// is *not* in here — `cap` bounds the waiting line, not the lane).
    queues: HashMap<String, VecDeque<T>>,
    /// Streams with pending jobs, in round-robin service order.
    order: VecDeque<String>,
    /// Streams a worker is currently applying a job for. A busy stream
    /// is never in `order`; `done` re-queues it at the back, which keeps
    /// per-stream application serialized (epoch order is stream state)
    /// even with several workers.
    busy: Vec<String>,
    shutdown: bool,
}

/// A bounded multi-stream queue with round-robin service order.
pub struct IngestQueue<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

impl<T> IngestQueue<T> {
    /// A queue admitting at most `cap` pending jobs per stream.
    pub fn new(cap: usize) -> Self {
        IngestQueue {
            cap,
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                order: VecDeque::new(),
                busy: Vec::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The configured per-stream bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Enqueues one job for `stream`, or refuses without side effects.
    pub fn submit(&self, stream: &str, job: T) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("ingest lock poisoned");
        if inner.shutdown {
            return Err(SubmitError::Shutdown);
        }
        let depth = inner.queues.get(stream).map_or(0, VecDeque::len);
        if depth >= self.cap {
            return Err(SubmitError::Full {
                depth,
                cap: self.cap,
            });
        }
        inner
            .queues
            .entry(stream.to_string())
            .or_default()
            .push_back(job);
        // A busy stream re-enters the rotation via `done`; a waiting one
        // is already rotated. Only a newly-pending stream is added here.
        if !inner.busy.iter().any(|s| s == stream) && !inner.order.iter().any(|s| s == stream) {
            inner.order.push_back(stream.to_string());
        }
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and claims it, marking its stream
    /// busy. Returns `None` once the queue is shut down and idle.
    pub fn next(&self) -> Option<(String, T)> {
        let mut inner = self.inner.lock().expect("ingest lock poisoned");
        loop {
            while let Some(stream) = inner.order.pop_front() {
                if let Some(job) = inner.queues.get_mut(&stream).and_then(VecDeque::pop_front) {
                    inner.busy.push(stream.clone());
                    return Some((stream, job));
                }
                // Stale rotation entry (stream drained elsewhere): skip.
            }
            if inner.shutdown {
                return None;
            }
            inner = self.cv.wait(inner).expect("ingest lock poisoned");
        }
    }

    /// Releases the busy claim on `stream` after its job was applied,
    /// re-queuing the stream at the *back* of the rotation when it still
    /// has pending jobs — the round-robin fairness step.
    pub fn done(&self, stream: &str) {
        let mut inner = self.inner.lock().expect("ingest lock poisoned");
        inner.busy.retain(|s| s != stream);
        let pending = inner.queues.get(stream).is_some_and(|q| !q.is_empty());
        if pending {
            if !inner.order.iter().any(|s| s == stream) {
                inner.order.push_back(stream.to_string());
            }
            drop(inner);
            self.cv.notify_one();
        } else {
            // Drop the per-stream slot so deleted streams do not leak
            // map entries.
            inner.queues.remove(stream);
        }
    }

    /// Jobs pending for one stream (excluding any job being applied).
    pub fn depth(&self, stream: &str) -> usize {
        self.inner
            .lock()
            .expect("ingest lock poisoned")
            .queues
            .get(stream)
            .map_or(0, VecDeque::len)
    }

    /// Stops admitting work and wakes every blocked worker.
    pub fn shutdown(&self) {
        self.inner.lock().expect("ingest lock poisoned").shutdown = true;
        self.cv.notify_all();
    }

    /// Removes and returns every still-pending job (shutdown path: the
    /// caller fails their reply slots so no submitter blocks forever).
    pub fn drain_all(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("ingest lock poisoned");
        inner.order.clear();
        inner
            .queues
            .drain()
            .flat_map(|(_, q)| q.into_iter())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_per_stream_rejects_at_cap() {
        let q: IngestQueue<u32> = IngestQueue::new(2);
        assert_eq!(q.submit("a", 1), Ok(()));
        assert_eq!(q.submit("a", 2), Ok(()));
        assert_eq!(
            q.submit("a", 3),
            Err(SubmitError::Full { depth: 2, cap: 2 })
        );
        // Other streams have their own bound.
        assert_eq!(q.submit("b", 10), Ok(()));
        assert_eq!(q.depth("a"), 2);
        assert_eq!(q.depth("b"), 1);
    }

    #[test]
    fn drains_round_robin_across_streams() {
        let q: IngestQueue<u32> = IngestQueue::new(16);
        // Stream a is hot (3 jobs), b and c quiet (1 each).
        for j in [1, 2, 3] {
            q.submit("a", j).unwrap();
        }
        q.submit("b", 10).unwrap();
        q.submit("c", 20).unwrap();
        let mut served = Vec::new();
        for _ in 0..5 {
            let (stream, job) = q.next().expect("job available");
            served.push((stream.clone(), job));
            q.done(&stream);
        }
        // One job per stream per rotation: a1 b c a2 a3, never a1 a2 a3 b c.
        assert_eq!(
            served,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 10),
                ("c".to_string(), 20),
                ("a".to_string(), 2),
                ("a".to_string(), 3),
            ]
        );
    }

    #[test]
    fn busy_stream_is_not_double_claimed() {
        let q: IngestQueue<u32> = IngestQueue::new(16);
        q.submit("a", 1).unwrap();
        q.submit("a", 2).unwrap();
        let (stream, job) = q.next().expect("first job");
        assert_eq!((stream.as_str(), job), ("a", 1));
        // While a's first job is in flight the second must wait — the
        // rotation is empty, so a second worker would block (probe via
        // shutdown, which turns the block into None).
        q.shutdown();
        assert_eq!(q.next(), None);
        assert_eq!(q.depth("a"), 1);
    }

    #[test]
    fn capacity_frees_as_jobs_complete() {
        let q: IngestQueue<u32> = IngestQueue::new(1);
        q.submit("a", 1).unwrap();
        assert!(matches!(q.submit("a", 2), Err(SubmitError::Full { .. })));
        let (stream, _) = q.next().unwrap();
        // The in-flight job no longer counts against the bound.
        q.submit("a", 2).unwrap();
        q.done(&stream);
        let (_, job) = q.next().unwrap();
        assert_eq!(job, 2);
        q.done("a");
        assert_eq!(q.depth("a"), 0);
    }

    #[test]
    fn shutdown_refuses_submissions_and_drains_pending() {
        let q: IngestQueue<u32> = IngestQueue::new(8);
        q.submit("a", 1).unwrap();
        q.submit("b", 2).unwrap();
        q.shutdown();
        assert_eq!(q.submit("a", 3), Err(SubmitError::Shutdown));
        let mut rest = q.drain_all();
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 2]);
        assert_eq!(q.next(), None);
    }
}
