//! A capacity-bounded LRU solution cache keyed by `(digest, config)`.
//!
//! The approximate-LOO lesson from the conformal literature applies
//! directly: when many requests hit the same instance, the expensive part
//! must be paid once and amortized. The cache key is the problem's
//! canonical content digest ([`ukc_core::Problem::instance_digest`],
//! which covers the set, `k`, and the space) plus a canonical rendering
//! of the [`SolverConfig`], so a hit is only possible when the solve
//! would be bit-identical anyway — solves are deterministic in
//! `(problem, config)`.
//!
//! Recency is tracked with a monotonic stamp per entry; eviction scans
//! for the minimum stamp. That is O(capacity) per eviction, which is the
//! right trade at the few-hundred-entry capacities this service runs
//! with (no linked-list bookkeeping on the hot hit path, just a stamp
//! store).

use std::collections::HashMap;
use std::hash::Hash;

use ukc_core::{CandidatePolicy, CertainStrategy, SolverConfig};

/// A canonical cache key for one solve request.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SolveKey {
    /// [`ukc_core::Problem::instance_digest`] of the problem.
    pub digest: u64,
    /// The underlying *set* digest (the instance's content ID, or a
    /// stream's state digest). Not part of what distinguishes keys —
    /// `digest` already covers it — but carried so deletes can evict
    /// every entry derived from one instance or stream state with
    /// [`LruCache::retain`].
    pub set_digest: u64,
    /// Canonical rendering of the configuration.
    pub config: String,
    /// The instance digest of the prior a warm start chained from
    /// (`None` for cold solves). A warm solve can legitimately differ
    /// from the cold solve of the same problem — it reuses the prior's
    /// centers — so warm and cold results of one instance must never
    /// collide under one key, and warm results from *different* priors
    /// must not collide with each other either.
    pub base: Option<u64>,
}

impl SolveKey {
    /// Builds the key for a cold `(digest, config)` solve; `set_digest`
    /// tags the key with its source set for delete-time eviction.
    pub fn new(digest: u64, set_digest: u64, config: &SolverConfig) -> Self {
        SolveKey {
            digest,
            set_digest,
            config: config_key(config),
            base: None,
        }
    }

    /// This key rescoped to a warm solve chained from the prior with
    /// instance digest `base`.
    #[must_use]
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = Some(base);
        self
    }
}

/// Renders a [`SolverConfig`] canonically: every field that can change a
/// solve result appears, floats by bit pattern so distinct values can
/// never collide.
///
/// [`SolverConfig::threads`] is deliberately **excluded**: the execution
/// layer guarantees bit-identical solutions for every lane count, so a
/// result computed at `threads = 1` may serve a `threads = N` request
/// (and vice versa) — splitting the cache by threads would only lower
/// the hit rate (pinned by `config_keys_ignore_threads`).
pub fn config_key(config: &SolverConfig) -> String {
    let strategy = match config.strategy() {
        CertainStrategy::Gonzalez => "gonzalez".to_string(),
        CertainStrategy::GonzalezLocalSearch { rounds } => format!("local-search:{rounds}"),
        CertainStrategy::Grid => "grid".to_string(),
        CertainStrategy::ExactDiscrete => "exact".to_string(),
    };
    let policy = match config.candidate_policy() {
        CandidatePolicy::ProblemPool => "problem",
        CandidatePolicy::LocationPool => "location",
    };
    let grid = config.grid_options();
    let exact = config.exact_options();
    format!(
        "rule={:?};strategy={strategy};assignment={};eps={:016x};seed={};policy={policy};lb={};kernel={};grid={:?};exact={:?}",
        config.rule(),
        config.assignment().name(),
        config.eps().to_bits(),
        config.seed(),
        config.computes_lower_bound(),
        config.kernel().name(),
        grid,
        exact,
    )
}

/// A minimal LRU map. Not thread-safe by itself — the server wraps it in
/// a `Mutex` (hit bookkeeping mutates recency, so a shared lock would not
/// help).
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. Capacity 0 disables
    /// caching entirely (every `get` misses, `insert` is a no-op).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up and refreshes recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((stamp, value)) => {
                *stamp = tick;
                Some(value)
            }
            None => None,
        }
    }

    /// Inserts, evicting the least-recently-used entry at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Keeps only the entries whose key satisfies `keep` (delete-time
    /// eviction: drop everything derived from a removed instance or
    /// stream).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        self.map.retain(|k, _| keep(k));
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // refresh a
        cache.insert("c", 3); // evicts b
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.get(&"b"), Some(&2));
    }

    #[test]
    fn retain_evicts_matching_keys() {
        let mut cache = LruCache::new(4);
        cache.insert(("a", 1), 10);
        cache.insert(("a", 2), 20);
        cache.insert(("b", 1), 30);
        cache.retain(|(name, _)| *name != "a");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&("b", 1)), Some(&30));
        assert_eq!(cache.get(&("a", 1)), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut cache = LruCache::new(0);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn config_keys_separate_every_knob() {
        use ukc_core::{AssignmentMode, AssignmentRule};
        let base = SolverConfig::default();
        let variants = [
            SolverConfig::builder()
                .rule(AssignmentRule::ExpectedDistance)
                .build()
                .unwrap(),
            SolverConfig::builder()
                .assignment(AssignmentMode::AdditivelyWeighted)
                .build()
                .unwrap(),
            SolverConfig::builder()
                .strategy(CertainStrategy::GonzalezLocalSearch { rounds: 3 })
                .build()
                .unwrap(),
            SolverConfig::builder().eps(0.125).build().unwrap(),
            SolverConfig::builder().seed(9).build().unwrap(),
            SolverConfig::builder().lower_bound(false).build().unwrap(),
            SolverConfig::builder()
                .candidate_policy(CandidatePolicy::LocationPool)
                .build()
                .unwrap(),
        ];
        let base_key = config_key(&base);
        for v in &variants {
            assert_ne!(config_key(v), base_key, "{v:?}");
        }
        assert_eq!(config_key(&base), config_key(&SolverConfig::default()));
    }

    #[test]
    fn warm_and_cold_keys_never_collide() {
        let config = SolverConfig::default();
        let cold = SolveKey::new(1, 2, &config);
        let warm = SolveKey::new(1, 2, &config).with_base(77);
        let other_prior = SolveKey::new(1, 2, &config).with_base(78);
        assert_ne!(cold, warm);
        assert_ne!(warm, other_prior);
        let mut cache = LruCache::new(4);
        cache.insert(cold.clone(), "cold");
        cache.insert(warm.clone(), "warm");
        assert_eq!(cache.get(&cold), Some(&"cold"));
        assert_eq!(cache.get(&warm), Some(&"warm"));
        assert_eq!(cache.get(&other_prior), None);
    }

    #[test]
    fn config_keys_ignore_threads() {
        // Threads are a resource knob with bit-identical output, so a
        // cached solution must be shared across every lane count.
        let base_key = config_key(&SolverConfig::default());
        for threads in [1usize, 2, 8] {
            let cfg = SolverConfig::builder().threads(threads).build().unwrap();
            assert_eq!(config_key(&cfg), base_key, "threads = {threads}");
        }
    }
}
