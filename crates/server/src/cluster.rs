//! Coordinator mode: scatter/gather serving over digest-sharded nodes.
//!
//! A coordinator (`ukc serve --shards a,b,...`) stores no instances of
//! its own. Every instance route is **digest-routed**: the instance ID
//! *is* the content digest (`ukc_core::digest_set`, hex), so the
//! [`NodeRegistry`] maps it to the one shard owning its prefix range and
//! the request is proxied over the workspace HTTP client. Batch solves
//! (`POST /solve_batch`) scatter: ids are grouped by owning shard, each
//! group is forwarded concurrently on the process-wide [`ukc_pool`]
//! lanes, and the per-shard responses are gathered back into request
//! order with per-shard timing attribution. Because every shard runs the
//! same bit-deterministic solve path, the merged solutions are
//! byte-identical to what one unsharded server would have produced.
//!
//! **Replication** ([`HotSet`]): the coordinator counts digest-routed
//! reads; when an instance crosses the configured threshold it is copied
//! once to the owner's ring successor via the internal `POST /replicate`
//! endpoint (which stores verbatim, preserving the digest/ID). Reads of
//! a digest whose owner is down fall back to its recorded replicas; only
//! a digest with **no** live copy fails, with the typed
//! `503 shard_unavailable`.
//!
//! Liveness: a background prober hits each shard's `GET /healthz` every
//! `probe_interval_ms`, and every forwarded request updates the owner's
//! state as a side effect. Ownership never changes with liveness — only
//! explicit `POST /cluster/nodes` / `DELETE /cluster/nodes/{id}` calls
//! rebalance, and then only minimally (split the widest range / merge
//! the removed range into its neighbor).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::api;
use crate::error::ApiError;
use crate::http::Request;
use crate::server::{AppState, Handled, ServerConfig};
use ukc_cluster::client::{self, ClientOptions, HttpResponse};
use ukc_cluster::{HotSet, NodeRegistry, NodeState};
use ukc_json::format::cluster::JsonNode;
use ukc_json::format::JsonInstance;
use ukc_json::Json;

/// Everything coordinator mode adds to [`AppState`].
pub(crate) struct ClusterState {
    /// Shard ownership + liveness. Shared with the prober thread.
    registry: Arc<Mutex<NodeRegistry>>,
    /// Read counts + replica locations per digest.
    hot: Mutex<HotSet>,
    /// Transport tunables for every forwarded request.
    options: ClientOptions,
    probe_stop: Arc<AtomicBool>,
}

impl ClusterState {
    /// Builds the coordinator state when `config.shards` is non-empty.
    pub(crate) fn new(config: &ServerConfig) -> Option<Self> {
        if config.shards.is_empty() {
            return None;
        }
        let registry = NodeRegistry::new(config.shards.iter().cloned())
            .expect("a non-empty shard list builds a registry");
        let registry = Arc::new(Mutex::new(registry));
        let options = ClientOptions {
            timeout: Some(Duration::from_millis(config.shard_timeout_ms.max(1))),
            retries: config.shard_retries,
            backoff: Duration::from_millis(50),
        };
        let probe_stop = Arc::new(AtomicBool::new(false));
        if config.probe_interval_ms > 0 {
            spawn_prober(
                Arc::clone(&registry),
                options.clone(),
                config.probe_interval_ms,
                Arc::clone(&probe_stop),
            );
        }
        Some(ClusterState {
            registry,
            hot: Mutex::new(HotSet::new(config.replicate_after)),
            options,
            probe_stop,
        })
    }

    /// Stops the prober thread (it exits within ~25ms).
    pub(crate) fn stop(&self) {
        self.probe_stop.store(true, Ordering::SeqCst);
    }

    fn registry(&self) -> std::sync::MutexGuard<'_, NodeRegistry> {
        self.registry.lock().expect("registry lock poisoned")
    }

    fn hot(&self) -> std::sync::MutexGuard<'_, HotSet> {
        self.hot.lock().expect("hot-set lock poisoned")
    }
}

/// The liveness prober: marks nodes `Alive`/`Down` from `/healthz`.
/// Detached (never joined): it holds only the registry and the stop
/// flag, checks the flag every ≤25ms, and exits promptly on stop.
fn spawn_prober(
    registry: Arc<Mutex<NodeRegistry>>,
    options: ClientOptions,
    interval_ms: u64,
    stop: Arc<AtomicBool>,
) {
    let probe_options = ClientOptions {
        retries: 0,
        ..options
    };
    let _ = std::thread::Builder::new()
        .name("ukc-probe".into())
        .spawn(move || loop {
            let mut slept = 0u64;
            while slept < interval_ms {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let nap = (interval_ms - slept).min(25);
                std::thread::sleep(Duration::from_millis(nap));
                slept += nap;
            }
            let nodes: Vec<(usize, String)> = registry
                .lock()
                .expect("registry lock poisoned")
                .nodes()
                .iter()
                .map(|n| (n.id, n.addr.clone()))
                .collect();
            for (id, addr) in nodes {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let alive =
                    client::request_with(addr.as_str(), "GET", "/healthz", None, &probe_options)
                        .map(|r| r.is_success())
                        .unwrap_or(false);
                let state = if alive {
                    NodeState::Alive
                } else {
                    NodeState::Down
                };
                let _ = registry
                    .lock()
                    .expect("registry lock poisoned")
                    .set_state(id, state);
            }
        });
}

/// Parses a 16-hex-char instance ID back to its digest. IDs come from
/// `ukc_core::digest_hex`, so anything else can never name an instance.
fn parse_digest(id: &str) -> Option<u64> {
    (id.len() == 16 && id.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| u64::from_str_radix(id, 16).ok())
        .flatten()
}

/// The owner of a digest: `(id, addr, state)` snapshot.
fn owner_of(cluster: &ClusterState, digest: u64) -> (usize, String, NodeState) {
    let registry = cluster.registry();
    let node = registry.route(digest);
    (node.id, node.addr.clone(), node.state)
}

fn node_info(cluster: &ClusterState, id: usize) -> Option<(String, NodeState)> {
    let registry = cluster.registry();
    registry.node(id).map(|n| (n.addr.clone(), n.state))
}

/// Forwards one request to a node, updating its observed liveness as a
/// side effect. `None` means a transport failure (the node is now
/// marked `Down`); an HTTP-level error response is still `Some`.
fn try_forward(
    cluster: &ClusterState,
    node_id: usize,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Option<HttpResponse> {
    match client::request_with(addr, method, path, body, &cluster.options) {
        Ok(response) => {
            let _ = cluster.registry().set_state(node_id, NodeState::Alive);
            Some(response)
        }
        Err(_) => {
            let _ = cluster.registry().set_state(node_id, NodeState::Down);
            None
        }
    }
}

/// Turns a shard response into this server's response, re-parsing the
/// body so coordinator output is rendered by the same serializer as
/// every other response (and therefore byte-identical to single-node
/// output for identical documents).
fn relay(addr: &str, response: &HttpResponse) -> Handled {
    let doc = Json::parse(&response.body)
        .map_err(|e| ApiError::shard_error(addr, format!("unparseable response body: {e}")))?;
    Ok((response.status, doc))
}

/// The digest-routed read path: try the owner, fall back to recorded
/// replicas when the owner is unreachable, and fail with the typed
/// `shard_unavailable` only when no live copy answered.
fn read_routed(
    cluster: &ClusterState,
    digest: u64,
    id: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Handled {
    let (owner_id, owner_addr, owner_state) = owner_of(cluster, digest);
    if owner_state == NodeState::Alive {
        if let Some(response) = try_forward(cluster, owner_id, &owner_addr, method, path, body) {
            return relay(&owner_addr, &response);
        }
    }
    for replica_id in cluster.hot().replicas(digest).to_vec() {
        let Some((addr, state)) = node_info(cluster, replica_id) else {
            continue;
        };
        if state != NodeState::Alive {
            continue;
        }
        if let Some(response) = try_forward(cluster, replica_id, &addr, method, path, body) {
            return relay(&addr, &response);
        }
    }
    Err(ApiError::shard_unavailable(id))
}

/// Counts one read of `digest` and, when it crosses the hot threshold,
/// synchronously copies the instance from its owner to the owner's ring
/// successor. Synchronous so the effect is observable right after the
/// triggering response — tests and operators never race a background
/// copier. Best-effort: a failed copy just leaves the digest hot, and
/// the next read retries.
fn record_read_and_replicate(cluster: &ClusterState, digest: u64, id: &str) {
    if !cluster.hot().record_read(digest) {
        return;
    }
    let (owner_id, owner_addr, owner_state) = owner_of(cluster, digest);
    if owner_state != NodeState::Alive {
        return;
    }
    let target = {
        let registry = cluster.registry();
        registry
            .successor_alive(owner_id)
            .map(|n| (n.id, n.addr.clone()))
    };
    let Some((target_id, target_addr)) = target else {
        return;
    };
    let path = format!("/instances/{id}");
    let Some(response) = try_forward(cluster, owner_id, &owner_addr, "GET", &path, None) else {
        return;
    };
    if !response.is_success() {
        return;
    }
    let Ok(doc) = Json::parse(&response.body) else {
        return;
    };
    let Some(instance) = doc.get("instance") else {
        return;
    };
    let body = instance.compact();
    if let Some(copy) = try_forward(
        cluster,
        target_id,
        &target_addr,
        "POST",
        "/replicate",
        Some(&body),
    ) {
        if copy.is_success() {
            cluster.hot().add_replica(digest, target_id);
        }
    }
}

/// `POST /instances` (coordinator): validate locally — so malformed
/// bodies fail with exactly the single-node error — then route the
/// canonical digest to its owner and forward the original body.
pub(crate) fn create(cluster: &ClusterState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let instance = JsonInstance::from_json(&doc).map_err(ApiError::from)?;
    let set = instance.to_set().map_err(ApiError::from)?;
    let digest = ukc_core::digest_set(&set);
    let id = ukc_core::digest_hex(digest);
    let body = std::str::from_utf8(&request.body).expect("parse_body proved utf-8");
    let (owner_id, owner_addr, _) = owner_of(cluster, digest);
    match try_forward(
        cluster,
        owner_id,
        &owner_addr,
        "POST",
        "/instances",
        Some(body),
    ) {
        Some(response) => relay(&owner_addr, &response),
        None => Err(ApiError::shard_unavailable(&id)),
    }
}

/// `GET /instances` (coordinator): gather every live shard's listing,
/// dedupe by ID (replicas appear on two nodes), and sort for stability.
pub(crate) fn list(cluster: &ClusterState) -> Handled {
    let nodes: Vec<(usize, String, NodeState)> = cluster
        .registry()
        .nodes()
        .iter()
        .map(|n| (n.id, n.addr.clone(), n.state))
        .collect();
    let mut items: Vec<(String, Json)> = Vec::new();
    for (node_id, addr, state) in nodes {
        if state != NodeState::Alive {
            continue;
        }
        let Some(response) = try_forward(cluster, node_id, &addr, "GET", "/instances", None) else {
            continue;
        };
        let Ok(doc) = Json::parse(&response.body) else {
            continue;
        };
        let Some(instances) = doc.get("instances").and_then(Json::as_array) else {
            continue;
        };
        for item in instances {
            let Some(id) = item.get("id").and_then(Json::as_str) else {
                continue;
            };
            if !items.iter().any(|(seen, _)| seen == id) {
                items.push((id.to_string(), item.clone()));
            }
        }
    }
    items.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((
        200,
        Json::obj([(
            "instances",
            Json::arr(items.into_iter().map(|(_, doc)| doc)),
        )]),
    ))
}

/// `GET /instances/{id}` (coordinator): digest-routed with replica
/// fallback; counts toward the hot threshold.
pub(crate) fn get(cluster: &ClusterState, id: &str) -> Handled {
    let Some(digest) = parse_digest(id) else {
        return Err(ApiError::instance_not_found(id));
    };
    record_read_and_replicate(cluster, digest, id);
    read_routed(
        cluster,
        digest,
        id,
        "GET",
        &format!("/instances/{id}"),
        None,
    )
}

/// `DELETE /instances/{id}` (coordinator): delete on the owner, then
/// sweep every recorded replica (best-effort) and drop the digest's
/// hot-tracking state.
pub(crate) fn delete(cluster: &ClusterState, id: &str) -> Handled {
    let Some(digest) = parse_digest(id) else {
        return Err(ApiError::instance_not_found(id));
    };
    let (owner_id, owner_addr, _) = owner_of(cluster, digest);
    let path = format!("/instances/{id}");
    let Some(response) = try_forward(cluster, owner_id, &owner_addr, "DELETE", &path, None) else {
        return Err(ApiError::shard_unavailable(id));
    };
    if response.is_success() {
        for replica_id in cluster.hot().forget(digest) {
            if let Some((addr, NodeState::Alive)) = node_info(cluster, replica_id) {
                let _ = try_forward(cluster, replica_id, &addr, "DELETE", &path, None);
            }
        }
    }
    relay(&owner_addr, &response)
}

/// `POST /instances/{id}/solve` (coordinator): digest-routed with
/// replica fallback — a replica stores the instance under the same
/// digest and runs the same deterministic solve, so a fallback response
/// is byte-identical to the owner's.
/// The query string to forward verbatim (warm solves ride on `?base=`,
/// which must survive the coordinator hop).
fn query_suffix(request: &Request) -> String {
    match &request.query {
        Some(q) => format!("?{q}"),
        None => String::new(),
    }
}

pub(crate) fn solve(cluster: &ClusterState, id: &str, request: &Request) -> Handled {
    let Some(digest) = parse_digest(id) else {
        return Err(ApiError::instance_not_found(id));
    };
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("bad_json", "body is not valid UTF-8"))?;
    record_read_and_replicate(cluster, digest, id);
    read_routed(
        cluster,
        digest,
        id,
        "POST",
        &format!("/instances/{id}/solve{}", query_suffix(request)),
        Some(body),
    )
}

/// `POST /instances/{id}/solve_loo` (coordinator): digest-routed to the
/// owning shard like a solve — the LOO sweep shares the shard's point
/// store and caches.
pub(crate) fn solve_loo(cluster: &ClusterState, id: &str, request: &Request) -> Handled {
    let Some(digest) = parse_digest(id) else {
        return Err(ApiError::instance_not_found(id));
    };
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::bad_request("bad_json", "body is not valid UTF-8"))?;
    record_read_and_replicate(cluster, digest, id);
    read_routed(
        cluster,
        digest,
        id,
        "POST",
        &format!("/instances/{id}/solve_loo"),
        Some(body),
    )
}

/// `POST /solve` (coordinator): the inline instance digests to a shard
/// like a stored one, so the one-shot lands on the node that would own
/// it — warming the right solution cache. One-shots are stateless, so
/// any live node can stand in when the owner is down.
pub(crate) fn oneshot(cluster: &ClusterState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let (instance, _solve) = api::parse_oneshot(&doc)?;
    let set = instance.to_set().map_err(ApiError::from)?;
    let digest = ukc_core::digest_set(&set);
    let body = std::str::from_utf8(&request.body).expect("parse_body proved utf-8");
    let (owner_id, owner_addr, owner_state) = owner_of(cluster, digest);
    if owner_state == NodeState::Alive {
        if let Some(response) =
            try_forward(cluster, owner_id, &owner_addr, "POST", "/solve", Some(body))
        {
            return relay(&owner_addr, &response);
        }
    }
    let fallback = {
        let registry = cluster.registry();
        registry
            .successor_alive(owner_id)
            .map(|n| (n.id, n.addr.clone()))
    };
    if let Some((node_id, addr)) = fallback {
        if let Some(response) = try_forward(cluster, node_id, &addr, "POST", "/solve", Some(body)) {
            return relay(&addr, &response);
        }
    }
    Err(ApiError::shard_unavailable(&ukc_core::digest_hex(digest)))
}

/// `POST /instances/{id}/append` (coordinator): fetch the stored points
/// from the owning shard (verbatim, so the recovered set is bit-exact),
/// grow them with the request's points, and store the grown instance on
/// the shard owning the *new* digest — append can move content across
/// the cluster, exactly as content addressing demands.
pub(crate) fn append(cluster: &ClusterState, id: &str, request: &Request) -> Handled {
    let Some(digest) = parse_digest(id) else {
        return Err(ApiError::instance_not_found(id));
    };
    let doc = api::parse_body(&request.body)?;
    let instance = JsonInstance::from_json(&doc).map_err(ApiError::from)?;
    let appended = instance.to_set().map_err(ApiError::from)?;

    record_read_and_replicate(cluster, digest, id);
    let (status, stored_doc) = read_routed(
        cluster,
        digest,
        id,
        "GET",
        &format!("/instances/{id}"),
        None,
    )?;
    if status != 200 {
        return Ok((status, stored_doc));
    }
    let stored_dim = stored_doc.get("dim").and_then(Json::as_usize).unwrap_or(0);
    if instance.dim != stored_dim {
        let stored_n = stored_doc.get("n").and_then(Json::as_usize).unwrap_or(0);
        return Err(ukc_core::SolveError::DimensionMismatch {
            point: stored_n,
            got: instance.dim,
            expected: stored_dim,
        }
        .into());
    }
    let stored_instance = stored_doc
        .get("instance")
        .ok_or_else(|| ApiError::shard_error("owner", "instance document missing"))
        .and_then(|d| JsonInstance::from_json(d).map_err(ApiError::from))?;
    // Verbatim: the owner serialized its already-normalized set, and a
    // renormalizing parse is not bit-idempotent — the grown digest must
    // match what the owner itself would have computed.
    let stored_set = stored_instance.to_set_verbatim().map_err(ApiError::from)?;

    let mut points = stored_set.points().to_vec();
    points.extend(appended.points().iter().cloned());
    let grown = ukc_uncertain::UncertainSet::new(points);
    let grown_body = JsonInstance::from_set(&grown).to_json().compact();
    let new_digest = ukc_core::digest_set(&grown);
    let new_id = ukc_core::digest_hex(new_digest);

    let (new_owner_id, new_owner_addr, _) = owner_of(cluster, new_digest);
    let Some(response) = try_forward(
        cluster,
        new_owner_id,
        &new_owner_addr,
        "POST",
        "/replicate",
        Some(&grown_body),
    ) else {
        return Err(ApiError::shard_unavailable(&new_id));
    };
    let (status, mut body) = relay(&new_owner_addr, &response)?;
    if let Json::Obj(pairs) = &mut body {
        // Mirror the single-node append response's field order:
        // summary, previous_id, parent_digest, appended, created.
        let created = pairs
            .iter()
            .position(|(k, _)| k == "created")
            .map(|i| pairs.remove(i));
        pairs.push(("previous_id".into(), Json::from(id)));
        pairs.push((
            "parent_digest".into(),
            Json::from(ukc_core::digest_hex(digest)),
        ));
        pairs.push(("appended".into(), Json::from(appended.n())));
        if let Some(created) = created {
            pairs.push(created);
        }
    }
    Ok((status, body))
}

/// One scattered shard group's outcome.
struct GroupReport {
    node_id: usize,
    addr: String,
    indices: Vec<usize>,
    docs: Vec<Json>,
    seconds: f64,
}

/// `POST /solve_batch` (coordinator): group ids by owning shard,
/// scatter one `/solve_batch` sub-request per shard concurrently on the
/// shared pool lanes, gather into request order, and attribute wall
/// time per shard. A shard that fails mid-scatter degrades to per-id
/// replica fallback instead of failing the whole batch.
pub(crate) fn solve_batch(cluster: &ClusterState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let (ids, _solve) = api::parse_solve_batch(&doc)?;

    let mut slots: Vec<Option<Json>> = vec![None; ids.len()];
    let mut groups: Vec<(usize, String, Vec<usize>)> = Vec::new(); // (node, addr, item indices)
    for (i, id) in ids.iter().enumerate() {
        let Some(digest) = parse_digest(id) else {
            slots[i] = Some(ApiError::instance_not_found(id).to_json());
            continue;
        };
        record_read_and_replicate(cluster, digest, id);
        let (owner_id, owner_addr, _) = owner_of(cluster, digest);
        match groups.iter_mut().find(|(node, _, _)| *node == owner_id) {
            Some((_, _, indices)) => indices.push(i),
            None => groups.push((owner_id, owner_addr, vec![i])),
        }
    }

    let reports: Vec<GroupReport> = ukc_pool::map_chunks(
        ukc_pool::Exec::auto(groups.len()),
        groups.len(),
        1,
        |range| {
            let (node_id, addr, indices) = &groups[range.start];
            let group_ids: Vec<String> = indices.iter().map(|&i| ids[i].clone()).collect();
            let started = Instant::now();
            let docs = scatter_group(cluster, *node_id, addr, &doc, &group_ids);
            GroupReport {
                node_id: *node_id,
                addr: addr.clone(),
                indices: indices.clone(),
                docs,
                seconds: started.elapsed().as_secs_f64(),
            }
        },
    );

    let shards = Json::arr(reports.iter().map(|r| {
        Json::obj([
            ("node", Json::from(r.node_id)),
            ("addr", Json::from(r.addr.as_str())),
            ("ids", Json::from(r.indices.len())),
            ("seconds", Json::from(r.seconds)),
        ])
    }));
    for report in reports {
        for (&slot, doc) in report.indices.iter().zip(report.docs) {
            slots[slot] = Some(doc);
        }
    }
    let count = slots.len();
    let solutions: Vec<Json> = slots
        .into_iter()
        .map(|s| s.expect("every id lands in exactly one slot or group"))
        .collect();
    Ok((
        200,
        Json::obj([
            ("solutions", Json::arr(solutions)),
            ("count", Json::from(count)),
            ("shards", shards),
        ]),
    ))
}

/// Forwards one shard's sub-batch; on transport failure, degrades to
/// per-id solves against recorded replicas.
fn scatter_group(
    cluster: &ClusterState,
    node_id: usize,
    addr: &str,
    doc: &Json,
    group_ids: &[String],
) -> Vec<Json> {
    let body = replace_ids(doc, group_ids);
    if let Some(response) = try_forward(cluster, node_id, addr, "POST", "/solve_batch", Some(&body))
    {
        if let Ok(shard_doc) = Json::parse(&response.body) {
            if let Some(solutions) = shard_doc.get("solutions").and_then(Json::as_array) {
                if solutions.len() == group_ids.len() {
                    return solutions.to_vec();
                }
            }
        }
        let error = ApiError::shard_error(addr, "malformed /solve_batch response");
        return group_ids.iter().map(|_| error.to_json()).collect();
    }
    // The owner is down: solve each id against its replicas.
    let solve_body = without_ids(doc);
    group_ids
        .iter()
        .map(|id| {
            let Some(digest) = parse_digest(id) else {
                return ApiError::instance_not_found(id).to_json();
            };
            for replica_id in cluster.hot().replicas(digest).to_vec() {
                let Some((replica_addr, NodeState::Alive)) = node_info(cluster, replica_id) else {
                    continue;
                };
                if let Some(response) = try_forward(
                    cluster,
                    replica_id,
                    &replica_addr,
                    "POST",
                    &format!("/instances/{id}/solve"),
                    Some(&solve_body),
                ) {
                    if let Ok(doc) = Json::parse(&response.body) {
                        return doc;
                    }
                }
            }
            ApiError::shard_unavailable(id).to_json()
        })
        .collect()
}

/// The sub-batch body for one shard: the original request with `ids`
/// replaced by the shard's subset (solve fields pass through untouched,
/// so shards solve under exactly the client's configuration).
fn replace_ids(doc: &Json, ids: &[String]) -> String {
    let mut out = doc.clone();
    if let Json::Obj(pairs) = &mut out {
        for (key, value) in pairs.iter_mut() {
            if key == "ids" {
                *value = Json::arr(ids.iter().map(|id| Json::from(id.as_str())));
            }
        }
    }
    out.compact()
}

/// The solve-fields-only body (for per-id replica fallback).
fn without_ids(doc: &Json) -> String {
    let mut out = doc.clone();
    if let Json::Obj(pairs) = &mut out {
        pairs.retain(|(key, _)| key != "ids");
    }
    out.compact()
}

/// `GET /cluster/status`: role, registry, and replication gauges. On a
/// non-coordinator this reports `role: "single"` with no nodes, so the
/// CLI's `ukc cluster status` works against any server.
pub(crate) fn status(state: &AppState) -> Handled {
    let Some(cluster) = state.cluster() else {
        return Ok((
            200,
            Json::obj([
                ("role", Json::from("single")),
                ("nodes", Json::arr(std::iter::empty::<Json>())),
            ]),
        ));
    };
    let nodes = cluster.registry().to_wire();
    let (threshold, tracked, replicated) = {
        let hot = cluster.hot();
        (hot.threshold(), hot.tracked(), hot.replicated())
    };
    Ok((
        200,
        Json::obj([
            ("role", Json::from("coordinator")),
            ("nodes", Json::arr(nodes.iter().map(JsonNode::to_json))),
            (
                "replication",
                Json::obj([
                    ("threshold", Json::from(threshold as usize)),
                    ("tracked", Json::from(tracked)),
                    ("replicated", Json::from(replicated)),
                ]),
            ),
        ]),
    ))
}

/// `POST /cluster/nodes` — `{"addr": "host:port"}`: register a shard by
/// splitting the widest range. Only digests in the stolen half move.
pub(crate) fn node_add(state: &AppState, request: &Request) -> Handled {
    let Some(cluster) = state.cluster() else {
        return Err(ApiError::not_coordinator());
    };
    let doc = api::parse_body(&request.body)?;
    let addr = doc
        .get("addr")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("bad_schema", "missing string field \"addr\""))?;
    let node = {
        let mut registry = cluster.registry();
        let id = registry.add(addr).map_err(ApiError::from)?;
        registry
            .node(id)
            .expect("the node was just added")
            .to_wire()
    };
    Ok((201, Json::obj([("node", node.to_json())])))
}

/// `DELETE /cluster/nodes/{id}`: deregister a shard. Its range merges
/// into the adjacent neighbor — only the removed range is reassigned —
/// and its replica records are dropped with it.
pub(crate) fn node_remove(state: &AppState, id: &str) -> Handled {
    let Some(cluster) = state.cluster() else {
        return Err(ApiError::not_coordinator());
    };
    let node_id: usize = id.parse().map_err(|_| ApiError::node_not_found(id))?;
    let (start, end, heir) = cluster.registry().remove(node_id).map_err(ApiError::from)?;
    cluster.hot().forget_node(node_id);
    Ok((
        200,
        Json::obj([
            ("removed", Json::from(node_id)),
            (
                "reassigned",
                Json::obj([
                    ("prefix_start", Json::from(start as usize)),
                    ("prefix_end", Json::from(end as usize)),
                    ("heir", Json::from(heir)),
                ]),
            ),
        ]),
    ))
}
