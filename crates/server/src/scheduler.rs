//! The solve scheduler: coalesces concurrent requests into batch waves.
//!
//! Connection threads do no solving. They submit a `Job` over an
//! `mpsc` channel and block on a reply channel; a single long-lived
//! dispatcher thread drains the queue into a **wave** (everything
//! currently pending, up to [`MAX_WAVE`]), groups the wave by
//! [`SolverConfig`], deduplicates identical `(digest, config)` jobs, and
//! runs each group through [`ukc_core::solve_batch_threads`] with the
//! configured lane cap. Duplicates get clones of the one computed
//! solution — N identical concurrent requests cost one solve.
//!
//! Waves execute on the process-wide [`ukc_pool::global`] worker pool —
//! the same pool each solve's intra-solve kernels draw on — so wave
//! fan-out and per-solve parallelism cooperate under one fixed worker
//! set instead of oversubscribing the host. `workers` is therefore a
//! *lane cap*, not a thread count: it bounds how many pool lanes one
//! wave may occupy.
//!
//! The queue has a **bounded depth** (`queue_cap`): a submission that
//! would push the number of accepted-but-unanswered jobs past the cap is
//! rejected up front with [`SubmitError::Overloaded`] — the server turns
//! that into a typed `503 overloaded` with a `Retry-After` header.
//! Rejection happens before the job is enqueued, so a rejected request
//! has no side effects and is always safe to retry.
//!
//! Determinism is load-bearing: `solve_batch_threads` is bit-identical
//! to the sequential loop, so batching, coalescing, and pool scheduling
//! can never leak into a response — a client observes exactly what
//! `Problem::solve` would have returned.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::metrics::Metrics;
use ukc_core::{solve_batch_threads, Problem, Solution, SolveError, SolverConfig};
use ukc_metric::Point;

/// Hard ceiling on jobs per wave (backpressure: later jobs wait for the
/// next wave, they are never dropped).
pub const MAX_WAVE: usize = 256;

/// Why a submission was refused before it was enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The scheduler has shut down (the server is stopping).
    ShuttingDown,
    /// The bounded queue is full; the job was never enqueued.
    Overloaded {
        /// Accepted-but-unanswered jobs at rejection time.
        depth: usize,
        /// The configured queue capacity.
        cap: usize,
    },
}

/// One queued solve request.
struct Job {
    problem: Problem<Point>,
    config: SolverConfig,
    digest: u64,
    /// `Some((base_digest, prior))` for a warm-started solve: the prior
    /// solution to chain from, tagged with its instance digest. Warm jobs
    /// coalesce only with warm jobs of the same `(digest, base)` — a warm
    /// result may legitimately differ from the cold solve of the same
    /// problem, so the two must never share one computation.
    warm: Option<(u64, Arc<Solution<Point>>)>,
    reply: mpsc::Sender<Result<Solution<Point>, SolveError>>,
}

/// The scheduler handle shared by all connection threads.
pub struct Scheduler {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    workers: usize,
    queue_cap: usize,
    depth: Arc<AtomicUsize>,
    metrics: Arc<Metrics>,
}

impl Scheduler {
    /// Starts the dispatcher. `workers` is the pool-lane cap handed to
    /// [`solve_batch_threads`] per wave (0 and 1 both mean sequential);
    /// `queue_cap` bounds accepted-but-unanswered jobs (`usize::MAX` is
    /// unbounded — the historical behavior; `0` rejects every solve).
    pub fn new(workers: usize, queue_cap: usize, metrics: Arc<Metrics>) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let depth = Arc::new(AtomicUsize::new(0));
        let dispatcher = {
            let depth = Arc::clone(&depth);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("ukc-dispatch".into())
                .spawn(move || dispatch_loop(rx, workers, depth, metrics))
                .expect("spawning the dispatcher thread")
        };
        Scheduler {
            tx: Mutex::new(Some(tx)),
            dispatcher: Mutex::new(Some(dispatcher)),
            workers,
            queue_cap,
            depth,
            metrics,
        }
    }

    /// The per-wave worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured queue-depth bound.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Accepted-but-unanswered jobs right now (a racy monitoring gauge).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Atomically reserves `n` queue slots, or reports the overload.
    fn reserve(&self, n: usize) -> Result<(), SubmitError> {
        let outcome = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                if d.saturating_add(n) > self.queue_cap {
                    None
                } else {
                    Some(d + n)
                }
            });
        match outcome {
            Ok(_) => Ok(()),
            Err(depth) => {
                self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded {
                    depth,
                    cap: self.queue_cap,
                })
            }
        }
    }

    /// Releases reserved slots that will never reach the dispatcher.
    fn release(&self, n: usize) {
        self.depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// Submits one solve and blocks for its result. The outer error
    /// means the job never ran (queue full or shutdown — the caller
    /// should answer 503); the inner result is the solve's own outcome.
    pub fn solve(
        &self,
        problem: Problem<Point>,
        config: SolverConfig,
        digest: u64,
    ) -> Result<Result<Solution<Point>, SolveError>, SubmitError> {
        self.submit(vec![(problem, config, digest, None)])
            .map(|mut results| results.pop().expect("one job yields one result"))
    }

    /// Submits one warm-started solve chained from `prior` (whose source
    /// instance has digest `base_digest`) and blocks for its result. The
    /// solve goes through [`ukc_core::Solution::warm_start`], so an
    /// unusable prior degrades to a cold solve with a typed
    /// `report.warm.fallback` — never an error. Warm jobs ride the same
    /// bounded queue and wave loop as cold ones but only coalesce with
    /// warm jobs of the same `(digest, base)`.
    pub fn solve_warm(
        &self,
        problem: Problem<Point>,
        config: SolverConfig,
        digest: u64,
        base_digest: u64,
        prior: Arc<Solution<Point>>,
    ) -> Result<Result<Solution<Point>, SolveError>, SubmitError> {
        self.submit(vec![(problem, config, digest, Some((base_digest, prior)))])
            .map(|mut results| results.pop().expect("one job yields one result"))
    }

    /// Submits a batch of solves and blocks for all results, in job
    /// order. All jobs are enqueued before the first result is awaited,
    /// so a batch submitted by one thread lands in one wave and fans out
    /// across the pool — this is what `POST /solve_batch` rides on. The
    /// whole batch is admitted or rejected atomically against the queue
    /// bound.
    pub fn solve_many(
        &self,
        jobs: Vec<(Problem<Point>, SolverConfig, u64)>,
    ) -> Result<Vec<Result<Solution<Point>, SolveError>>, SubmitError> {
        self.submit(
            jobs.into_iter()
                .map(|(problem, config, digest)| (problem, config, digest, None))
                .collect(),
        )
    }

    /// The shared submission path: enqueue every job (cold or warm),
    /// then await all replies in order.
    #[allow(clippy::type_complexity)]
    fn submit(
        &self,
        jobs: Vec<(
            Problem<Point>,
            SolverConfig,
            u64,
            Option<(u64, Arc<Solution<Point>>)>,
        )>,
    ) -> Result<Vec<Result<Solution<Point>, SolveError>>, SubmitError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        self.reserve(jobs.len())?;
        let mut replies = Vec::with_capacity(jobs.len());
        {
            let guard = self.tx.lock().expect("scheduler submit lock poisoned");
            let Some(tx) = guard.as_ref() else {
                self.release(jobs.len());
                return Err(SubmitError::ShuttingDown);
            };
            let total = jobs.len();
            for (problem, config, digest, warm) in jobs {
                let (reply_tx, reply_rx) = mpsc::channel();
                if tx
                    .send(Job {
                        problem,
                        config,
                        digest,
                        warm,
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    // Enqueued jobs are drained (and released) by the
                    // dispatcher; only the unsent remainder is ours.
                    self.release(total - replies.len());
                    return Err(SubmitError::ShuttingDown);
                }
                replies.push(reply_rx);
            }
        }
        replies
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| SubmitError::ShuttingDown))
            .collect()
    }

    /// Stops accepting work and joins the dispatcher after it drains the
    /// queue. Idempotent.
    pub fn shutdown(&self) {
        drop(
            self.tx
                .lock()
                .expect("scheduler submit lock poisoned")
                .take(),
        );
        if let Some(handle) = self
            .dispatcher
            .lock()
            .expect("scheduler join lock poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(
    rx: mpsc::Receiver<Job>,
    workers: usize,
    depth: Arc<AtomicUsize>,
    metrics: Arc<Metrics>,
) {
    loop {
        // Block for the first job; every sender gone means shutdown.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut jobs = vec![first];
        while jobs.len() < MAX_WAVE {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        let answered = jobs.len();
        run_wave(jobs, workers, &metrics);
        depth.fetch_sub(answered, Ordering::Relaxed);
    }
}

/// Executes one wave: group by config, dedupe by digest, batch-solve,
/// fan results back out.
fn run_wave(jobs: Vec<Job>, workers: usize, metrics: &Metrics) {
    metrics
        .waves
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    metrics
        .wave_jobs
        .fetch_add(jobs.len() as u64, std::sync::atomic::Ordering::Relaxed);

    // Group job indices by configuration (configs are small and few per
    // wave; linear scan keeps SolverConfig free of Hash requirements).
    let mut groups: Vec<(SolverConfig, Vec<usize>)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match groups.iter_mut().find(|(cfg, _)| *cfg == job.config) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((job.config.clone(), vec![i])),
        }
    }

    let mut coalesced = 0u64;
    let mut fanned_out = false;
    for (config, idxs) in groups {
        // Deduplicate identical problems inside the group: the digest is
        // canonical content identity, so equal digests get one solve.
        // Warm jobs carry the base digest in the key — a warm solve may
        // legitimately differ from the cold solve of the same problem
        // (and from a warm solve off a different prior), so only exact
        // `(digest, base)` matches coalesce.
        let mut unique: Vec<(u64, Option<u64>, usize)> = Vec::new(); // (digest, base, representative)
        let mut job_to_unique: Vec<usize> = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let base = jobs[i].warm.as_ref().map(|(b, _)| *b);
            match unique
                .iter()
                .position(|&(d, b, _)| d == jobs[i].digest && b == base)
            {
                Some(u) => {
                    coalesced += 1;
                    job_to_unique.push(u);
                }
                None => {
                    unique.push((jobs[i].digest, base, i));
                    job_to_unique.push(unique.len() - 1);
                }
            }
        }
        // Cold uniques batch through the pool; warm uniques each chain
        // from their own prior, so they solve individually.
        let mut cold_slots: Vec<usize> = Vec::new();
        let mut problems: Vec<Problem<Point>> = Vec::new();
        for (u, &(_, _, i)) in unique.iter().enumerate() {
            if jobs[i].warm.is_none() {
                cold_slots.push(u);
                problems.push(jobs[i].problem.clone());
            }
        }
        // A group fans out on the pool only when more than one unique
        // problem meets more than one lane *and* the pool has workers to
        // claim chunks (a 0-worker pool degrades to the inline loop).
        fanned_out |= workers > 1 && problems.len() > 1 && ukc_pool::global().workers() > 0;
        let cold_results = solve_batch_threads(&problems, &config, workers);
        let mut slots: Vec<Option<Result<Solution<Point>, SolveError>>> =
            (0..unique.len()).map(|_| None).collect();
        for (u, result) in cold_slots.into_iter().zip(cold_results) {
            slots[u] = Some(result);
        }
        for (u, &(_, _, i)) in unique.iter().enumerate() {
            if let Some((_, prior)) = &jobs[i].warm {
                slots[u] = Some(Solution::warm_start(&jobs[i].problem, &config, prior));
            }
        }
        let results: Vec<Result<Solution<Point>, SolveError>> = slots
            .into_iter()
            .map(|slot| slot.expect("every unique job was solved"))
            .collect();
        for result in &results {
            match result {
                Ok(solution) => {
                    metrics.record_solve(&solution.report, config.kernel(), config.assignment())
                }
                Err(_) => metrics.record_solve_error(),
            }
        }
        for (&i, &u) in idxs.iter().zip(&job_to_unique) {
            // A dead reply channel just means the client hung up.
            let _ = jobs[i].reply.send(results[u].clone());
        }
    }
    metrics
        .coalesced_jobs
        .fetch_add(coalesced, std::sync::atomic::Ordering::Relaxed);
    // At most one pool-wave tick per wave, however many config groups it
    // split into.
    if fanned_out {
        metrics
            .pool_waves
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_uncertain::generators::{clustered, ProbModel};

    fn problem(seed: u64) -> Problem<Point> {
        let set = clustered(seed, 12, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        Problem::euclidean(set, 2).unwrap()
    }

    #[test]
    fn results_match_direct_solves_bit_for_bit() {
        let metrics = Arc::new(Metrics::new());
        let scheduler = Arc::new(Scheduler::new(2, usize::MAX, Arc::clone(&metrics)));
        let config = SolverConfig::default();
        let mut handles = Vec::new();
        for seed in 0..8u64 {
            let scheduler = Arc::clone(&scheduler);
            let config = config.clone();
            handles.push(std::thread::spawn(move || {
                let p = problem(seed);
                let digest = p.instance_digest();
                (seed, scheduler.solve(p, config, digest).unwrap().unwrap())
            }));
        }
        for handle in handles {
            let (seed, served) = handle.join().unwrap();
            let direct = problem(seed).solve(&config).unwrap();
            assert_eq!(served.ecost.to_bits(), direct.ecost.to_bits());
            assert_eq!(served.assignment, direct.assignment);
            assert_eq!(served.centers.len(), direct.centers.len());
            for (a, b) in served.centers.iter().zip(&direct.centers) {
                assert_eq!(a.coords(), b.coords());
            }
        }
    }

    #[test]
    fn typed_errors_come_back_through_the_queue() {
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::new(1, usize::MAX, metrics);
        let p = problem(3);
        let digest = p.instance_digest();
        // EP rule is undefined on discrete problems; build one.
        let set = clustered(3, 6, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
        let pool = set.location_pool();
        let discrete = Problem::in_metric(set, 2, ukc_metric::Euclidean, pool).unwrap();
        let d2 = discrete.instance_digest();
        let err = scheduler
            .solve(discrete, SolverConfig::default(), d2)
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, SolveError::RuleUnsupported { .. }));
        // The scheduler is still alive afterwards.
        assert!(scheduler
            .solve(p, SolverConfig::default(), digest)
            .unwrap()
            .is_ok());
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let scheduler = Scheduler::new(1, usize::MAX, Arc::new(Metrics::new()));
        scheduler.shutdown();
        let p = problem(1);
        let digest = p.instance_digest();
        assert_eq!(
            scheduler
                .solve(p, SolverConfig::default(), digest)
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        scheduler.shutdown(); // idempotent
    }

    #[test]
    fn solve_many_answers_in_order_in_one_submission() {
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::new(2, usize::MAX, Arc::clone(&metrics));
        let config = SolverConfig::default();
        let jobs: Vec<_> = (0..6u64)
            .map(|seed| {
                let p = problem(seed);
                let digest = p.instance_digest();
                (p, config.clone(), digest)
            })
            .collect();
        let results = scheduler.solve_many(jobs).unwrap();
        assert_eq!(results.len(), 6);
        for (seed, served) in results.iter().enumerate() {
            let direct = problem(seed as u64).solve(&config).unwrap();
            let served = served.as_ref().unwrap();
            assert_eq!(served.ecost.to_bits(), direct.ecost.to_bits());
            assert_eq!(served.assignment, direct.assignment);
        }
        // Depth settles back to zero once everything is answered.
        assert_eq!(scheduler.depth(), 0);
        assert_eq!(scheduler.solve_many(Vec::new()).unwrap().len(), 0);
    }

    #[test]
    fn warm_jobs_chain_from_the_prior_and_match_direct_warm_starts() {
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::new(2, usize::MAX, Arc::clone(&metrics));
        let config = SolverConfig::default();
        // Build a base instance and its grown successor (same prefix).
        let base_set = clustered(11, 40, 3, 2, 3, 30.0, 1.0, ProbModel::Random);
        let mut points = base_set.points().to_vec();
        let grown_source = clustered(99, 4, 3, 2, 2, 30.0, 1.0, ProbModel::Random);
        points.extend(grown_source.points().iter().cloned());
        let base_problem = Problem::euclidean(
            ukc_uncertain::UncertainSet::new(base_set.points().to_vec()),
            3,
        )
        .unwrap();
        let grown_problem =
            Problem::euclidean(ukc_uncertain::UncertainSet::new(points), 3).unwrap();
        let base_digest = base_problem.instance_digest();
        let digest = grown_problem.instance_digest();

        let prior = Arc::new(base_problem.solve(&config).unwrap());
        let served = scheduler
            .solve_warm(
                grown_problem.clone(),
                config.clone(),
                digest,
                base_digest,
                Arc::clone(&prior),
            )
            .unwrap()
            .unwrap();
        let direct = Solution::warm_start(&grown_problem, &config, &prior).unwrap();
        assert_eq!(served.ecost.to_bits(), direct.ecost.to_bits());
        assert_eq!(served.assignment, direct.assignment);
        let warm = served.report.warm.as_ref().expect("warm stats present");
        assert_eq!(
            warm.fallback,
            direct.report.warm.as_ref().unwrap().fallback,
            "scheduler must not change the warm outcome"
        );
        // A cold solve of the same digest is a distinct computation: its
        // report carries no warm stats.
        let cold = scheduler
            .solve(grown_problem, config, digest)
            .unwrap()
            .unwrap();
        assert!(cold.report.warm.is_none());
    }

    #[test]
    fn zero_cap_rejects_everything_as_overloaded() {
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::new(1, 0, Arc::clone(&metrics));
        let p = problem(2);
        let digest = p.instance_digest();
        let err = scheduler
            .solve(p, SolverConfig::default(), digest)
            .unwrap_err();
        assert_eq!(err, SubmitError::Overloaded { depth: 0, cap: 0 });
        assert_eq!(
            metrics
                .overloaded
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(scheduler.depth(), 0);
    }
}
