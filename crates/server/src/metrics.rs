//! The ops surface: lock-free counters behind `/metrics`.
//!
//! Everything is a relaxed [`AtomicU64`] — counters are monotonically
//! increasing and read racily by `/metrics`, which is fine for
//! monitoring. Solve instrumentation aggregates the per-solve
//! [`Report`]s (stage timings and distance evaluations) so the dashboard
//! shows where server time actually goes without re-profiling.

use std::sync::atomic::{AtomicU64, Ordering};

use ukc_core::{AssignmentMode, Report};
use ukc_json::Json;
use ukc_metric::Kernel;
use ukc_pool::PoolStats;

/// Route labels, one counter slot each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /instances`
    InstanceCreate,
    /// `GET /instances`
    InstanceList,
    /// `GET /instances/{id}`
    InstanceGet,
    /// `DELETE /instances/{id}`
    InstanceDelete,
    /// `POST /instances/{id}/solve`
    InstanceSolve,
    /// `POST /instances/{id}/append`
    InstanceAppend,
    /// `POST /instances/{id}/solve_loo`
    InstanceSolveLoo,
    /// `POST /solve`
    OneShotSolve,
    /// `POST /streams`
    StreamCreate,
    /// `GET /streams`
    StreamList,
    /// `GET /streams/{id}`
    StreamGet,
    /// `DELETE /streams/{id}`
    StreamDelete,
    /// `POST /streams/{id}/push`
    StreamPush,
    /// `GET /streams/{id}/solution`
    StreamSolution,
    /// `POST /solve_batch`
    SolveBatch,
    /// `POST /replicate` (internal: coordinator-pushed hot copies)
    Replicate,
    /// `GET /cluster/status`
    ClusterStatus,
    /// `POST /cluster/nodes`
    ClusterNodeAdd,
    /// `DELETE /cluster/nodes/{id}`
    ClusterNodeRemove,
    /// Anything that matched no route, or a real route with a method it
    /// does not support.
    Unmatched,
}

const ROUTES: [(Route, &str); 22] = [
    (Route::Healthz, "healthz"),
    (Route::Metrics, "metrics"),
    (Route::InstanceCreate, "instances_create"),
    (Route::InstanceList, "instances_list"),
    (Route::InstanceGet, "instances_get"),
    (Route::InstanceDelete, "instances_delete"),
    (Route::InstanceSolve, "instances_solve"),
    (Route::InstanceAppend, "instances_append"),
    (Route::InstanceSolveLoo, "instances_solve_loo"),
    (Route::OneShotSolve, "solve"),
    (Route::StreamCreate, "streams_create"),
    (Route::StreamList, "streams_list"),
    (Route::StreamGet, "streams_get"),
    (Route::StreamDelete, "streams_delete"),
    (Route::StreamPush, "streams_push"),
    (Route::StreamSolution, "streams_solution"),
    (Route::SolveBatch, "solve_batch"),
    (Route::Replicate, "replicate"),
    (Route::ClusterStatus, "cluster_status"),
    (Route::ClusterNodeAdd, "cluster_nodes_add"),
    (Route::ClusterNodeRemove, "cluster_nodes_remove"),
    (Route::Unmatched, "unmatched"),
];

fn route_slot(route: Route) -> usize {
    ROUTES
        .iter()
        .position(|(r, _)| *r == route)
        .expect("every route has a slot")
}

fn kernel_slot(kernel: Kernel) -> usize {
    Kernel::ALL
        .iter()
        .position(|k| *k == kernel)
        .expect("every kernel has a slot")
}

fn assignment_slot(assignment: AssignmentMode) -> usize {
    AssignmentMode::ALL
        .iter()
        .position(|a| *a == assignment)
        .expect("every assignment mode has a slot")
}

/// All server counters.
#[derive(Default)]
pub struct Metrics {
    requests_by_route: [AtomicU64; ROUTES.len()],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// Solve requests answered from the cache.
    pub cache_hits: AtomicU64,
    /// Solve requests that had to compute.
    pub cache_misses: AtomicU64,
    /// Scheduler waves executed.
    pub waves: AtomicU64,
    /// Waves whose batch actually fanned out on the shared worker pool
    /// (more than one unique job and more than one lane configured).
    pub pool_waves: AtomicU64,
    /// Jobs carried by those waves (jobs/waves = achieved batching).
    pub wave_jobs: AtomicU64,
    /// Duplicate jobs coalesced inside waves (served one solve, many replies).
    pub coalesced_jobs: AtomicU64,
    /// Submissions rejected because the bounded queue was full.
    pub overloaded: AtomicU64,
    solves_ok: AtomicU64,
    solves_err: AtomicU64,
    /// Solves that went through the warm-start path (whether the warm
    /// certificate held or the solve fell back cold).
    warm_solves: AtomicU64,
    /// Distance evaluations the warm path avoided versus the cold
    /// estimate, summed over successful warm solves.
    warm_evals_saved: AtomicU64,
    /// Warm-start attempts that degraded to a cold solve (typed
    /// `report.warm.fallback` present).
    warm_fallback_cold: AtomicU64,
    solve_nanos: AtomicU64,
    representatives_nanos: AtomicU64,
    certain_solve_nanos: AtomicU64,
    assignment_nanos: AtomicU64,
    cost_nanos: AtomicU64,
    lower_bound_nanos: AtomicU64,
    distance_evals: AtomicU64,
    /// Per-kernel solve counts, one slot per [`Kernel::ALL`] entry.
    kernel_solves: [AtomicU64; Kernel::ALL.len()],
    /// Per-kernel aggregate wall time spent in solves, same slot order.
    kernel_nanos: [AtomicU64; Kernel::ALL.len()],
    /// Per-assignment-mode solve counts, one slot per
    /// [`AssignmentMode::ALL`] entry.
    assignment_solves: [AtomicU64; AssignmentMode::ALL.len()],
    /// Per-assignment-mode aggregate wall time, same slot order.
    assignment_nanos_by_mode: [AtomicU64; AssignmentMode::ALL.len()],
    /// Stream pushes accepted into a bounded ingest queue.
    pub ingest_accepted: AtomicU64,
    /// Stream pushes rejected because the per-stream ingest queue was
    /// full (typed `429 ingest_overloaded` with `Retry-After`).
    pub ingest_rejected: AtomicU64,
    /// Stream-solution reads served from the epoch cached inside the
    /// staleness budget (no new snapshot/solve ran).
    pub stale_served: AtomicU64,
}

fn add(counter: &AtomicU64, v: u64) {
    counter.fetch_add(v, Ordering::Relaxed);
}

fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a request against its route.
    pub fn record_request(&self, route: Route) {
        add(&self.requests_by_route[route_slot(route)], 1);
    }

    /// Counts a response by status class.
    pub fn record_response(&self, status: u16) {
        match status {
            200..=299 => add(&self.responses_2xx, 1),
            400..=499 => add(&self.responses_4xx, 1),
            _ => add(&self.responses_5xx, 1),
        }
    }

    /// Folds one successful solve's [`Report`] into the aggregates,
    /// attributed to the distance kernel the solve ran under. Warm-start
    /// solves land in the same per-kernel slots as cold ones (the warm
    /// path runs on the same kernel) and additionally feed the
    /// `solves.warm` counters from [`Report::warm`].
    pub fn record_solve(&self, report: &Report, kernel: Kernel, assignment: AssignmentMode) {
        add(&self.solves_ok, 1);
        if let Some(warm) = &report.warm {
            add(&self.warm_solves, 1);
            add(&self.warm_evals_saved, warm.evals_saved);
            if warm.fallback.is_some() {
                add(&self.warm_fallback_cold, 1);
            }
        }
        let nanos = |d: std::time::Duration| d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let slot = kernel_slot(kernel);
        add(&self.kernel_solves[slot], 1);
        add(&self.kernel_nanos[slot], nanos(report.timings.total));
        let a_slot = assignment_slot(assignment);
        add(&self.assignment_solves[a_slot], 1);
        add(
            &self.assignment_nanos_by_mode[a_slot],
            nanos(report.timings.total),
        );
        add(&self.solve_nanos, nanos(report.timings.total));
        add(
            &self.representatives_nanos,
            nanos(report.timings.representatives),
        );
        add(
            &self.certain_solve_nanos,
            nanos(report.timings.certain_solve),
        );
        add(&self.assignment_nanos, nanos(report.timings.assignment));
        add(&self.cost_nanos, nanos(report.timings.cost));
        add(&self.lower_bound_nanos, nanos(report.timings.lower_bound));
        add(&self.distance_evals, report.distance_evals.total());
    }

    /// Counts a solve that returned a typed error.
    pub fn record_solve_error(&self) {
        add(&self.solves_err, 1);
    }

    /// Counts a warm request whose base never resolved to a prior (the
    /// solve itself ran cold through the scheduler, so its report carried
    /// no [`ukc_core::WarmStats`] when it was recorded — the server
    /// stamps the fallback flag afterwards and accounts for it here).
    pub fn record_warm_fallback(&self) {
        add(&self.warm_solves, 1);
        add(&self.warm_fallback_cold, 1);
    }

    /// Cache hits so far (also readable in the `/metrics` document).
    pub fn cache_hit_count(&self) -> u64 {
        get(&self.cache_hits)
    }

    /// The `/metrics` document body (cache size/capacity, instance and
    /// stream counts, the shared worker pool's occupancy, and — when the
    /// server runs with `--data-dir` — the durability gauges are owned
    /// elsewhere and passed in; `durability: None` omits the section, so
    /// in-memory servers emit exactly the historical document).
    pub fn to_json(
        &self,
        cache_len: usize,
        cache_cap: usize,
        instances: usize,
        streams: usize,
        pool: PoolStats,
        durability: Option<Json>,
    ) -> Json {
        let secs = |c: &AtomicU64| Json::from(get(c) as f64 / 1e9);
        let hits = get(&self.cache_hits);
        let misses = get(&self.cache_misses);
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let mut doc = Json::obj([
            (
                "requests",
                Json::obj(ROUTES.iter().enumerate().map(|(i, (_, name))| {
                    (*name, Json::from(get(&self.requests_by_route[i]) as f64))
                })),
            ),
            (
                "responses",
                Json::obj([
                    ("2xx", Json::from(get(&self.responses_2xx) as f64)),
                    ("4xx", Json::from(get(&self.responses_4xx) as f64)),
                    ("5xx", Json::from(get(&self.responses_5xx) as f64)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", Json::from(hits as f64)),
                    ("misses", Json::from(misses as f64)),
                    ("hit_rate", Json::from(hit_rate)),
                    ("size", Json::from(cache_len)),
                    ("capacity", Json::from(cache_cap)),
                ]),
            ),
            (
                "scheduler",
                Json::obj([
                    ("waves", Json::from(get(&self.waves) as f64)),
                    ("wave_jobs", Json::from(get(&self.wave_jobs) as f64)),
                    (
                        "coalesced_jobs",
                        Json::from(get(&self.coalesced_jobs) as f64),
                    ),
                    ("overloaded", Json::from(get(&self.overloaded) as f64)),
                ]),
            ),
            (
                "pool",
                Json::obj([
                    ("workers", Json::from(pool.workers)),
                    ("busy", Json::from(pool.busy)),
                    ("queued_chunks", Json::from(pool.queued_chunks)),
                    ("tasks", Json::from(pool.tasks as f64)),
                    ("chunks", Json::from(pool.chunks as f64)),
                    ("waves", Json::from(get(&self.pool_waves) as f64)),
                ]),
            ),
            (
                "solves",
                Json::obj([
                    ("ok", Json::from(get(&self.solves_ok) as f64)),
                    ("errors", Json::from(get(&self.solves_err) as f64)),
                    (
                        "distance_evals",
                        Json::from(get(&self.distance_evals) as f64),
                    ),
                    (
                        "seconds",
                        Json::obj([
                            ("total", secs(&self.solve_nanos)),
                            ("representatives", secs(&self.representatives_nanos)),
                            ("certain_solve", secs(&self.certain_solve_nanos)),
                            ("assignment", secs(&self.assignment_nanos)),
                            ("cost", secs(&self.cost_nanos)),
                            ("lower_bound", secs(&self.lower_bound_nanos)),
                        ]),
                    ),
                    (
                        "warm",
                        Json::obj([
                            ("count", Json::from(get(&self.warm_solves) as f64)),
                            (
                                "evals_saved",
                                Json::from(get(&self.warm_evals_saved) as f64),
                            ),
                            (
                                "fallback_cold",
                                Json::from(get(&self.warm_fallback_cold) as f64),
                            ),
                        ]),
                    ),
                    (
                        "by_kernel",
                        Json::obj(Kernel::ALL.iter().enumerate().map(|(i, k)| {
                            (
                                k.name(),
                                Json::obj([
                                    ("count", Json::from(get(&self.kernel_solves[i]) as f64)),
                                    (
                                        "seconds",
                                        Json::from(get(&self.kernel_nanos[i]) as f64 / 1e9),
                                    ),
                                ]),
                            )
                        })),
                    ),
                    (
                        "by_assignment",
                        Json::obj(AssignmentMode::ALL.iter().enumerate().map(|(i, a)| {
                            (
                                a.name(),
                                Json::obj([
                                    ("count", Json::from(get(&self.assignment_solves[i]) as f64)),
                                    (
                                        "seconds",
                                        Json::from(
                                            get(&self.assignment_nanos_by_mode[i]) as f64 / 1e9,
                                        ),
                                    ),
                                ]),
                            )
                        })),
                    ),
                ]),
            ),
            (
                "ingest",
                Json::obj([
                    ("accepted", Json::from(get(&self.ingest_accepted) as f64)),
                    ("rejected", Json::from(get(&self.ingest_rejected) as f64)),
                    ("stale_served", Json::from(get(&self.stale_served) as f64)),
                ]),
            ),
            ("instances", Json::from(instances)),
            ("streams", Json::from(streams)),
        ]);
        if let (Json::Obj(pairs), Some(d)) = (&mut doc, durability) {
            pairs.push(("durability".into(), d));
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_the_document() {
        let m = Metrics::new();
        m.record_request(Route::Healthz);
        m.record_request(Route::InstanceSolve);
        m.record_request(Route::InstanceSolve);
        m.record_response(200);
        m.record_response(404);
        add(&m.cache_hits, 3);
        add(&m.cache_misses, 1);
        let doc = m.to_json(
            2,
            64,
            5,
            1,
            PoolStats {
                workers: 3,
                busy: 1,
                queued_chunks: 7,
                tasks: 11,
                chunks: 400,
            },
            None,
        );
        // No durability section without a durability layer — the
        // in-memory document is exactly the historical one.
        assert!(doc.get("durability").is_none());
        let req = doc.get("requests").unwrap();
        assert_eq!(req.get("healthz").and_then(Json::as_f64), Some(1.0));
        assert_eq!(req.get("instances_solve").and_then(Json::as_f64), Some(2.0));
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(3.0));
        assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(0.75));
        assert_eq!(cache.get("capacity").and_then(Json::as_f64), Some(64.0));
        assert_eq!(doc.get("instances").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("streams").and_then(Json::as_f64), Some(1.0));
        let pool = doc.get("pool").unwrap();
        assert_eq!(pool.get("workers").and_then(Json::as_f64), Some(3.0));
        assert_eq!(pool.get("busy").and_then(Json::as_f64), Some(1.0));
        assert_eq!(pool.get("queued_chunks").and_then(Json::as_f64), Some(7.0));
        assert_eq!(pool.get("chunks").and_then(Json::as_f64), Some(400.0));
        assert_eq!(pool.get("waves").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn solve_reports_aggregate() {
        let m = Metrics::new();
        let mut report = Report::default();
        report.timings.total = std::time::Duration::from_millis(3);
        report.distance_evals.cost = 40;
        m.record_solve(&report, Kernel::Blocked, AssignmentMode::Plain);
        m.record_solve(&report, Kernel::Tiled, AssignmentMode::AdditivelyWeighted);
        m.record_solve_error();
        // A durability document passes through under its key.
        let with_durability = m.to_json(
            0,
            0,
            0,
            0,
            PoolStats::default(),
            Some(Json::obj([("wal_bytes", Json::from(128.0))])),
        );
        assert_eq!(
            with_durability
                .get("durability")
                .and_then(|d| d.get("wal_bytes"))
                .and_then(Json::as_f64),
            Some(128.0)
        );
        let doc = m.to_json(0, 0, 0, 0, PoolStats::default(), None);
        let solves = doc.get("solves").unwrap();
        assert_eq!(solves.get("ok").and_then(Json::as_f64), Some(2.0));
        assert_eq!(solves.get("errors").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            solves.get("distance_evals").and_then(Json::as_f64),
            Some(80.0)
        );
        let total = solves
            .get("seconds")
            .and_then(|s| s.get("total"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((total - 0.006).abs() < 1e-9);
        let by_kernel = solves.get("by_kernel").unwrap();
        for kernel in Kernel::ALL {
            let entry = by_kernel.get(kernel.name()).unwrap();
            let expected = match kernel {
                Kernel::Scalar => 0.0,
                Kernel::Blocked | Kernel::Tiled => 1.0,
            };
            assert_eq!(entry.get("count").and_then(Json::as_f64), Some(expected));
            let seconds = entry.get("seconds").and_then(Json::as_f64).unwrap();
            assert!((seconds - expected * 0.003).abs() < 1e-9);
        }
        // One solve landed in each assignment-mode slot.
        let by_assignment = solves.get("by_assignment").unwrap();
        for mode in AssignmentMode::ALL {
            let entry = by_assignment.get(mode.name()).unwrap();
            assert_eq!(entry.get("count").and_then(Json::as_f64), Some(1.0));
            let seconds = entry.get("seconds").and_then(Json::as_f64).unwrap();
            assert!((seconds - 0.003).abs() < 1e-9);
        }
        // Ingest counters surface under their own section.
        add(&m.ingest_accepted, 5);
        add(&m.ingest_rejected, 2);
        add(&m.stale_served, 3);
        let doc = m.to_json(0, 0, 0, 0, PoolStats::default(), None);
        let ingest = doc.get("ingest").unwrap();
        assert_eq!(ingest.get("accepted").and_then(Json::as_f64), Some(5.0));
        assert_eq!(ingest.get("rejected").and_then(Json::as_f64), Some(2.0));
        assert_eq!(ingest.get("stale_served").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn warm_solves_feed_their_counters_and_still_count_by_kernel() {
        use ukc_core::WarmStats;
        let m = Metrics::new();
        let warm_report = Report {
            warm: Some(WarmStats {
                reused_centers: 4,
                evals_saved: 1000,
                stages_skipped: vec!["certain_solve"],
                fallback: None,
            }),
            ..Report::default()
        };
        let fell_back = Report {
            warm: Some(WarmStats {
                fallback: Some("prefix_mismatch"),
                ..WarmStats::default()
            }),
            ..Report::default()
        };
        m.record_solve(&warm_report, Kernel::Tiled, AssignmentMode::Plain);
        m.record_solve(&fell_back, Kernel::Tiled, AssignmentMode::Plain);
        m.record_solve(&Report::default(), Kernel::Tiled, AssignmentMode::Plain); // cold
        let doc = m.to_json(0, 0, 0, 0, PoolStats::default(), None);
        let solves = doc.get("solves").unwrap();
        let warm = solves.get("warm").unwrap();
        assert_eq!(warm.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(warm.get("evals_saved").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(warm.get("fallback_cold").and_then(Json::as_f64), Some(1.0));
        // Warm solves are attributed to the kernel they ran under, just
        // like cold solves.
        let tiled = solves
            .get("by_kernel")
            .and_then(|b| b.get(Kernel::Tiled.name()))
            .unwrap();
        assert_eq!(tiled.get("count").and_then(Json::as_f64), Some(3.0));
        // The new route label has its counter slot.
        m.record_request(Route::InstanceSolveLoo);
        let doc = m.to_json(0, 0, 0, 0, PoolStats::default(), None);
        assert_eq!(
            doc.get("requests")
                .and_then(|r| r.get("instances_solve_loo"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }
}
