//! The stream store: long-lived [`StreamSolver`]s behind server-assigned
//! IDs.
//!
//! Unlike instances — immutable uploads addressed by content digest —
//! streams are *mutable* state machines: every `POST /streams/{id}/push`
//! evolves the summary. IDs are therefore server-assigned sequence
//! numbers, not content digests; the content digest lives one level
//! down, as the summary's [`StreamSolver::digest`], and is what the
//! solution cache keys on — so identical stream states still share
//! cached solutions, and every push naturally invalidates the key.
//!
//! Each entry guards its solver with a [`Mutex`]: pushes are serialized
//! per stream (epoch order is part of the state), while distinct streams
//! evolve concurrently. Solution requests snapshot the summary under the
//! lock, then release it before entering the scheduler, so a slow solve
//! never blocks the stream's ingestion path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use ukc_core::Solution;
use ukc_metric::Point;
use ukc_stream::StreamSolver;

/// One stored stream.
pub struct StreamEntry {
    /// The server-assigned ID (`s` + hex sequence number).
    pub id: String,
    /// The raw sequence number behind the ID — what the durability layer
    /// keys WAL records and snapshots on.
    pub seq: u64,
    /// Whether solution requests may consult / fill the solution cache.
    pub use_cache: bool,
    /// The solver, serialized per stream.
    pub solver: Mutex<StreamSolver>,
    /// The last served solution, tagged with the stream digest it was
    /// computed for. The solution route serves an unchanged stream
    /// straight from this slot and warm-starts the solve of an evolved
    /// one from it (the previous epoch's centers are the natural prior).
    /// Purely an in-memory accelerator: recovery leaves it `None` and
    /// the first post-restart solution request re-solves cold.
    pub last_solution: Mutex<Option<(u64, Arc<Solution<Point>>)>>,
    /// The last fully-rendered solution response and when it was built.
    /// Only consulted when the server runs with a staleness budget
    /// (`--solve-staleness-ms`): reads inside the budget are answered
    /// from this slot with a `"stale": true` marker instead of paying a
    /// snapshot + solve per read. Like `last_solution`, purely an
    /// in-memory accelerator — recovery leaves it `None`.
    pub last_response: Mutex<Option<(std::time::Instant, ukc_json::Json)>>,
}

/// The `RwLock`-guarded stream map.
#[derive(Default)]
pub struct StreamStore {
    map: RwLock<HashMap<String, Arc<StreamEntry>>>,
    next: AtomicU64,
}

impl StreamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new stream and returns its entry.
    pub fn create(&self, solver: StreamSolver, use_cache: bool) -> Arc<StreamEntry> {
        let seq = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.insert(seq, solver, use_cache)
    }

    /// Re-registers a recovered stream under its original sequence
    /// number (and therefore its original ID), keeping the sequence
    /// counter ahead of every restored stream so new creations never
    /// collide.
    pub fn restore(&self, seq: u64, solver: StreamSolver, use_cache: bool) -> Arc<StreamEntry> {
        self.next.fetch_max(seq, Ordering::Relaxed);
        self.insert(seq, solver, use_cache)
    }

    fn insert(&self, seq: u64, solver: StreamSolver, use_cache: bool) -> Arc<StreamEntry> {
        let id = format!("s{seq:06x}");
        let entry = Arc::new(StreamEntry {
            id: id.clone(),
            seq,
            use_cache,
            solver: Mutex::new(solver),
            last_solution: Mutex::new(None),
            last_response: Mutex::new(None),
        });
        self.map
            .write()
            .expect("stream store lock poisoned")
            .insert(id, Arc::clone(&entry));
        entry
    }

    /// Fetches a stream by ID.
    pub fn get(&self, id: &str) -> Option<Arc<StreamEntry>> {
        self.map
            .read()
            .expect("stream store lock poisoned")
            .get(id)
            .cloned()
    }

    /// Deletes a stream, returning its entry so the caller can tombstone
    /// its durable state and evict its cached solutions. In-flight
    /// requests holding the `Arc` finish normally.
    pub fn remove(&self, id: &str) -> Option<Arc<StreamEntry>> {
        self.map
            .write()
            .expect("stream store lock poisoned")
            .remove(id)
    }

    /// All streams, sorted by ID for stable listings.
    pub fn list(&self) -> Vec<Arc<StreamEntry>> {
        let mut all: Vec<_> = self
            .map
            .read()
            .expect("stream store lock poisoned")
            .values()
            .cloned()
            .collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.map.read().expect("stream store lock poisoned").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_core::SolverConfig;

    fn solver() -> StreamSolver {
        StreamSolver::new(2, SolverConfig::default()).expect("k > 0")
    }

    #[test]
    fn create_get_list_remove() {
        let store = StreamStore::new();
        let a = store.create(solver(), true);
        let b = store.create(solver(), false);
        assert_ne!(a.id, b.id);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&a.id).unwrap().id, a.id);
        let listed: Vec<String> = store.list().iter().map(|e| e.id.clone()).collect();
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
        let removed = store.remove(&a.id).expect("a existed");
        assert_eq!(removed.id, a.id);
        assert!(store.remove(&a.id).is_none());
        assert!(store.get(&a.id).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ids_are_stable_and_prefixed() {
        let store = StreamStore::new();
        let e = store.create(solver(), true);
        assert!(e.id.starts_with('s'));
        assert_eq!(e.id, format!("s{:06x}", e.seq));
        assert!(e.use_cache);
    }

    #[test]
    fn restore_preserves_ids_and_advances_the_counter() {
        let store = StreamStore::new();
        let restored = store.restore(5, solver(), true);
        assert_eq!(restored.id, "s000005");
        assert_eq!(restored.seq, 5);
        // Fresh creations continue past the restored sequence numbers.
        let fresh = store.create(solver(), true);
        assert_eq!(fresh.seq, 6);
        assert_eq!(store.len(), 2);
    }
}
