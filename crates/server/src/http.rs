//! A minimal HTTP/1.1 request/response layer over `std::io`.
//!
//! The build environment has no registry access, so this is the smallest
//! honest subset of RFC 7230 the service needs: request line, headers,
//! `Content-Length` bodies, keep-alive, and hard limits (header and body
//! size) that fail as typed errors instead of unbounded allocation.
//! `Transfer-Encoding: chunked` is deliberately not implemented and is
//! rejected up front.

use std::io::{self, BufRead, Write};

/// Maximum bytes accepted for the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// The path, query string stripped.
    pub path: String,
    /// The raw query string (the part after `?`, without the `?`), when
    /// the request target carried one.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter, by exact name. Parameters are
    /// `&`-separated `name=value` pairs; no percent-decoding is applied
    /// (the service's parameters — digests, flags — are plain
    /// token characters). A bare `name` with no `=` yields `Some("")`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (n, v) = pair.split_once('=').unwrap_or((pair, ""));
            (n == name).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Clone, Debug, PartialEq)]
pub enum HttpError {
    /// The connection closed cleanly before a request started.
    Closed,
    /// The bytes on the wire are not a well-formed HTTP/1.x request.
    BadRequest(String),
    /// The declared body exceeds the configured limit.
    PayloadTooLarge {
        /// The configured maximum body size in bytes.
        limit: usize,
        /// The declared `Content-Length`.
        declared: usize,
    },
    /// The socket failed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge { limit, declared } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one request, enforcing [`MAX_HEAD_BYTES`], `max_body`, and an
/// optional wall-clock `deadline` for the *whole* request (checked
/// between reads — a per-read socket timeout alone does not bound a
/// client trickling one byte per timeout window).
///
/// Returns [`HttpError::Closed`] when the peer closed the connection
/// between requests (the normal end of a keep-alive session).
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
    deadline: Option<std::time::Instant>,
) -> Result<Request, HttpError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, &mut head_bytes, deadline)? {
        None => return Err(HttpError::Closed),
        Some(line) if line.is_empty() => return Err(HttpError::BadRequest("empty request".into())),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line".into()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "bad request target {target:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_bytes, deadline)?
            .ok_or_else(|| HttpError::BadRequest("connection closed inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive: version == "HTTP/1.1",
    };
    match request.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => request.keep_alive = false,
        Some(c) if c == "keep-alive" => request.keep_alive = true,
        _ => {}
    }
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported; send Content-Length".into(),
        ));
    }
    if let Some(raw) = request.header("content-length") {
        let declared: usize = raw
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {raw:?}")))?;
        if declared > max_body {
            return Err(HttpError::PayloadTooLarge {
                limit: max_body,
                declared,
            });
        }
        // Read the body in chunks so the deadline is enforced even
        // against a sender trickling bytes (read_exact would reset the
        // per-read socket timeout on every byte).
        let mut body = vec![0u8; declared];
        let mut filled = 0usize;
        while filled < declared {
            check_deadline(deadline)?;
            let chunk = (declared - filled).min(64 * 1024);
            reader
                .read_exact(&mut body[filled..filled + chunk])
                .map_err(|e| HttpError::Io(e.to_string()))?;
            filled += chunk;
        }
        request.body = body;
    }
    Ok(request)
}

fn check_deadline(deadline: Option<std::time::Instant>) -> Result<(), HttpError> {
    match deadline {
        Some(d) if std::time::Instant::now() > d => {
            Err(HttpError::Io("request deadline exceeded".into()))
        }
        _ => Ok(()),
    }
}

/// Reads and discards up to `limit` pending body bytes, so an error
/// response written before consuming the body is not torn down by a TCP
/// reset on close (closing with unread data in the receive queue RSTs).
pub fn drain_body(reader: &mut impl BufRead, limit: usize) {
    let mut remaining = limit;
    while remaining > 0 {
        match reader.fill_buf() {
            Ok([]) | Err(_) => return,
            Ok(buf) => {
                let n = buf.len().min(remaining);
                reader.consume(n);
                remaining -= n;
            }
        }
    }
}

/// Reads one CRLF- (or LF-) terminated line, counting bytes against
/// [`MAX_HEAD_BYTES`]. `None` means EOF before any byte of the line.
fn read_line(
    reader: &mut impl BufRead,
    head_bytes: &mut usize,
    deadline: Option<std::time::Instant>,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        check_deadline(deadline)?;
        let buf = reader
            .fill_buf()
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("truncated header line".into()));
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        line.extend_from_slice(&buf[..chunk]);
        reader.consume(chunk);
        *head_bytes += chunk;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest(format!(
                "headers exceed {MAX_HEAD_BYTES} bytes"
            )));
        }
        if done {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            let text = String::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("non-utf8 header bytes".into()))?;
            return Ok(Some(text));
        }
    }
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON in this service).
    pub body: String,
    /// Extra headers beyond the standard set (`Retry-After`, ...).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            headers: Vec::new(),
        }
    }

    /// Adds a header to the response.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

/// The reason phrase for every status this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        502 => "Bad Gateway",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response, honoring keep-alive.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in &response.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), max_body, None)
    }

    #[test]
    fn parses_a_full_request() {
        let r = parse(
            "POST /instances HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/instances");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"body");
        assert!(r.keep_alive);
    }

    #[test]
    fn query_strings_are_stripped_and_connection_close_honored() {
        let r = parse(
            "GET /metrics?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(r.path, "/metrics");
        assert_eq!(r.query.as_deref(), Some("verbose=1"));
        assert_eq!(r.query_param("verbose"), Some("1"));
        assert_eq!(r.query_param("missing"), None);
        assert!(!r.keep_alive);
        // HTTP/1.0 defaults to close.
        let r = parse("GET / HTTP/1.0\r\n\r\n", 1024).unwrap();
        assert!(!r.keep_alive);
        assert_eq!(r.query, None);
    }

    #[test]
    fn query_params_split_on_ampersands_and_tolerate_bare_names() {
        let r = parse(
            "POST /instances/i1/solve?base=00ff&cache=0&flag HTTP/1.1\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(r.path, "/instances/i1/solve");
        assert_eq!(r.query_param("base"), Some("00ff"));
        assert_eq!(r.query_param("cache"), Some("0"));
        assert_eq!(r.query_param("flag"), Some(""));
        assert_eq!(r.query_param("bas"), None);
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            parse("nonsense\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10),
            Err(HttpError::PayloadTooLarge {
                limit: 10,
                declared: 99
            })
        );
        assert_eq!(parse("", 10), Err(HttpError::Closed));
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let r = parse("GET /healthz HTTP/1.1\nHost: y\n\n", 1024).unwrap();
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("y"));
    }

    #[test]
    fn expired_deadline_aborts_the_read() {
        let past = std::time::Instant::now() - std::time::Duration::from_secs(1);
        let result = read_request(
            &mut BufReader::new("GET / HTTP/1.1\r\n\r\n".as_bytes()),
            1024,
            Some(past),
        );
        assert!(matches!(result, Err(HttpError::Io(_))));
    }

    #[test]
    fn drain_body_consumes_up_to_limit() {
        let mut reader = BufReader::new("abcdefgh".as_bytes());
        drain_body(&mut reader, 5);
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        assert_eq!(rest, "fgh");
    }

    #[test]
    fn response_serializes_with_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_land_in_the_head() {
        let mut out = Vec::new();
        let response = Response::json(503, "{}".into()).with_header("Retry-After", "1");
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        // Headers stay inside the head: the blank line still separates.
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
