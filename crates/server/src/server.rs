//! The service itself: shared state, routing, handlers, and the TCP
//! accept loop.
//!
//! One thread per connection (connections are cheap; solves are the
//! expensive part and those are centralized in the
//! [`crate::scheduler::Scheduler`], so a thousand idle keep-alive
//! connections cannot oversubscribe the CPU). [`serve`] returns a
//! [`ServerHandle`] for embedding (tests, benches, examples);
//! [`serve_blocking`] runs the accept loop on the caller's thread for
//! the CLI.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::api::{self, SolveRequest};
use crate::cache::{LruCache, SolveKey};
use crate::error::ApiError;
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::{Metrics, Route};
use crate::persist::{self, RecoveryStats};
use crate::scheduler::Scheduler;
use crate::store::InstanceStore;
use crate::streams::StreamStore;
use ukc_core::{digest_hex, Problem, Solution, SolverConfig, WarmStats};
use ukc_durable::snapshot::Snapshot;
use ukc_durable::{DurableStore, StoreError};
use ukc_json::format::{solution_document, JsonInstance};
use ukc_json::Json;
use ukc_metric::Point;
use ukc_stream::StreamSolver;
use ukc_uncertain::{UncertainPoint, UncertainSet};

/// Tunables for one server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Pool-lane cap per solve wave (0 means one per available CPU /
    /// `UKC_THREADS`). Waves run on the process-wide [`ukc_pool::global`]
    /// pool, shared with each solve's intra-solve kernels, so this caps
    /// how many of the pool's lanes one wave may occupy — it does not
    /// spawn threads of its own.
    pub workers: usize,
    /// Solution-cache capacity in entries (0 disables the cache).
    pub cache_cap: usize,
    /// Default distance kernel for requests that do not carry an explicit
    /// `"kernel"` field (`ukc serve --kernel`). An explicit field always
    /// wins, and the kernel is part of the solution-cache key either way.
    pub kernel: ukc_metric::Kernel,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Durable persistence root (`ukc serve --data-dir`). `None` — the
    /// default — serves purely in memory, byte-identical to a server
    /// built before persistence existed.
    pub data_dir: Option<std::path::PathBuf>,
    /// Write a stream snapshot every this many pushed epochs (0 disables
    /// snapshots; recovery then replays the full WAL). Only meaningful
    /// with `data_dir` set.
    pub snapshot_interval: u64,
    /// Bound on queued solve jobs (`usize::MAX` means unbounded, 0
    /// rejects everything). A full queue answers `503 overloaded` with
    /// `Retry-After` instead of letting latency grow without bound.
    pub queue_cap: usize,
    /// Shard addresses (`ukc serve --shards a,b,...`). Non-empty turns
    /// this server into a **coordinator**: it stores no instances and
    /// digest-routes every instance request to the owning shard.
    pub shards: Vec<String>,
    /// Digest-routed reads before an instance is replicated to its
    /// owner's ring successor (0 disables replication).
    pub replicate_after: u64,
    /// Per-attempt timeout for requests the coordinator forwards.
    pub shard_timeout_ms: u64,
    /// Connect retries (with exponential backoff) per forwarded request.
    pub shard_retries: u32,
    /// Liveness probe period (0 disables the prober; forwarded requests
    /// still update liveness as a side effect).
    pub probe_interval_ms: u64,
    /// Bound on queued pushes *per stream* (`ukc serve
    /// --ingest-queue-cap`). Pushes are applied by a dedicated ingest
    /// worker that services streams round-robin; a stream whose queue is
    /// full answers `429 ingest_overloaded` with `Retry-After` instead of
    /// letting a burst grow push latency without bound. 0 rejects every
    /// push.
    pub ingest_queue_cap: usize,
    /// Staleness budget for stream solution reads in milliseconds (`ukc
    /// serve --solve-staleness-ms`). Within the budget, `GET
    /// /streams/{id}/solution` re-serves the last rendered response with
    /// a `"stale": true` marker instead of snapshotting and solving — so
    /// a high-rate read load pays at most one solve per budget window
    /// per stream. 0 (the default) disables the budget: every read
    /// observes the live stream state, exactly the pre-budget behavior.
    pub solve_staleness_ms: u64,
    /// Fault-injection knob: sleep this long in the ingest worker before
    /// applying each push. Only for tests and soak benches that need to
    /// fill the bounded ingest queue deterministically; leave at 0 (the
    /// default) in production.
    pub ingest_apply_delay_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_cap: 256,
            kernel: ukc_metric::Kernel::default(),
            max_body_bytes: 8 * 1024 * 1024,
            data_dir: None,
            snapshot_interval: 16,
            queue_cap: 4096,
            shards: Vec::new(),
            replicate_after: 3,
            shard_timeout_ms: 2000,
            shard_retries: 2,
            probe_interval_ms: 1000,
            ingest_queue_cap: 1024,
            solve_staleness_ms: 0,
            ingest_apply_delay_ms: 0,
        }
    }
}

/// Everything the handlers share.
pub(crate) struct AppState {
    store: InstanceStore,
    streams: StreamStore,
    cache: Mutex<LruCache<SolveKey, Arc<Solution<Point>>>>,
    /// The most recent solution per cold-shaped `(digest, config)` key —
    /// cold *or* warm. This is what `solve?base=` chains from: unlike
    /// the response cache (which must keep warm and cold results apart,
    /// they can differ bitwise), this map deliberately collapses them to
    /// "latest usable prior", so an append chain only ever pays the
    /// delta instead of re-solving each parent cold.
    priors: Mutex<LruCache<SolveKey, Arc<Solution<Point>>>>,
    cache_cap: usize,
    scheduler: Scheduler,
    metrics: Arc<Metrics>,
    max_body_bytes: usize,
    /// Server-wide default kernel applied to requests without an explicit
    /// `"kernel"` field.
    default_kernel: ukc_metric::Kernel,
    started: Instant,
    /// The durability layer, present only with `data_dir` configured.
    /// In-memory mode carries `None` and every persistence branch in the
    /// handlers is a single untaken `if` — zero overhead on the solve
    /// hot path.
    durable: Option<DurableStore>,
    snapshot_interval: u64,
    recovery: RecoveryStats,
    /// Coordinator mode, present only with `shards` configured. Like
    /// `durable`, a single-node server carries `None` and pays one
    /// untaken `if` per request.
    cluster: Option<crate::cluster::ClusterState>,
    /// The bounded per-stream push queue, drained round-robin by the
    /// ingest worker thread.
    ingest: crate::ingest::IngestQueue<PushJob>,
    /// Staleness budget for stream solution reads (zero disables it).
    solve_staleness: std::time::Duration,
    /// Fault-injection apply delay (zero outside tests/benches).
    ingest_apply_delay: std::time::Duration,
}

impl AppState {
    pub(crate) fn cluster(&self) -> Option<&crate::cluster::ClusterState> {
        self.cluster.as_ref()
    }

    fn new(config: &ServerConfig) -> Result<Self, StoreError> {
        let workers = if config.workers == 0 {
            ukc_pool::default_threads()
        } else {
            config.workers
        };
        let store = InstanceStore::new();
        let streams = StreamStore::new();
        let (durable, recovery) = match &config.data_dir {
            None => (None, RecoveryStats::default()),
            Some(dir) => {
                let (durable, recovered) = DurableStore::open(dir)?;
                let stats = persist::recover(dir, &recovered, &store, &streams, config.kernel)?;
                (Some(durable), stats)
            }
        };
        let metrics = Arc::new(Metrics::new());
        Ok(AppState {
            store,
            streams,
            cache: Mutex::new(LruCache::new(config.cache_cap)),
            // Priors are worth keeping even with the response cache
            // disabled (cache_cap 0): warm chaining is an algorithmic
            // path the client opts into with `base=`, not a cache hit.
            priors: Mutex::new(LruCache::new(config.cache_cap.max(64))),
            cache_cap: config.cache_cap,
            scheduler: Scheduler::new(workers, config.queue_cap, Arc::clone(&metrics)),
            metrics,
            max_body_bytes: config.max_body_bytes,
            default_kernel: config.kernel,
            started: Instant::now(),
            durable,
            snapshot_interval: config.snapshot_interval,
            recovery,
            cluster: crate::cluster::ClusterState::new(config),
            ingest: crate::ingest::IngestQueue::new(config.ingest_queue_cap),
            solve_staleness: std::time::Duration::from_millis(config.solve_staleness_ms),
            ingest_apply_delay: std::time::Duration::from_millis(config.ingest_apply_delay_ms),
        })
    }
}

/// One queued stream push: everything the ingest worker needs to apply
/// it, plus the reply slot the connection thread blocks on. Parsing and
/// stream lookup happen *before* enqueueing, so a queued job can only
/// fail on apply (solver or durability errors), and a rejected push
/// provably had no side effects.
pub(crate) struct PushJob {
    entry: Arc<crate::streams::StreamEntry>,
    chunk: UncertainSet<Point>,
    body: Vec<u8>,
    slot: Arc<ReplySlot>,
}

/// A one-shot rendezvous between a connection thread and the ingest
/// worker. The connection thread parks in [`ReplySlot::wait`] until the
/// worker applies its push and fills the slot — so the push route keeps
/// its synchronous contract (a `200` means applied, and on a durable
/// server fsync'd) while the *ordering* of applies belongs to the queue.
pub(crate) struct ReplySlot {
    result: Mutex<Option<Handled>>,
    cv: std::sync::Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot {
            result: Mutex::new(None),
            cv: std::sync::Condvar::new(),
        }
    }

    fn fill(&self, result: Handled) {
        *self.result.lock().expect("reply slot poisoned") = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Handled {
        let mut guard = self.result.lock().expect("reply slot poisoned");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.cv.wait(guard).expect("reply slot poisoned");
        }
    }
}

/// The ingest worker: drains the bounded queue round-robin (one push per
/// stream per rotation), applies each push, and wakes its submitter. On
/// shutdown, fails every still-pending push with `503` so no connection
/// thread is left parked.
fn ingest_worker(state: Arc<AppState>) {
    while let Some((stream, job)) = state.ingest.next() {
        if !state.ingest_apply_delay.is_zero() {
            std::thread::sleep(state.ingest_apply_delay);
        }
        let result = apply_stream_push(&state, &job.entry, job.chunk, &job.body);
        job.slot.fill(result);
        state.ingest.done(&stream);
    }
    for job in state.ingest.drain_all() {
        job.slot.fill(Err(ApiError::unavailable()));
    }
}

/// A running server, embeddable in tests/benches/examples.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    ingest: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, drains the scheduler, and joins the
    /// accept thread. In-flight connection threads finish their current
    /// response on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(cluster) = &self.state.cluster {
            cluster.stop();
        }
        // Stop admitting pushes, then join the worker: it drains the
        // queue, failing pending jobs so no connection thread stays
        // parked on a reply slot.
        self.state.ingest.shutdown();
        if let Some(handle) = self.ingest.take() {
            let _ = handle.join();
        }
        self.state.scheduler.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn store_io_err(e: StoreError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// Binds and serves in background threads, returning a handle. With
/// [`ServerConfig::data_dir`] set, opening includes recovery: the
/// instance store and every live stream are rebuilt from disk before the
/// first request is accepted.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(AppState::new(&config).map_err(store_io_err)?);
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("ukc-accept".into())
            .spawn(move || accept_loop(listener, state, shutdown))?
    };
    let ingest = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("ukc-ingest".into())
            .spawn(move || ingest_worker(state))?
    };
    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        accept: Some(accept),
        ingest: Some(ingest),
    })
}

/// Binds and serves on the calling thread until the process dies (the
/// CLI's `ukc serve`). Prints the bound address on stderr so scripts can
/// scrape it when binding port 0.
pub fn serve_blocking(config: ServerConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&config.addr)?;
    let state = Arc::new(AppState::new(&config).map_err(store_io_err)?);
    if state.durable.is_some() {
        let r = &state.recovery;
        eprintln!(
            "ukc-server recovered {} instance(s), {} stream(s) ({} epoch(s) replayed, {} snapshot restore(s)){}",
            r.instances,
            r.streams,
            r.replayed_epochs,
            r.snapshot_restores,
            if r.torn_tail { ", dropped a torn wal tail" } else { "" },
        );
    }
    eprintln!("ukc-server listening on {}", listener.local_addr()?);
    {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("ukc-ingest".into())
            .spawn(move || ingest_worker(state))?;
    }
    accept_loop(listener, state, Arc::new(AtomicBool::new(false)));
    Ok(())
}

fn accept_loop(listener: TcpListener, state: Arc<AppState>, shutdown: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name("ukc-conn".into())
            .spawn(move || handle_connection(stream, &state));
    }
}

/// Per-read socket timeout: how long a single `read` may block before
/// the thread checks the request deadline.
const READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// Wall-clock budget for reading one complete request (headers + body).
/// This, not [`READ_TIMEOUT`], is what bounds a slowloris client
/// trickling one byte per timeout window: the deadline is checked
/// between reads inside [`read_request`], so a connection thread is
/// reclaimed at most one `READ_TIMEOUT` past it.
const REQUEST_DEADLINE: std::time::Duration = std::time::Duration::from_secs(120);

/// How many pending body bytes to drain before closing on an error, so
/// the error response is not torn down by a TCP reset (closing with
/// unread data in the receive queue RSTs, and the client would see
/// "connection reset" instead of the typed 413/400 payload).
const ERROR_DRAIN_LIMIT: usize = 64 * 1024 * 1024;

fn handle_connection(stream: TcpStream, state: &AppState) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        let deadline = Instant::now() + REQUEST_DEADLINE;
        match read_request(&mut reader, state.max_body_bytes, Some(deadline)) {
            Err(HttpError::Closed) => return,
            // Timeout, deadline, or socket failure: the peer is stalled
            // or gone, so there is no point writing a response — just
            // reclaim the thread.
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                // Without a fully-read request the stream cannot be
                // resynced; answer and close — but drain what the client
                // already sent first, or the close may RST the response
                // away before the client reads it.
                let api: ApiError = e.into();
                state.metrics.record_response(api.status);
                let response = Response::json(api.status, api.to_json().pretty());
                if write_response(&mut writer, &response, false).is_ok() {
                    crate::http::drain_body(&mut reader, ERROR_DRAIN_LIMIT);
                }
                return;
            }
            Ok(request) => {
                let keep_alive = request.keep_alive;
                let response = dispatch(state, &request);
                state.metrics.record_response(response.status);
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// Routes one request and renders its response.
///
/// Wrong-method requests (405) count under the `unmatched` metrics
/// label, not the sibling route's, so per-route counters only reflect
/// requests that actually reached their handler.
pub(crate) fn dispatch(state: &AppState, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    let (route, outcome) = match segments.as_slice() {
        ["healthz"] => match method {
            "GET" => (Route::Healthz, handle_healthz(state)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["metrics"] => match method {
            "GET" => (Route::Metrics, handle_metrics(state)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["instances"] => match method {
            "POST" => (
                Route::InstanceCreate,
                match state.cluster() {
                    Some(cluster) => crate::cluster::create(cluster, request),
                    None => handle_instance_create(state, request),
                },
            ),
            "GET" => (
                Route::InstanceList,
                match state.cluster() {
                    Some(cluster) => crate::cluster::list(cluster),
                    None => handle_instance_list(state),
                },
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["instances", id] => match method {
            "GET" => (
                Route::InstanceGet,
                match state.cluster() {
                    Some(cluster) => crate::cluster::get(cluster, id),
                    None => handle_instance_get(state, id),
                },
            ),
            "DELETE" => (
                Route::InstanceDelete,
                match state.cluster() {
                    Some(cluster) => crate::cluster::delete(cluster, id),
                    None => handle_instance_delete(state, id),
                },
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["instances", id, "solve"] => match method {
            "POST" => (
                Route::InstanceSolve,
                match state.cluster() {
                    Some(cluster) => crate::cluster::solve(cluster, id, request),
                    None => handle_instance_solve(state, id, request),
                },
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["instances", id, "append"] => match method {
            "POST" => (
                Route::InstanceAppend,
                match state.cluster() {
                    Some(cluster) => crate::cluster::append(cluster, id, request),
                    None => handle_instance_append(state, id, request),
                },
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["instances", id, "solve_loo"] => match method {
            "POST" => (
                Route::InstanceSolveLoo,
                match state.cluster() {
                    Some(cluster) => crate::cluster::solve_loo(cluster, id, request),
                    None => handle_instance_solve_loo(state, id, request),
                },
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["solve"] => match method {
            "POST" => (
                Route::OneShotSolve,
                match state.cluster() {
                    Some(cluster) => crate::cluster::oneshot(cluster, request),
                    None => handle_oneshot_solve(state, request),
                },
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["solve_batch"] => match method {
            "POST" => (
                Route::SolveBatch,
                match state.cluster() {
                    Some(cluster) => crate::cluster::solve_batch(cluster, request),
                    None => handle_solve_batch(state, request),
                },
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["replicate"] => match method {
            "POST" => (Route::Replicate, handle_replicate(state, request)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["cluster", "status"] => match method {
            "GET" => (Route::ClusterStatus, crate::cluster::status(state)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["cluster", "nodes"] => match method {
            "POST" => (
                Route::ClusterNodeAdd,
                crate::cluster::node_add(state, request),
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["cluster", "nodes", id] => match method {
            "DELETE" => (
                Route::ClusterNodeRemove,
                crate::cluster::node_remove(state, id),
            ),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["streams"] => match method {
            "POST" => (Route::StreamCreate, handle_stream_create(state, request)),
            "GET" => (Route::StreamList, handle_stream_list(state)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["streams", id] => match method {
            "GET" => (Route::StreamGet, handle_stream_get(state, id)),
            "DELETE" => (Route::StreamDelete, handle_stream_delete(state, id)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["streams", id, "push"] => match method {
            "POST" => (Route::StreamPush, handle_stream_push(state, id, request)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        ["streams", id, "solution"] => match method {
            "GET" => (Route::StreamSolution, handle_stream_solution(state, id)),
            _ => (Route::Unmatched, Err(method_err(request))),
        },
        _ => (
            Route::Unmatched,
            Err(ApiError::route_not_found(&request.path)),
        ),
    };
    state.metrics.record_request(route);
    match outcome {
        Ok((status, body)) => Response::json(status, body.pretty()),
        Err(e) => {
            let response = Response::json(e.status, e.to_json().pretty());
            if e.kind == "overloaded" || e.kind == "ingest_overloaded" {
                // The request was never enqueued, so an immediate retry
                // is safe; 1s is long enough for a wave to drain.
                response.with_header("Retry-After", "1")
            } else {
                response
            }
        }
    }
}

fn method_err(request: &Request) -> ApiError {
    ApiError::method_not_allowed(&request.method, &request.path)
}

pub(crate) type Handled = Result<(u16, Json), ApiError>;

fn handle_healthz(state: &AppState) -> Handled {
    let mode = if state.durable.is_some() {
        "durable"
    } else {
        "in-memory"
    };
    let role = if state.cluster.is_some() {
        "coordinator"
    } else {
        "single"
    };
    Ok((
        200,
        Json::obj([
            ("status", Json::from("ok")),
            ("version", Json::from(env!("CARGO_PKG_VERSION"))),
            (
                "uptime_seconds",
                Json::from(state.started.elapsed().as_secs_f64()),
            ),
            ("workers", Json::from(state.scheduler.workers())),
            ("mode", Json::from(mode)),
            ("role", Json::from(role)),
        ]),
    ))
}

fn handle_metrics(state: &AppState) -> Handled {
    let cache_len = state.cache.lock().expect("cache lock poisoned").len();
    let durability = state.durable.as_ref().map(|durable| {
        let stats = durable.stats();
        let r = &state.recovery;
        Json::obj([
            ("wal_bytes", Json::from(stats.wal_bytes as f64)),
            ("segments", Json::from(stats.segments as f64)),
            ("segment_bytes", Json::from(stats.segment_bytes as f64)),
            ("snapshots", Json::from(stats.snapshots as f64)),
            ("fsync_count", Json::from(stats.fsync_count as f64)),
            ("fsync_seconds", Json::from(stats.fsync_seconds)),
            (
                "recovery",
                Json::obj([
                    ("instances", Json::from(r.instances as f64)),
                    ("streams", Json::from(r.streams as f64)),
                    ("replayed_epochs", Json::from(r.replayed_epochs as f64)),
                    ("snapshot_restores", Json::from(r.snapshot_restores as f64)),
                    ("torn_tail", Json::from(r.torn_tail)),
                ]),
            ),
        ])
    });
    Ok((
        200,
        state.metrics.to_json(
            cache_len,
            state.cache_cap,
            state.store.len(),
            state.streams.len(),
            ukc_pool::global().stats(),
            durability,
        ),
    ))
}

/// Durably stores `set`'s canonical document before it becomes visible
/// in memory (create and append acks imply durability). The canonical
/// re-serialization — not the wire body — is stored so create and append
/// persist identically; `ukc_json` round-trips `f64`s bit-exactly, so
/// the recovered set digests to the same ID.
fn persist_instance(state: &AppState, set: &UncertainSet<Point>) -> Result<(), ApiError> {
    if let Some(durable) = &state.durable {
        let digest = ukc_core::digest_set(set);
        let doc = JsonInstance::from_set(set).to_json().compact();
        durable.put_instance(digest, doc.as_bytes())?;
    }
    Ok(())
}

fn handle_instance_create(state: &AppState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let instance = JsonInstance::from_json(&doc).map_err(ApiError::from)?;
    let set = instance.to_set().map_err(ApiError::from)?;
    persist_instance(state, &set)?;
    let (stored, created) = state.store.insert(set);
    let mut body = stored.summary();
    if let Json::Obj(pairs) = &mut body {
        pairs.push(("created".into(), Json::from(created)));
    }
    Ok((if created { 201 } else { 200 }, body))
}

fn handle_instance_list(state: &AppState) -> Handled {
    Ok((
        200,
        Json::obj([(
            "instances",
            Json::arr(state.store.list().iter().map(|i| i.summary())),
        )]),
    ))
}

fn handle_instance_get(state: &AppState, id: &str) -> Handled {
    let stored = state
        .store
        .get(id)
        .ok_or_else(|| ApiError::instance_not_found(id))?;
    let mut body = stored.summary();
    if let Json::Obj(pairs) = &mut body {
        pairs.push((
            "instance".into(),
            JsonInstance::from_set(&stored.set).to_json(),
        ));
    }
    Ok((200, body))
}

fn handle_instance_delete(state: &AppState, id: &str) -> Handled {
    match state.store.remove(id) {
        Some(stored) => {
            // Tombstone on disk before acking, then evict every cached
            // solution derived from the deleted set (any k, any config).
            if let Some(durable) = &state.durable {
                durable.delete_instance(stored.digest)?;
            }
            state
                .cache
                .lock()
                .expect("cache lock poisoned")
                .retain(|key| key.set_digest != stored.digest);
            state
                .priors
                .lock()
                .expect("prior cache lock poisoned")
                .retain(|key| key.set_digest != stored.digest);
            Ok((
                200,
                Json::obj([("id", Json::from(id)), ("deleted", Json::from(true))]),
            ))
        }
        None => Err(ApiError::instance_not_found(id)),
    }
}

fn handle_instance_solve(state: &AppState, id: &str, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let solve = api::parse_solve_request(&doc, false)?.apply_default_kernel(state.default_kernel);
    let stored = state
        .store
        .get(id)
        .ok_or_else(|| ApiError::instance_not_found(id))?;
    let warm = request
        .query_param("base")
        .map(|base| resolve_base(state, base, &solve));
    // The set digest was computed at upload time; cloning the (possibly
    // large) set is deferred to the cache-miss path.
    run_solve(state, stored.digest, || (*stored.set).clone(), &solve, warm)
}

fn handle_oneshot_solve(state: &AppState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let (instance, solve) = api::parse_oneshot(&doc)?;
    let solve = solve.apply_default_kernel(state.default_kernel);
    let set = instance.to_set().map_err(ApiError::from)?;
    let digest = ukc_core::digest_set(&set);
    let warm = request
        .query_param("base")
        .map(|base| resolve_base(state, base, &solve));
    run_solve(state, digest, move || set, &solve, warm)
}

/// `POST /instances/{id}/append`: grows a stored instance by the body's
/// points. Instances are content-addressed and therefore immutable, so
/// the grown instance is stored under its *own* digest and the response
/// carries the new ID; the original stays available, and solution-cache
/// entries need no invalidation — the new digest simply never hits them.
///
/// The response names the parent under `parent_digest` so clients can
/// chain `solve?base=` without bookkeeping, and `?k=<k>` solves the
/// grown instance in the same round trip — warm-started from the parent
/// by default (`?base=<digest>` overrides the prior) — returning the
/// solution under `"solution"`.
fn handle_instance_append(state: &AppState, id: &str, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let instance = JsonInstance::from_json(&doc).map_err(ApiError::from)?;
    let appended = instance.to_set().map_err(ApiError::from)?;
    let stored = state
        .store
        .get(id)
        .ok_or_else(|| ApiError::instance_not_found(id))?;
    if instance.dim != stored.dim {
        return Err(ukc_core::SolveError::DimensionMismatch {
            point: stored.set.n(),
            got: instance.dim,
            expected: stored.dim,
        }
        .into());
    }
    let mut points = stored.set.points().to_vec();
    points.extend(appended.points().iter().cloned());
    let grown_set = UncertainSet::new(points);
    persist_instance(state, &grown_set)?;
    let (grown, created) = state.store.insert(grown_set);
    let mut body = grown.summary();
    if let Json::Obj(pairs) = &mut body {
        pairs.push(("previous_id".into(), Json::from(id)));
        pairs.push((
            "parent_digest".into(),
            Json::from(digest_hex(stored.digest)),
        ));
        pairs.push(("appended".into(), Json::from(appended.n())));
        pairs.push(("created".into(), Json::from(created)));
    }
    if let Some(k_raw) = request.query_param("k") {
        let k: usize = k_raw.parse().map_err(|_| {
            ApiError::bad_request("bad_schema", "\"k\" must be a non-negative integer")
        })?;
        if k == 0 {
            return Err(ukc_core::SolveError::ZeroK.into());
        }
        let solve = SolveRequest {
            k,
            config: SolverConfig::default(),
            use_cache: true,
            explicit_kernel: false,
        }
        .apply_default_kernel(state.default_kernel);
        let base = request.query_param("base").unwrap_or(id);
        let warm = Some(resolve_base(state, base, &solve));
        let (_, solution) = run_solve(state, grown.digest, || (*grown.set).clone(), &solve, warm)?;
        if let Json::Obj(pairs) = &mut body {
            pairs.push(("solution".into(), solution));
        }
    }
    Ok((if created { 201 } else { 200 }, body))
}

/// The stream summary document shared by create/get/list responses.
fn stream_summary(entry: &crate::streams::StreamEntry) -> Json {
    let solver = entry.solver.lock().expect("stream solver lock poisoned");
    let report = solver.report();
    Json::obj([
        ("id", Json::from(entry.id.as_str())),
        ("k", Json::from(solver.k())),
        ("budget", Json::from(solver.budget())),
        ("points_seen", Json::from(report.points as f64)),
        ("epochs", Json::from(report.epochs as f64)),
        ("summary_size", Json::from(report.summary_len)),
        ("threshold", Json::from(report.threshold)),
        ("digest", Json::from(digest_hex(report.digest))),
    ])
}

fn handle_stream_create(state: &AppState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let (solve, budget) = api::parse_stream_create(&doc)?;
    let solve = solve.apply_default_kernel(state.default_kernel);
    let mut builder = StreamSolver::builder(solve.k).config(solve.config.clone());
    if let Some(budget) = budget {
        builder = builder.budget(budget);
    }
    let solver = builder.build().map_err(ApiError::from)?;
    let entry = state.streams.create(solver, solve.use_cache);
    // The create record is durable before the 201 carries the ID out; a
    // failed write rolls the in-memory entry back so memory and disk
    // agree that the stream never existed.
    if let Some(durable) = &state.durable {
        if let Err(e) = durable.create_stream(entry.seq, &request.body) {
            state.streams.remove(&entry.id);
            return Err(e.into());
        }
    }
    Ok((201, stream_summary(&entry)))
}

fn handle_stream_list(state: &AppState) -> Handled {
    Ok((
        200,
        Json::obj([(
            "streams",
            Json::arr(state.streams.list().iter().map(|e| stream_summary(e))),
        )]),
    ))
}

fn handle_stream_get(state: &AppState, id: &str) -> Handled {
    let entry = state
        .streams
        .get(id)
        .ok_or_else(|| ApiError::stream_not_found(id))?;
    Ok((200, stream_summary(&entry)))
}

fn handle_stream_delete(state: &AppState, id: &str) -> Handled {
    match state.streams.remove(id) {
        Some(entry) => {
            let digest = entry
                .solver
                .lock()
                .expect("stream solver lock poisoned")
                .digest();
            if let Some(durable) = &state.durable {
                durable.delete_stream(entry.seq)?;
            }
            // Evict the solutions cached for the stream's current state
            // (the only digest still reachable through this stream; any
            // older state's entries are keyed by digests no live request
            // can produce, and age out of the LRU).
            state
                .cache
                .lock()
                .expect("cache lock poisoned")
                .retain(|key| key.set_digest != digest);
            state
                .priors
                .lock()
                .expect("prior cache lock poisoned")
                .retain(|key| key.set_digest != digest);
            Ok((
                200,
                Json::obj([("id", Json::from(id)), ("deleted", Json::from(true))]),
            ))
        }
        None => Err(ApiError::stream_not_found(id)),
    }
}

/// `POST /streams/{id}/push`: one instance document = one epoch.
/// All-or-nothing per chunk — a dimension mismatch consumes nothing.
///
/// The connection thread parses and validates, then hands the chunk to
/// the ingest worker through the bounded per-stream queue and parks
/// until it is applied. A full queue is a `429 ingest_overloaded` with
/// `Retry-After` *before* anything is enqueued, so a rejected push never
/// has side effects and retrying is always safe.
fn handle_stream_push(state: &AppState, id: &str, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let instance = JsonInstance::from_json(&doc).map_err(ApiError::from)?;
    let chunk = instance.to_set().map_err(ApiError::from)?;
    let entry = state
        .streams
        .get(id)
        .ok_or_else(|| ApiError::stream_not_found(id))?;
    let slot = Arc::new(ReplySlot::new());
    let job = PushJob {
        entry,
        chunk,
        body: request.body.clone(),
        slot: Arc::clone(&slot),
    };
    match state.ingest.submit(id, job) {
        Ok(()) => state
            .metrics
            .ingest_accepted
            .fetch_add(1, Ordering::Relaxed),
        Err(crate::ingest::SubmitError::Full { depth, cap }) => {
            state
                .metrics
                .ingest_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ApiError::ingest_overloaded(depth, cap));
        }
        Err(crate::ingest::SubmitError::Shutdown) => return Err(ApiError::unavailable()),
    };
    slot.wait()
}

/// Applies one queued push on the ingest worker: evolve the summary,
/// durably log the epoch (fsync before ack), snapshot periodically, and
/// render the push response.
fn apply_stream_push(
    state: &AppState,
    entry: &crate::streams::StreamEntry,
    chunk: UncertainSet<Point>,
    body: &[u8],
) -> Handled {
    let mut solver = entry.solver.lock().expect("stream solver lock poisoned");
    let epoch = solver.push_chunk(chunk.points()).map_err(ApiError::from)?;
    if let Some(durable) = &state.durable {
        // The ack contract: the epoch's WAL record is fsync'd before the
        // response leaves. On failure the client gets a retryable 503 and
        // no ack — the epoch may be lost on restart, which is exactly the
        // unacked-push contract.
        durable.append_push(entry.seq, epoch.epoch, body)?;
        // Periodic snapshot so recovery replays only the WAL tail.
        // Best-effort: a failed snapshot costs recovery time, not data.
        if state.snapshot_interval > 0 && epoch.epoch % state.snapshot_interval == 0 {
            let payload = persist::encode_snapshot(&solver.snapshot());
            let _ = durable.write_snapshot(
                entry.seq,
                &Snapshot {
                    epochs: epoch.epoch,
                    digest: solver.digest(),
                    payload,
                },
            );
        }
    }
    let report = solver.report();
    Ok((
        200,
        Json::obj([
            ("id", Json::from(entry.id.as_str())),
            ("epoch", Json::from(epoch.epoch as f64)),
            ("points", Json::from(epoch.points)),
            ("points_seen", Json::from(report.points as f64)),
            ("summary_size", Json::from(report.summary_len)),
            ("threshold", Json::from(report.threshold)),
            ("merges", Json::from(epoch.merges as f64)),
            ("distance_evals", Json::from(epoch.distance_evals as f64)),
            ("memory_peak_points", Json::from(report.memory_peak_points)),
            ("digest", Json::from(digest_hex(report.digest))),
        ]),
    ))
}

/// `GET /streams/{id}/solution`: incremental re-solve. The summary is
/// snapshotted under the stream lock, then solved as a problem *through
/// the scheduler* like any other request; the solution cache is keyed on
/// the snapshot's content digest, which every push changes — so repeated
/// reads of an unchanged stream hit the cache, and a push invalidates it
/// by construction.
fn handle_stream_solution(state: &AppState, id: &str) -> Handled {
    let entry = state
        .streams
        .get(id)
        .ok_or_else(|| ApiError::stream_not_found(id))?;
    // Under a staleness budget, a read inside the window re-serves the
    // last rendered response (marked `"stale": true`) without touching
    // the solver or the scheduler — at most one snapshot + solve per
    // budget window per stream, no matter the read rate.
    if !state.solve_staleness.is_zero() {
        let slot = entry
            .last_response
            .lock()
            .expect("stream response slot poisoned");
        if let Some((at, cached_body)) = slot.as_ref() {
            if at.elapsed() < state.solve_staleness {
                state.metrics.stale_served.fetch_add(1, Ordering::Relaxed);
                let mut body = cached_body.clone();
                if let Json::Obj(pairs) = &mut body {
                    pairs.push(("stale".into(), Json::from(true)));
                }
                return Ok((200, body));
            }
        }
    }
    let (set, solve, report, coverage, stream_lb) = {
        let solver = entry.solver.lock().expect("stream solver lock poisoned");
        if solver.is_empty() {
            return Err(ukc_core::SolveError::EmptySet.into());
        }
        let summary_points = solver.summary().center_points();
        // The summary may hold fewer points than k (the stream is still
        // warming up): solve for every summary point as a center.
        let k_eff = solver.k().min(summary_points.len());
        let certain: Vec<UncertainPoint<Point>> = summary_points
            .into_iter()
            .map(UncertainPoint::certain)
            .collect();
        let solve = SolveRequest {
            k: k_eff,
            config: solver.config().clone(),
            use_cache: entry.use_cache,
            // The stream's config already resolved the kernel at create
            // time; mark it explicit so no default applies twice.
            explicit_kernel: true,
        };
        (
            UncertainSet::new(certain),
            solve,
            solver.report(),
            solver.summary().coverage_radius(),
            solver.summary().lower_bound(),
        )
    };
    // The cache key is the *stream* digest — the full evolved state
    // (centers, weights, threshold, count) — so any push invalidates by
    // construction, and replicas that consumed the same stream share
    // entries. It also becomes the response's `instance_digest`.
    //
    // The entry's last-solution slot chains epochs: an evolved stream
    // warm-starts from the previous epoch's solution (epochs that only
    // appended summary points re-solve in O(delta); a reshaped summary
    // falls back cold with a typed flag — never an error). An unchanged
    // stream is served by the ordinary digest-keyed solution cache, so
    // repeat reads still count as cache hits.
    let slot = entry
        .last_solution
        .lock()
        .expect("stream solution slot poisoned")
        .clone();
    let (solution, cached, base) = match slot {
        Some((digest, prior)) if digest != report.digest => {
            let warm = WarmBase::Prior {
                base_digest: digest,
                prior,
            };
            let (solution, cached) =
                obtain_solution(state, report.digest, move || set, &solve, Some(&warm))?;
            (solution, cached, Some(digest))
        }
        _ => {
            let (solution, cached) =
                obtain_solution(state, report.digest, move || set, &solve, None)?;
            (solution, cached, None)
        }
    };
    *entry
        .last_solution
        .lock()
        .expect("stream solution slot poisoned") = Some((report.digest, Arc::clone(&solution)));
    let (status, mut body) = (200, solve_response(&solution, report.digest, cached));
    if let (Json::Obj(pairs), Some(b)) = (&mut body, base) {
        pairs.push(("base".into(), Json::from(digest_hex(b))));
    }
    let certain_radius = body
        .get("certain_radius")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if let Json::Obj(pairs) = &mut body {
        pairs.push((
            "stream".into(),
            Json::obj([
                ("id", Json::from(entry.id.as_str())),
                ("digest", Json::from(digest_hex(report.digest))),
                ("points_seen", Json::from(report.points as f64)),
                ("epochs", Json::from(report.epochs as f64)),
                ("summary_size", Json::from(report.summary_len)),
                ("threshold", Json::from(report.threshold)),
                ("radius_bound", Json::from(certain_radius + coverage)),
                ("lower_bound", Json::from(stream_lb)),
                ("memory_peak_points", Json::from(report.memory_peak_points)),
            ]),
        ));
    }
    if !state.solve_staleness.is_zero() {
        *entry
            .last_response
            .lock()
            .expect("stream response slot poisoned") = Some((Instant::now(), body.clone()));
    }
    Ok((status, body))
}

/// How a `base=<digest>` query parameter resolved.
enum WarmBase {
    /// The prior is in hand: the base's content digest and a solution of
    /// it to chain from.
    Prior {
        base_digest: u64,
        prior: Arc<Solution<Point>>,
    },
    /// No prior could be produced. The solve proceeds **cold** with a
    /// typed `report.warm.fallback` flag — a bad base is never an error.
    Unresolved { reason: &'static str },
}

/// Produces the warm prior for `base`: the freshest solution the server
/// holds for it (the prior map, which warm results also land in), the
/// response cache, or — both missing — a cold solve of the stored base
/// instance, recorded for the next chain link. Unknown, unparseable, or
/// unsolvable bases resolve to [`WarmBase::Unresolved`].
fn resolve_base(state: &AppState, base: &str, solve: &SolveRequest) -> WarmBase {
    let Ok(base_digest) = u64::from_str_radix(base, 16) else {
        return WarmBase::Unresolved {
            reason: "base_invalid",
        };
    };
    let base_problem_digest = ukc_core::digest_problem("euclidean", solve.k, base_digest, None);
    let key = SolveKey::new(base_problem_digest, base_digest, &solve.config);
    let held = state
        .priors
        .lock()
        .expect("prior cache lock poisoned")
        .get(&key)
        .cloned()
        .or_else(|| {
            state
                .cache
                .lock()
                .expect("cache lock poisoned")
                .get(&key)
                .cloned()
        });
    if let Some(prior) = held {
        return WarmBase::Prior { base_digest, prior };
    }
    let Some(stored) = state.store.get(base) else {
        return WarmBase::Unresolved {
            reason: "base_not_found",
        };
    };
    let Ok(problem) = Problem::euclidean((*stored.set).clone(), solve.k) else {
        return WarmBase::Unresolved {
            reason: "base_unsolvable",
        };
    };
    match state
        .scheduler
        .solve(problem, solve.config.clone(), base_problem_digest)
    {
        Ok(Ok(solution)) => {
            let prior = Arc::new(solution);
            state
                .priors
                .lock()
                .expect("prior cache lock poisoned")
                .insert(key, Arc::clone(&prior));
            WarmBase::Prior { base_digest, prior }
        }
        _ => WarmBase::Unresolved {
            reason: "base_unsolvable",
        },
    }
}

/// The shared solve path: cache lookup by `(digest, config)` — extended
/// by the base digest for warm requests, so warm and cold results never
/// collide — then, on a miss only, problem construction, scheduler
/// submission, and cache fill. `set_digest` is the instance's content
/// digest (the store ID); the cache key extends it with `k` and the
/// space so different requests against one instance cannot collide.
fn run_solve(
    state: &AppState,
    set_digest: u64,
    make_set: impl FnOnce() -> UncertainSet<Point>,
    solve: &SolveRequest,
    warm: Option<WarmBase>,
) -> Handled {
    let base_digest = match &warm {
        Some(WarmBase::Prior { base_digest, .. }) => Some(*base_digest),
        _ => None,
    };
    let (solution, cached) = obtain_solution(state, set_digest, make_set, solve, warm.as_ref())?;
    let mut body = solve_response(&solution, set_digest, cached);
    if let (Json::Obj(pairs), Some(b)) = (&mut body, base_digest) {
        pairs.push(("base".into(), Json::from(digest_hex(b))));
    }
    Ok((200, body))
}

/// The solve machinery behind [`run_solve`] and the stream-solution
/// route, returning the `Arc`'d solution so callers can keep it (the
/// stream slot) instead of only its rendering.
fn obtain_solution(
    state: &AppState,
    set_digest: u64,
    make_set: impl FnOnce() -> UncertainSet<Point>,
    solve: &SolveRequest,
    warm: Option<&WarmBase>,
) -> Result<(Arc<Solution<Point>>, bool), ApiError> {
    let problem_digest = ukc_core::digest_problem("euclidean", solve.k, set_digest, None);
    let cold_key = SolveKey::new(problem_digest, set_digest, &solve.config);
    let key = match warm {
        Some(WarmBase::Prior { base_digest, .. }) => cold_key.clone().with_base(*base_digest),
        _ => cold_key.clone(),
    };
    // An unresolved base bypasses the response cache entirely: the result
    // is a cold solve with a warm-fallback flag stamped on, which must
    // neither be served from nor stored under the plain cold key.
    let use_cache = solve.use_cache && !matches!(warm, Some(WarmBase::Unresolved { .. }));

    if use_cache {
        let cached = state
            .cache
            .lock()
            .expect("cache lock poisoned")
            .get(&key)
            .cloned();
        if let Some(solution) = cached {
            state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((solution, true));
        }
    }

    let problem = Problem::euclidean(make_set(), solve.k).map_err(|e| {
        state.metrics.record_solve_error();
        ApiError::from(e)
    })?;
    let outcome = match warm {
        Some(WarmBase::Prior { base_digest, prior }) => state.scheduler.solve_warm(
            problem,
            solve.config.clone(),
            problem_digest,
            *base_digest,
            Arc::clone(prior),
        ),
        _ => state
            .scheduler
            .solve(problem, solve.config.clone(), problem_digest),
    };
    let mut solution = outcome.map_err(submit_err)?.map_err(ApiError::from)?;
    if let Some(WarmBase::Unresolved { reason }) = warm {
        solution.report.warm = Some(WarmStats {
            fallback: Some(reason),
            ..WarmStats::default()
        });
        state.metrics.record_warm_fallback();
    }
    let solution = Arc::new(solution);
    // Every produced solution — cold or warm — becomes the freshest
    // prior for its instance, so chains never re-solve a parent cold.
    state
        .priors
        .lock()
        .expect("prior cache lock poisoned")
        .insert(cold_key, Arc::clone(&solution));
    if use_cache {
        // A miss is only recorded once a cacheable solve actually
        // completed, so hits + misses counts cache *lookup outcomes*
        // for real solutions and failed requests cannot skew hit_rate.
        state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        state
            .cache
            .lock()
            .expect("cache lock poisoned")
            .insert(key, Arc::clone(&solution));
    }
    Ok((solution, false))
}

/// `POST /instances/{id}/solve_loo`: batch leave-one-out over a stored
/// instance — the base solution plus all `n` one-point-removed variants
/// sharing one point store. LOO manages its own deterministic pool
/// fan-out (variants across lanes), so it runs on the connection thread
/// instead of occupying a scheduler wave.
fn handle_instance_solve_loo(state: &AppState, id: &str, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let solve = api::parse_solve_request(&doc, false)?.apply_default_kernel(state.default_kernel);
    let stored = state
        .store
        .get(id)
        .ok_or_else(|| ApiError::instance_not_found(id))?;
    let problem = Problem::euclidean((*stored.set).clone(), solve.k).map_err(|e| {
        state.metrics.record_solve_error();
        ApiError::from(e)
    })?;
    let loo = ukc_core::solve_loo(&problem, &solve.config).map_err(|e| {
        state.metrics.record_solve_error();
        ApiError::from(e)
    })?;
    state.metrics.record_solve(
        &loo.base.report,
        solve.config.kernel(),
        solve.config.assignment(),
    );
    let variants = Json::arr(loo.variants.iter().map(|v| {
        Json::obj([
            ("removed", Json::from(v.removed)),
            ("ecost", Json::from(v.ecost)),
            ("certain_radius", Json::from(v.certain_radius)),
            ("reused", Json::from(v.reused)),
            ("distance_evals", Json::from(v.distance_evals as f64)),
        ])
    }));
    Ok((
        200,
        Json::obj([
            ("instance_digest", Json::from(digest_hex(stored.digest))),
            ("base", solve_response(&loo.base, stored.digest, false)),
            ("variants", variants),
            ("count", Json::from(loo.variants.len())),
            ("reused_variants", Json::from(loo.reused_variants)),
            ("resolved_variants", Json::from(loo.resolved_variants)),
            ("distance_evals", Json::from(loo.distance_evals as f64)),
        ]),
    ))
}

fn submit_err(e: crate::scheduler::SubmitError) -> ApiError {
    match e {
        crate::scheduler::SubmitError::ShuttingDown => ApiError::unavailable(),
        crate::scheduler::SubmitError::Overloaded { depth, cap } => {
            ApiError::overloaded(depth, cap)
        }
    }
}

/// `POST /solve_batch`: solves many stored instances under one shared
/// configuration in a **single scheduler submission**, so the whole
/// batch coalesces into as few waves as possible instead of queueing one
/// job per round trip. Per-id failures (unknown instance, solve error)
/// come back as per-slot error documents in request order; only a
/// malformed request or a full queue fails the batch as a whole. This is
/// also the scatter unit of coordinator mode: a coordinator forwards one
/// sub-batch per shard.
fn handle_solve_batch(state: &AppState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let (ids, solve) = api::parse_solve_batch(&doc)?;
    let solve = solve.apply_default_kernel(state.default_kernel);

    // Resolve every id first; per-slot outcomes never reorder.
    let mut slots: Vec<Option<Json>> = vec![None; ids.len()];
    let mut jobs: Vec<(Problem<Point>, ukc_core::SolverConfig, u64)> = Vec::new();
    let mut job_slots: Vec<(usize, SolveKey, u64)> = Vec::new(); // (slot, cache key, set digest)
    for (slot, id) in ids.iter().enumerate() {
        let Some(stored) = state.store.get(id) else {
            slots[slot] = Some(ApiError::instance_not_found(id).to_json());
            continue;
        };
        let set_digest = stored.digest;
        let problem_digest = ukc_core::digest_problem("euclidean", solve.k, set_digest, None);
        let key = SolveKey::new(problem_digest, set_digest, &solve.config);
        if solve.use_cache {
            let cached = state
                .cache
                .lock()
                .expect("cache lock poisoned")
                .get(&key)
                .cloned();
            if let Some(solution) = cached {
                state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                slots[slot] = Some(solve_response(&solution, set_digest, true));
                continue;
            }
        }
        match Problem::euclidean((*stored.set).clone(), solve.k) {
            Ok(problem) => {
                jobs.push((problem, solve.config.clone(), problem_digest));
                job_slots.push((slot, key, set_digest));
            }
            Err(e) => {
                state.metrics.record_solve_error();
                slots[slot] = Some(ApiError::from(e).to_json());
            }
        }
    }

    if !jobs.is_empty() {
        let results = state.scheduler.solve_many(jobs).map_err(submit_err)?;
        for ((slot, key, set_digest), result) in job_slots.into_iter().zip(results) {
            slots[slot] = Some(match result {
                Ok(solution) => {
                    let solution = Arc::new(solution);
                    if solve.use_cache {
                        state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                        state
                            .cache
                            .lock()
                            .expect("cache lock poisoned")
                            .insert(key, Arc::clone(&solution));
                    }
                    solve_response(&solution, set_digest, false)
                }
                Err(e) => ApiError::from(e).to_json(),
            });
        }
    }

    let count = slots.len();
    let solutions: Vec<Json> = slots
        .into_iter()
        .map(|s| s.expect("every slot is resolved, cached, errored, or solved"))
        .collect();
    Ok((
        200,
        Json::obj([
            ("solutions", Json::arr(solutions)),
            ("count", Json::from(count)),
        ]),
    ))
}

/// `POST /replicate`: the cluster-internal store path. Unlike `POST
/// /instances` this parses the document **verbatim** — no probability
/// renormalization — so a replica stores bit-identical points and the
/// content digest (the instance ID) is preserved exactly. Coordinators
/// use it for hot-instance copies and for storing grown appends; it is
/// harmless to expose on a single node, where it behaves like create for
/// already-normalized documents.
fn handle_replicate(state: &AppState, request: &Request) -> Handled {
    let doc = api::parse_body(&request.body)?;
    let instance = JsonInstance::from_json(&doc).map_err(ApiError::from)?;
    let set = instance.to_set_verbatim().map_err(ApiError::from)?;
    persist_instance(state, &set)?;
    let (stored, created) = state.store.insert(set);
    let mut body = stored.summary();
    if let Json::Obj(pairs) = &mut body {
        pairs.push(("created".into(), Json::from(created)));
    }
    Ok((if created { 201 } else { 200 }, body))
}

/// The solve response: the shared solution document plus serving
/// metadata (`instance_digest` — the same content digest `POST
/// /instances` returns as the ID — and `cached`).
fn solve_response(solution: &Solution<Point>, set_digest: u64, cached: bool) -> Json {
    let mut doc = solution_document(solution);
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("instance_digest".into(), Json::from(digest_hex(set_digest))));
        pairs.push(("cached".into(), Json::from(cached)));
    }
    doc
}
