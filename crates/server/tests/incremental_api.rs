//! End-to-end tests for the incremental-solve surface: `solve?base=`
//! warm starts (including the typed cold fallback for unknown bases),
//! the append-and-resolve round trip, `POST /instances/{id}/solve_loo`,
//! and the warm counters on `/metrics`.

use std::net::SocketAddr;

use ukc_json::Json;
use ukc_server::{client, serve, ServerConfig};

fn send(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let r = client::request(addr, method, path, Some(body)).expect("request");
    (r.status, Json::parse(&r.body).expect("response is JSON"))
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    let r = client::request(addr, "GET", path, None).expect("request");
    (r.status, Json::parse(&r.body).expect("response is JSON"))
}

fn str_field(doc: &Json, key: &str) -> String {
    doc.get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("missing string {key:?} in {}", doc.compact()))
        .to_string()
}

fn f64_field(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("missing number {key:?} in {}", doc.compact()))
}

/// Certain 2-d points at the given x coordinates: two far-apart groups
/// make the warm-start certificate easy to satisfy (within-group radius
/// is tiny next to the between-group center separation).
fn doc_of(xs: &[f64]) -> String {
    let points: Vec<String> = xs
        .iter()
        .map(|x| format!(r#"{{"locations": [[{x}, 0.0]], "probs": [1]}}"#))
        .collect();
    format!(r#"{{"dim": 2, "points": [{}]}}"#, points.join(", "))
}

fn two_clusters(n_per: usize) -> Vec<f64> {
    let mut xs = Vec::new();
    for i in 0..n_per {
        xs.push(i as f64);
        xs.push(500.0 + i as f64);
    }
    xs
}

fn warm_report(doc: &Json) -> Json {
    doc.get("report")
        .and_then(|r| r.get("warm"))
        .unwrap_or_else(|| panic!("no report.warm in {}", doc.compact()))
        .clone()
}

fn total_evals(doc: &Json) -> f64 {
    doc.get("report")
        .and_then(|r| r.get("distance_evals"))
        .and_then(|d| d.get("total"))
        .and_then(Json::as_f64)
        .expect("report.distance_evals.total")
}

#[test]
fn warm_solve_reuses_the_base_and_unknown_bases_fall_back_cold() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();

    let (status, doc) = send(addr, "POST", "/instances", &doc_of(&two_clusters(20)));
    assert_eq!(status, 201, "{}", doc.compact());
    let base_id = str_field(&doc, "id");

    // Cold-solve the base so a prior exists server-side.
    let (status, cold) = send(
        addr,
        "POST",
        &format!("/instances/{base_id}/solve"),
        r#"{"k": 2}"#,
    );
    assert_eq!(status, 200);
    assert!(cold.get("report").and_then(|r| r.get("warm")).is_none());

    // Append a point close to an existing one; the response names the
    // parent so the client can chain without bookkeeping.
    let (status, appended) = send(
        addr,
        "POST",
        &format!("/instances/{base_id}/append"),
        &doc_of(&[2.5]),
    );
    assert_eq!(status, 201, "{}", appended.compact());
    let parent_digest = str_field(&appended, "parent_digest");
    assert_eq!(parent_digest, base_id);
    let grown_id = str_field(&appended, "id");

    // Warm solve of the grown instance, chained from the parent.
    let (status, warm) = send(
        addr,
        "POST",
        &format!("/instances/{grown_id}/solve?base={parent_digest}"),
        r#"{"k": 2}"#,
    );
    assert_eq!(status, 200, "{}", warm.compact());
    assert_eq!(str_field(&warm, "base"), parent_digest);
    let stats = warm_report(&warm);
    assert!(
        stats.get("fallback") == Some(&Json::Null),
        "warm solve should not have fallen back: {}",
        stats.compact()
    );
    assert_eq!(f64_field(&stats, "reused_centers"), 2.0);
    assert!(f64_field(&stats, "evals_saved") > 0.0);
    assert!(total_evals(&warm) < total_evals(&cold));
    // The warm radius still satisfies the cold approximation contract.
    assert!(f64_field(&warm, "certain_radius") <= 2.0 * f64_field(&cold, "certain_radius") + 1e-9);

    // An unknown base is never an error: cold solve, typed flag, no
    // "base" field, and nothing cached under the cold key.
    let (status, fallback) = send(
        addr,
        "POST",
        &format!("/instances/{grown_id}/solve?base=ffffffffffffffff"),
        r#"{"k": 2}"#,
    );
    assert_eq!(status, 200, "{}", fallback.compact());
    assert!(fallback.get("base").is_none());
    let stats = warm_report(&fallback);
    assert_eq!(str_field(&stats, "fallback"), "base_not_found");
    let (_, plain) = send(
        addr,
        "POST",
        &format!("/instances/{grown_id}/solve"),
        r#"{"k": 2}"#,
    );
    assert!(
        plain.get("report").and_then(|r| r.get("warm")).is_none(),
        "the flagged fallback must not poison the cold cache entry: {}",
        plain.compact()
    );
    server.shutdown();
}

#[test]
fn warm_and_cold_responses_cache_separately() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let (_, doc) = send(addr, "POST", "/instances", &doc_of(&two_clusters(12)));
    let base_id = str_field(&doc, "id");
    let (_, appended) = send(
        addr,
        "POST",
        &format!("/instances/{base_id}/append"),
        &doc_of(&[1.5]),
    );
    let grown_id = str_field(&appended, "id");
    let solve = |path: &str| {
        let (status, doc) = send(addr, "POST", path, r#"{"k": 2}"#);
        assert_eq!(status, 200, "{}", doc.compact());
        doc
    };
    let cold_path = format!("/instances/{grown_id}/solve");
    let warm_path = format!("/instances/{grown_id}/solve?base={base_id}");
    // Cold fills the cold key; the first warm request must not hit it.
    assert_eq!(solve(&cold_path).get("cached"), Some(&Json::from(false)));
    assert_eq!(solve(&cold_path).get("cached"), Some(&Json::from(true)));
    let first_warm = solve(&warm_path);
    assert_eq!(first_warm.get("cached"), Some(&Json::from(false)));
    assert_eq!(solve(&warm_path).get("cached"), Some(&Json::from(true)));
    // And the warm fill did not clobber the cold entry.
    let cold_again = solve(&cold_path);
    assert_eq!(cold_again.get("cached"), Some(&Json::from(true)));
    assert!(cold_again
        .get("report")
        .and_then(|r| r.get("warm"))
        .is_none());
    server.shutdown();
}

#[test]
fn append_with_k_solves_warm_in_one_round_trip_and_chains() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let (_, doc) = send(addr, "POST", "/instances", &doc_of(&two_clusters(16)));
    let mut id = str_field(&doc, "id");

    // An 8-epoch append chain: every epoch re-solves warm off its parent
    // in the append response itself.
    for epoch in 0..8u32 {
        let x = 3.0 + f64::from(epoch) * 0.25;
        let (status, appended) = send(
            addr,
            "POST",
            &format!("/instances/{id}/append?k=2"),
            &doc_of(&[x]),
        );
        assert!(
            status == 200 || status == 201,
            "epoch {epoch}: {}",
            appended.compact()
        );
        assert_eq!(str_field(&appended, "parent_digest"), id);
        let solution = appended
            .get("solution")
            .unwrap_or_else(|| panic!("append?k= returns a solution: {}", appended.compact()));
        assert_eq!(str_field(solution, "base"), id);
        let stats = warm_report(solution);
        // Epoch 0's prior is a cold solve of the original instance; every
        // later epoch chains off the previous epoch's *warm* solution —
        // the certificate must keep holding.
        assert!(
            stats.get("fallback") == Some(&Json::Null),
            "epoch {epoch} fell back: {}",
            stats.compact()
        );
        assert!(f64_field(&stats, "evals_saved") > 0.0, "epoch {epoch}");
        id = str_field(&appended, "id");
    }
    server.shutdown();
}

#[test]
fn solve_loo_returns_every_variant_and_matches_the_base_solve() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let xs: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0, 100.0, 101.0, 102.0, 103.0];
    let (_, doc) = send(addr, "POST", "/instances", &doc_of(&xs));
    let id = str_field(&doc, "id");

    let (status, loo) = send(
        addr,
        "POST",
        &format!("/instances/{id}/solve_loo"),
        r#"{"k": 2}"#,
    );
    assert_eq!(status, 200, "{}", loo.compact());
    assert_eq!(f64_field(&loo, "count"), xs.len() as f64);
    let variants = loo
        .get("variants")
        .and_then(Json::as_array)
        .expect("variants array");
    assert_eq!(variants.len(), xs.len());
    for (i, v) in variants.iter().enumerate() {
        assert_eq!(f64_field(v, "removed"), i as f64);
        assert!(f64_field(v, "ecost") >= 0.0);
        assert!(v.get("reused").and_then(Json::as_bool).is_some());
    }
    assert_eq!(
        f64_field(&loo, "reused_variants") + f64_field(&loo, "resolved_variants"),
        xs.len() as f64
    );
    // The embedded base solution is the plain cold solve, bit for bit.
    let (_, cold) = send(
        addr,
        "POST",
        &format!("/instances/{id}/solve"),
        r#"{"k": 2}"#,
    );
    let base = loo.get("base").expect("base solution");
    assert_eq!(
        f64_field(base, "ecost").to_bits(),
        f64_field(&cold, "ecost").to_bits()
    );

    // Unknown instances and bad bodies surface as typed errors.
    let (status, _) = send(addr, "POST", "/instances/zzz/solve_loo", r#"{"k": 2}"#);
    assert_eq!(status, 404);
    let (status, _) = send(
        addr,
        "POST",
        &format!("/instances/{id}/solve_loo"),
        r#"{"k": 0}"#,
    );
    assert_eq!(status, 422);
    server.shutdown();
}

#[test]
fn metrics_expose_warm_counters_and_the_loo_route() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let (_, doc) = send(addr, "POST", "/instances", &doc_of(&two_clusters(10)));
    let base_id = str_field(&doc, "id");
    let (_, appended) = send(
        addr,
        "POST",
        &format!("/instances/{base_id}/append"),
        &doc_of(&[0.5]),
    );
    let grown_id = str_field(&appended, "id");
    // One successful warm solve, one unknown-base fallback, one LOO.
    let (status, _) = send(
        addr,
        "POST",
        &format!("/instances/{grown_id}/solve?base={base_id}"),
        r#"{"k": 2}"#,
    );
    assert_eq!(status, 200);
    let (status, _) = send(
        addr,
        "POST",
        &format!("/instances/{grown_id}/solve?base=0000000000000000"),
        r#"{"k": 2}"#,
    );
    assert_eq!(status, 200);
    let (status, _) = send(
        addr,
        "POST",
        &format!("/instances/{grown_id}/solve_loo"),
        r#"{"k": 2}"#,
    );
    assert_eq!(status, 200);

    let (_, metrics) = get(addr, "/metrics");
    let warm = metrics
        .get("solves")
        .and_then(|s| s.get("warm"))
        .expect("solves.warm section");
    assert!(f64_field(warm, "count") >= 2.0, "{}", warm.compact());
    assert!(f64_field(warm, "evals_saved") > 0.0);
    assert!(f64_field(warm, "fallback_cold") >= 1.0);
    assert_eq!(
        metrics
            .get("requests")
            .and_then(|r| r.get("instances_solve_loo"))
            .and_then(Json::as_f64),
        Some(1.0)
    );
    server.shutdown();
}

#[test]
fn stream_solutions_chain_epochs_through_the_slot() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let (status, doc) = send(addr, "POST", "/streams", r#"{"k": 2, "budget": 64}"#);
    assert_eq!(status, 201);
    let id = str_field(&doc, "id");
    let push = |xs: &[f64]| {
        let (status, doc) = send(addr, "POST", &format!("/streams/{id}/push"), &doc_of(xs));
        assert_eq!(status, 200, "{}", doc.compact());
    };
    push(&two_clusters(8));
    let (status, first) = get(addr, &format!("/streams/{id}/solution"));
    assert_eq!(status, 200, "{}", first.compact());
    assert_eq!(first.get("cached"), Some(&Json::from(false)));
    // Unchanged stream: served from the digest-keyed solution cache.
    let (_, again) = get(addr, &format!("/streams/{id}/solution"));
    assert_eq!(again.get("cached"), Some(&Json::from(true)));
    assert_eq!(
        f64_field(&again, "ecost").to_bits(),
        f64_field(&first, "ecost").to_bits()
    );
    // Evolved stream: the solve warm-starts from the previous epoch
    // (successful or flagged-fallback — either way a 200 with warm
    // stats, chained off the previous digest).
    push(&[250.0]);
    let (status, evolved) = get(addr, &format!("/streams/{id}/solution"));
    assert_eq!(status, 200, "{}", evolved.compact());
    let stats = warm_report(&evolved);
    assert!(stats.get("fallback").is_some());
    assert_eq!(
        str_field(&evolved, "base"),
        str_field(&first, "instance_digest")
    );
    server.shutdown();
}
