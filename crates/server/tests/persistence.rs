//! End-to-end persistence tests: a server with `data_dir` set must come
//! back from a restart bit-identical — every acknowledged instance and
//! stream epoch present, every stream digest equal to its pre-restart
//! value — and a server without `data_dir` must behave exactly as it
//! always has (including evicting cached solutions on DELETE).
//!
//! These drive the real HTTP surface through [`ukc_server::client`];
//! the process-crash variant (SIGKILL, separate process) lives in
//! `crates/cli/tests/crash_recovery.rs`.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use ukc_json::Json;
use ukc_server::{client, serve, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ukc-server-persist-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, snapshot_interval: u64) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        snapshot_interval,
        ..ServerConfig::default()
    }
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    let r = client::request(addr, "GET", path, None).expect("request");
    (r.status, Json::parse(&r.body).expect("response is JSON"))
}

fn send(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let r = client::request(addr, method, path, Some(body)).expect("request");
    (r.status, Json::parse(&r.body).expect("response is JSON"))
}

fn str_field(doc: &Json, key: &str) -> String {
    doc.get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("missing string {key:?} in {}", doc.compact()))
        .to_string()
}

fn f64_field(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("missing number {key:?} in {}", doc.compact()))
}

/// A deterministic 2-d uncertain instance document; distinct `epoch`
/// values give distinct chunks, so a stream's digest evolves per push.
fn chunk_doc(epoch: usize, n: usize) -> String {
    let points: Vec<String> = (0..n)
        .map(|i| {
            let x = i as f64 + 0.125;
            let y = epoch as f64 * 3.5;
            format!(
                r#"{{"locations": [[{x}, {y}], [{}, {}]], "probs": [0.25, 0.75]}}"#,
                x + 0.5,
                y + 1.75
            )
        })
        .collect();
    format!(r#"{{"dim": 2, "points": [{}]}}"#, points.join(", "))
}

fn push(addr: SocketAddr, id: &str, epoch: usize) -> Json {
    let (status, doc) = send(
        addr,
        "POST",
        &format!("/streams/{id}/push"),
        &chunk_doc(epoch, 16),
    );
    assert_eq!(status, 200, "push failed: {}", doc.compact());
    doc
}

fn create_stream(addr: SocketAddr) -> String {
    let (status, doc) = send(addr, "POST", "/streams", r#"{"k": 2, "budget": 8}"#);
    assert_eq!(status, 201, "stream create failed: {}", doc.compact());
    str_field(&doc, "id")
}

fn recovery_stats(addr: SocketAddr) -> Json {
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    metrics
        .get("durability")
        .and_then(|d| d.get("recovery"))
        .expect("durable server exposes durability.recovery")
        .clone()
}

/// The core restart contract, checked against a continuously-running
/// in-memory control server fed the identical request sequence: after a
/// restart the durable server's streams carry the same digests, and
/// keep producing the same digests for further pushes.
#[test]
fn restart_recovers_instances_and_streams_bit_identically() {
    let dir = temp_dir("restart");
    let control = serve(ServerConfig::default()).unwrap();
    let control_stream = create_stream(control.addr());

    let instance_id;
    let stream_id;
    {
        let server = serve(durable_config(&dir, 0)).unwrap();
        let (status, doc) = send(server.addr(), "POST", "/instances", &chunk_doc(0, 24));
        assert_eq!(status, 201);
        instance_id = str_field(&doc, "id");
        stream_id = create_stream(server.addr());
        for epoch in 1..=3usize {
            let ours = push(server.addr(), &stream_id, epoch);
            let theirs = push(control.addr(), &control_stream, epoch);
            assert_eq!(
                str_field(&ours, "digest"),
                str_field(&theirs, "digest"),
                "durable and in-memory servers diverged at epoch {epoch}"
            );
        }
        server.shutdown();
    }

    let server = serve(durable_config(&dir, 0)).unwrap();
    let (status, doc) = get(server.addr(), &format!("/instances/{instance_id}"));
    assert_eq!(status, 200, "instance lost: {}", doc.compact());
    assert_eq!(str_field(&doc, "id"), instance_id);

    let (status, doc) = get(server.addr(), &format!("/streams/{stream_id}"));
    assert_eq!(status, 200, "stream lost: {}", doc.compact());
    let (_, control_doc) = get(control.addr(), &format!("/streams/{control_stream}"));
    assert_eq!(str_field(&doc, "digest"), str_field(&control_doc, "digest"));
    assert_eq!(f64_field(&doc, "epochs"), 3.0);
    assert_eq!(
        f64_field(&doc, "points_seen"),
        f64_field(&control_doc, "points_seen")
    );

    let recovery = recovery_stats(server.addr());
    assert_eq!(f64_field(&recovery, "instances"), 1.0);
    assert_eq!(f64_field(&recovery, "streams"), 1.0);
    assert_eq!(f64_field(&recovery, "replayed_epochs"), 3.0);

    // The recovered state is live, not an inert copy: further pushes
    // track the control server exactly.
    let ours = push(server.addr(), &stream_id, 4);
    let theirs = push(control.addr(), &control_stream, 4);
    assert_eq!(str_field(&ours, "digest"), str_field(&theirs, "digest"));

    // Stream IDs keep advancing past recovered ones instead of reusing.
    let fresh = create_stream(server.addr());
    assert_ne!(fresh, stream_id);

    server.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: instances with *random* probabilities must survive a
/// restart. Random distributions rarely sum to exactly 1.0 after the
/// constructor's normalizing divide, and renormalization is not
/// bit-idempotent — recovery must rebuild stored docs verbatim
/// ([`JsonInstance::to_set_verbatim`]) or the boot-time digest check
/// rejects segments the live server itself wrote.
#[test]
fn restart_recovers_random_prob_instances() {
    use ukc_json::format::JsonInstance;
    use ukc_uncertain::generators::{clustered, ProbModel};

    let dir = temp_dir("random-probs");
    let doc = JsonInstance::from_set(&clustered(9, 100, 4, 2, 3, 5.0, 1.5, ProbModel::Random))
        .to_json()
        .compact();

    let instance_id;
    {
        let server = serve(durable_config(&dir, 0)).unwrap();
        let (status, created) = send(server.addr(), "POST", "/instances", &doc);
        assert_eq!(status, 201, "upload failed: {}", created.compact());
        instance_id = str_field(&created, "id");
        server.shutdown();
    }

    let server = serve(durable_config(&dir, 0)).unwrap();
    let (status, doc) = get(server.addr(), &format!("/instances/{instance_id}"));
    assert_eq!(status, 200, "random-prob instance lost: {}", doc.compact());
    assert_eq!(str_field(&doc, "id"), instance_id);
    assert_eq!(f64_field(&recovery_stats(server.addr()), "instances"), 1.0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// With snapshots on, recovery replays only the WAL tail past the last
/// snapshot — `replayed_epochs` must come in under the epoch total.
#[test]
fn snapshots_bound_recovery_replay() {
    let dir = temp_dir("snapshot");
    let total_epochs = 5usize;
    let digest;
    let stream_id;
    {
        let server = serve(durable_config(&dir, 2)).unwrap();
        stream_id = create_stream(server.addr());
        let mut last = String::new();
        for epoch in 1..=total_epochs {
            last = str_field(&push(server.addr(), &stream_id, epoch), "digest");
        }
        digest = last;
        server.shutdown();
    }

    let server = serve(durable_config(&dir, 2)).unwrap();
    let (status, doc) = get(server.addr(), &format!("/streams/{stream_id}"));
    assert_eq!(status, 200);
    assert_eq!(str_field(&doc, "digest"), digest);
    assert_eq!(f64_field(&doc, "epochs"), total_epochs as f64);

    let recovery = recovery_stats(server.addr());
    assert_eq!(f64_field(&recovery, "snapshot_restores"), 1.0);
    let replayed = f64_field(&recovery, "replayed_epochs");
    assert!(
        replayed < total_epochs as f64,
        "snapshot did not shorten replay: {replayed} of {total_epochs} epochs"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn WAL tail (the crash left a partial record) is dropped —
/// surfaced in the recovery stats — and everything acknowledged before
/// it survives untouched.
#[test]
fn torn_wal_tail_is_dropped_not_fatal() {
    let dir = temp_dir("torn");
    let digest;
    let stream_id;
    {
        let server = serve(durable_config(&dir, 0)).unwrap();
        stream_id = create_stream(server.addr());
        push(server.addr(), &stream_id, 1);
        digest = str_field(&push(server.addr(), &stream_id, 2), "digest");
        server.shutdown();
    }
    // A 3-byte tail cannot hold a frame header: exactly what a crash
    // mid-append leaves behind.
    use std::io::Write;
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("wal").join("streams.wal"))
        .unwrap();
    wal.write_all(&[0xde, 0xad, 0xbe]).unwrap();
    drop(wal);

    let server = serve(durable_config(&dir, 0)).unwrap();
    let recovery = recovery_stats(server.addr());
    assert_eq!(
        recovery.get("torn_tail").and_then(|v| v.as_bool()),
        Some(true)
    );
    let (status, doc) = get(server.addr(), &format!("/streams/{stream_id}"));
    assert_eq!(status, 200);
    assert_eq!(str_field(&doc, "digest"), digest);
    assert_eq!(f64_field(&doc, "epochs"), 2.0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// DELETE is durable too: tombstoned instances and deleted streams do
/// not resurrect on the next boot.
#[test]
fn deletes_survive_a_restart() {
    let dir = temp_dir("delete");
    let instance_id;
    let stream_id;
    {
        let server = serve(durable_config(&dir, 0)).unwrap();
        let (_, doc) = send(server.addr(), "POST", "/instances", &chunk_doc(0, 8));
        instance_id = str_field(&doc, "id");
        stream_id = create_stream(server.addr());
        push(server.addr(), &stream_id, 1);
        let (status, _) = send(
            server.addr(),
            "DELETE",
            &format!("/instances/{instance_id}"),
            "",
        );
        assert_eq!(status, 200);
        let (status, _) = send(
            server.addr(),
            "DELETE",
            &format!("/streams/{stream_id}"),
            "",
        );
        assert_eq!(status, 200);
        server.shutdown();
    }

    let server = serve(durable_config(&dir, 0)).unwrap();
    let (status, _) = get(server.addr(), &format!("/instances/{instance_id}"));
    assert_eq!(status, 404);
    let (status, _) = get(server.addr(), &format!("/streams/{stream_id}"));
    assert_eq!(status, 404);
    let recovery = recovery_stats(server.addr());
    assert_eq!(f64_field(&recovery, "instances"), 0.0);
    assert_eq!(f64_field(&recovery, "streams"), 0.0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-memory mode is byte-identical to the pre-persistence server: no
/// `durability` section in `/metrics`.
#[test]
fn in_memory_metrics_omit_the_durability_section() {
    let server = serve(ServerConfig::default()).unwrap();
    let (status, metrics) = get(server.addr(), "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.get("durability").is_none());
    server.shutdown();
}

/// Deleting an instance evicts its cached solutions (any config): a
/// re-uploaded identical instance starts cold, in-memory mode included.
#[test]
fn instance_delete_evicts_cached_solutions() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let instance = chunk_doc(0, 24);
    let (_, doc) = send(addr, "POST", "/instances", &instance);
    let id = str_field(&doc, "id");

    let solve = |expect_cached: bool, when: &str| {
        let (status, doc) = send(
            addr,
            "POST",
            &format!("/instances/{id}/solve"),
            r#"{"k": 2}"#,
        );
        assert_eq!(status, 200, "{when}: {}", doc.compact());
        assert_eq!(
            doc.get("cached").and_then(|v| v.as_bool()),
            Some(expect_cached),
            "{when}"
        );
    };
    solve(false, "first solve misses");
    solve(true, "second solve hits");

    let (status, _) = send(addr, "DELETE", &format!("/instances/{id}"), "");
    assert_eq!(status, 200);
    // Content-addressing gives the re-upload the same ID — without
    // eviction the stale entry would hit.
    let (_, doc) = send(addr, "POST", "/instances", &instance);
    assert_eq!(str_field(&doc, "id"), id);
    solve(false, "solve after delete + re-upload misses");
    server.shutdown();
}

/// Deleting a stream evicts the solutions cached for its current state:
/// an identical replacement stream (same digest) starts cold.
#[test]
fn stream_delete_evicts_cached_solutions() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();

    let run = |expect_cached: bool| {
        let id = create_stream(addr);
        push(addr, &id, 1);
        let (status, doc) = get(addr, &format!("/streams/{id}/solution"));
        assert_eq!(status, 200, "{}", doc.compact());
        assert_eq!(
            doc.get("cached").and_then(|v| v.as_bool()),
            Some(expect_cached),
            "stream {id}"
        );
        // Reading an unchanged stream again is the cache's bread and
        // butter — always a hit.
        let (_, doc) = get(addr, &format!("/streams/{id}/solution"));
        assert_eq!(doc.get("cached").and_then(|v| v.as_bool()), Some(true));
        let (status, _) = send(addr, "DELETE", &format!("/streams/{id}"), "");
        assert_eq!(status, 200);
        id
    };
    let first = run(false);
    // Same feed, same digest; a hit here would mean delete left the
    // cache dirty.
    let second = run(false);
    assert_ne!(first, second);
    server.shutdown();
}
