//! Scaling studies S1–S3: reproduce Table 1's *running time* columns.
//!
//! The paper's time claims:
//! * row 1: the expected point is computable in O(z);
//! * rows 2/4/6: representative construction + Gonzalez in
//!   O(nz + n log k) (we measure the O(nz + nk) implementation — the
//!   log-k variant of Feder–Greene changes constants, not the n-scaling);
//! * row 8: the 1-D solver in O(zn log zn + n log k log n).
//!
//! Each study doubles the driving parameter and reports the time ratio per
//! doubling; a ratio near 2 confirms linear scaling, near 1 confirms
//! constancy.

use std::time::Instant;
use ukc_core::{AssignmentRule, Problem, SolverConfig};
use ukc_json::Json;
use ukc_onedim::solve_one_d;
use ukc_uncertain::generators::{line_instance, uniform_box, ProbModel};
use ukc_uncertain::{expected_point, UncertainPoint};

/// One scaling measurement.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// The driving parameter's value (z or n).
    pub param: usize,
    /// Median wall time in nanoseconds.
    pub nanos: u128,
    /// Ratio to the previous measurement (NaN for the first).
    pub ratio: f64,
}

/// A complete scaling study.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// Study id (S1..S3).
    pub id: String,
    /// What is measured.
    pub description: String,
    /// The claimed asymptotic in the driving parameter.
    pub claim: String,
    /// Measurements.
    pub points: Vec<ScalePoint>,
}

impl ScaleReport {
    /// The study as a JSON document (what `save_scale` writes).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id.as_str())),
            ("description", Json::from(self.description.as_str())),
            ("claim", Json::from(self.claim.as_str())),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("param", Json::from(p.param)),
                        ("nanos", Json::from(p.nanos as f64)),
                        ("ratio", Json::from(p.ratio)),
                    ])
                })),
            ),
        ])
    }
}

fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn finish(id: &str, description: &str, claim: &str, raw: Vec<(usize, u128)>) -> ScaleReport {
    let mut points = Vec::with_capacity(raw.len());
    let mut prev: Option<u128> = None;
    for (param, nanos) in raw {
        let ratio = prev.map_or(f64::NAN, |p| nanos as f64 / p as f64);
        points.push(ScalePoint {
            param,
            nanos,
            ratio,
        });
        prev = Some(nanos);
    }
    ScaleReport {
        id: id.into(),
        description: description.into(),
        claim: claim.into(),
        points,
    }
}

/// S1: expected-point construction time vs z (claim: O(z)).
pub fn s1() -> ScaleReport {
    let mut raw = Vec::new();
    for exp in 4..=14u32 {
        let z = 1usize << exp;
        let set = uniform_box(1, 1, z, 2, 10.0, 1.0, ProbModel::Random);
        let up: &UncertainPoint<_> = set.point(0);
        let nanos = median_time(9, || expected_point(up));
        raw.push((z, nanos));
    }
    finish(
        "S1",
        "expected point P̄ of one uncertain point, z sweep",
        "O(z): time ratio ≈ 2 per doubling",
        raw,
    )
}

/// S2: full restricted pipeline (reps + Gonzalez + assignment) vs n
/// (claim: O(nz + nk) for fixed z, k — linear in n). Excludes the exact
/// cost report, which is O(N log N) bookkeeping shared by all methods.
pub fn s2() -> ScaleReport {
    let mut raw = Vec::new();
    for exp in 6..=13u32 {
        let n = 1usize << exp;
        let set = uniform_box(2, n, 4, 2, 100.0, 2.0, ProbModel::Random);
        let config = SolverConfig::builder()
            .rule(AssignmentRule::ExpectedPoint)
            .lower_bound(false)
            .build()
            .expect("static scaling config");
        let problem = Problem::euclidean(set, 8).expect("generated instances are valid");
        let nanos = median_time(5, || problem.solve(&config).expect("valid config"));
        raw.push((n, nanos));
    }
    finish(
        "S2",
        "restricted pipeline (P̄ + Gonzalez + EP assignment + exact cost), n sweep, z=4 k=8",
        "O(nz + nk) + O(nz log nz) cost report: ratio ≈ 2 per doubling",
        raw,
    )
}

/// S3: the exact 1-D solver vs n (claim: O(zn log zn) dominant term).
pub fn s3() -> ScaleReport {
    let mut raw = Vec::new();
    for exp in 6..=13u32 {
        let n = 1usize << exp;
        let set = line_instance(3, n, 4, 1000.0, 3.0, ProbModel::Random);
        let nanos = median_time(5, || solve_one_d(&set, 8));
        raw.push((n, nanos));
    }
    finish(
        "S3",
        "exact 1-D solver, n sweep, z=4 k=8",
        "O(zn log zn): ratio slightly above 2 per doubling",
        raw,
    )
}

/// Prints a scaling report as an aligned table.
pub fn print_scale(report: &ScaleReport) {
    println!("\n=== {} — {} ===", report.id, report.description);
    println!("claim: {}", report.claim);
    println!("{:>10} {:>14} {:>10}", "param", "median time", "ratio");
    println!("{}", "-".repeat(38));
    for p in &report.points {
        let time = if p.nanos > 10_000_000 {
            format!("{:.2} ms", p.nanos as f64 / 1e6)
        } else if p.nanos > 10_000 {
            format!("{:.2} µs", p.nanos as f64 / 1e3)
        } else {
            format!("{} ns", p.nanos)
        };
        if p.ratio.is_nan() {
            println!("{:>10} {:>14} {:>10}", p.param, time, "-");
        } else {
            println!("{:>10} {:>14} {:>10.2}", p.param, time, p.ratio);
        }
    }
}

/// Saves a scaling report as JSON under `reports/`.
pub fn save_scale(report: &ScaleReport) {
    if std::fs::create_dir_all("reports").is_err() {
        return;
    }
    let _ = std::fs::write(
        format!("reports/{}.json", report.id.to_lowercase()),
        report.to_json().pretty(),
    );
}
