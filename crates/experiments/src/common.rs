//! Shared experiment machinery: sound ratio certification, parallel seed
//! sweeps, and report serialization.
//!
//! ## Certification logic
//!
//! Each theorem asserts `alg ≤ bound · opt`. The continuous optimum `opt`
//! is not computable exactly, but we always have a certified sandwich
//! `LB ≤ opt ≤ UB` (lower bounds from `ukc_core::bounds` / reference
//! optimizers; upper bounds from the best solution any method finds,
//! including brute force over enriched candidate pools). This yields a
//! three-valued verdict per measurement:
//!
//! * `ratio_lb = alg / LB ≥ alg / opt` — if `ratio_lb ≤ bound`, the bound
//!   is **certified** to hold (PASS);
//! * `ratio_ub = alg / UB ≤ alg / opt` — if `ratio_ub > bound`, the bound
//!   is **certified** to fail (FAIL, would falsify the theorem or the
//!   implementation);
//! * otherwise the measurement is consistent with the bound (OK).

use std::path::Path;
use std::sync::Mutex;
use ukc_json::Json;

/// Verdict of a bound check (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// `alg/LB ≤ bound`: the bound is certified to hold.
    Pass,
    /// `alg/UB ≤ bound < alg/LB`: consistent with the bound.
    Ok,
    /// `alg/UB > bound`: certified violation.
    Fail,
}

/// One measured workload row of an experiment.
#[derive(Clone, Debug)]
pub struct Row {
    /// Human-readable workload descriptor.
    pub workload: String,
    /// Instance parameters as `key=value` fragments.
    pub params: String,
    /// Number of seeds aggregated.
    pub seeds: usize,
    /// Worst (largest) `alg / LB` across seeds.
    pub max_ratio_lb: f64,
    /// Worst (largest) `alg / UB` across seeds.
    pub max_ratio_ub: f64,
    /// Mean of `alg / UB` across seeds (the tight estimate).
    pub mean_ratio_ub: f64,
    /// The theorem's bound.
    pub bound: f64,
    /// The aggregate verdict (worst across seeds).
    pub verdict: Verdict,
}

/// A complete experiment report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id (e.g. "E4").
    pub id: String,
    /// Paper artifact reproduced (e.g. "Table 1 row 4").
    pub artifact: String,
    /// One-line description.
    pub description: String,
    /// Measured rows.
    pub rows: Vec<Row>,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Ok => "ok",
            Verdict::Fail => "fail",
        }
    }
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("params", Json::from(self.params.as_str())),
            ("seeds", Json::from(self.seeds)),
            ("max_ratio_lb", Json::from(self.max_ratio_lb)),
            ("max_ratio_ub", Json::from(self.max_ratio_ub)),
            ("mean_ratio_ub", Json::from(self.mean_ratio_ub)),
            ("bound", Json::from(self.bound)),
            ("verdict", Json::from(self.verdict.as_str())),
        ])
    }
}

impl Report {
    /// The report as a JSON document (what `save_report` writes).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id.as_str())),
            ("artifact", Json::from(self.artifact.as_str())),
            ("description", Json::from(self.description.as_str())),
            ("rows", Json::arr(self.rows.iter().map(Row::to_json))),
        ])
    }
}

/// One seed's measurement: `(alg, lb, ub)`.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// The algorithm's exact expected cost.
    pub alg: f64,
    /// Certified lower bound on the optimum.
    pub lb: f64,
    /// Certified upper bound on the optimum (best solution found by any
    /// method, including `alg` itself).
    pub ub: f64,
}

/// Aggregates per-seed measurements into a [`Row`].
pub fn aggregate(workload: &str, params: &str, bound: f64, measurements: &[Measurement]) -> Row {
    assert!(!measurements.is_empty(), "need at least one measurement");
    let mut max_lb: f64 = 0.0;
    let mut max_ub: f64 = 0.0;
    let mut sum_ub = 0.0;
    for m in measurements {
        assert!(
            m.lb <= m.ub + 1e-9,
            "inconsistent sandwich: lb {} > ub {} ({workload})",
            m.lb,
            m.ub
        );
        // ub includes alg among candidates, so alg >= ub always.
        let rl = if m.lb > 0.0 { m.alg / m.lb } else { 1.0 };
        let ru = if m.ub > 0.0 { m.alg / m.ub } else { 1.0 };
        max_lb = max_lb.max(rl);
        max_ub = max_ub.max(ru);
        sum_ub += ru;
    }
    let verdict = if max_ub > bound + 1e-6 {
        Verdict::Fail
    } else if max_lb <= bound + 1e-6 {
        Verdict::Pass
    } else {
        Verdict::Ok
    };
    Row {
        workload: workload.to_string(),
        params: params.to_string(),
        seeds: measurements.len(),
        max_ratio_lb: max_lb,
        max_ratio_ub: max_ub,
        mean_ratio_ub: sum_ub / measurements.len() as f64,
        bound,
        verdict,
    }
}

/// Runs `f(seed)` for every seed in parallel (scoped threads), preserving
/// seed order in the output.
pub fn par_sweep<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(seeds.len()));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let out = f(seeds[i]);
                results.lock().expect("no worker panics").push((i, out));
            });
        }
    });
    let mut v = results.into_inner().expect("no worker panics");
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, t)| t).collect()
}

/// Prints a report as an aligned text table.
pub fn print_report(report: &Report) {
    println!("\n=== {} — {} ===", report.id, report.artifact);
    println!("{}", report.description);
    println!(
        "{:<26} {:<30} {:>5} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "workload", "params", "seeds", "max r/LB", "max r/UB", "mean", "bound", "verdict"
    );
    println!("{}", "-".repeat(110));
    for r in &report.rows {
        println!(
            "{:<26} {:<30} {:>5} {:>9.3} {:>9.3} {:>9.3} {:>7.2} {:>7}",
            r.workload,
            r.params,
            r.seeds,
            r.max_ratio_lb,
            r.max_ratio_ub,
            r.mean_ratio_ub,
            r.bound,
            match r.verdict {
                Verdict::Pass => "PASS",
                Verdict::Ok => "ok",
                Verdict::Fail => "FAIL",
            }
        );
    }
}

/// Saves a report as JSON under `reports/`.
pub fn save_report(report: &Report) {
    let dir = Path::new("reports");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create reports/; skipping JSON dump");
        return;
    }
    let path = dir.join(format!("{}.json", report.id.to_lowercase()));
    if let Err(e) = std::fs::write(&path, report.to_json().pretty()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Returns `true` when any row of any report certifies a violation.
pub fn any_failures(reports: &[Report]) -> bool {
    reports
        .iter()
        .any(|r| r.rows.iter().any(|row| row.verdict == Verdict::Fail))
}
