//! Experiment driver: regenerates the paper's Table 1 as *measured*
//! approximation factors, plus scaling studies for its running-time
//! columns and ablations of the design choices.
//!
//! ```text
//! cargo run -p ukc-experiments --release -- table1     # E1..E9
//! cargo run -p ukc-experiments --release -- e4         # one experiment
//! cargo run -p ukc-experiments --release -- scaling    # S1..S3
//! cargo run -p ukc-experiments --release -- ablation   # A1..A4
//! cargo run -p ukc-experiments --release -- all
//! ```
//!
//! JSON copies of every report land in `reports/`.

mod ablation;
mod common;
mod scaling;
mod table1;

use common::{any_failures, print_report, save_report, Report};

/// Experiment registry entry: name plus constructor.
type Exp = (&'static str, fn() -> Report);

fn run_table1(filter: Option<&str>) -> Vec<Report> {
    let all: Vec<Exp> = vec![
        ("e1", table1::e1),
        ("e2", table1::e2),
        ("e3", table1::e3),
        ("e4", table1::e4),
        ("e5", table1::e5),
        ("e6", table1::e6),
        ("e7", table1::e7),
        ("e8", table1::e8),
        ("e9", table1::e9),
    ];
    let mut reports = Vec::new();
    for (name, f) in all {
        if filter.is_none_or(|w| w == name) {
            let r = f();
            print_report(&r);
            save_report(&r);
            reports.push(r);
        }
    }
    reports
}

fn run_scaling() {
    for r in [scaling::s1(), scaling::s2(), scaling::s3()] {
        scaling::print_scale(&r);
        scaling::save_scale(&r);
    }
}

fn run_ablation() {
    for r in [
        ablation::a1(),
        ablation::a2(),
        ablation::a3(),
        ablation::a4(),
    ] {
        ablation::print_ablation(&r);
        ablation::save_ablation(&r);
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut reports = Vec::new();
    match arg.as_str() {
        "table1" => reports = run_table1(None),
        "scaling" => run_scaling(),
        "ablation" => run_ablation(),
        "all" => {
            reports = run_table1(None);
            run_scaling();
            run_ablation();
        }
        exp if exp.starts_with('e') && exp.len() == 2 => {
            reports = run_table1(Some(exp));
            if reports.is_empty() {
                eprintln!("unknown experiment {exp}; use e1..e9");
                std::process::exit(2);
            }
        }
        other => {
            eprintln!("usage: ukc-experiments [table1|scaling|ablation|all|e1..e9] (got {other})");
            std::process::exit(2);
        }
    }
    if any_failures(&reports) {
        eprintln!("\nCERTIFIED BOUND VIOLATION DETECTED — see FAIL rows above");
        std::process::exit(1);
    }
    println!("\nno certified violations; JSON reports in reports/");
}
