//! Ablation studies A1–A4: the design choices DESIGN.md calls out.
//!
//! * A1 — assignment rule (ED vs EP vs OC) with centers held fixed;
//! * A2 — representative construction (P̄ vs P̃ vs mode);
//! * A3 — exact `E[max]` vs Monte-Carlo estimation (accuracy per sample
//!   budget);
//! * A4 — certain-solver tier (Gonzalez vs +local-search vs grid vs exact
//!   discrete).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ukc_baselines::mode_baseline;
use ukc_core::{AssignmentRule, CertainStrategy, Problem, Solution, SolverConfig};
use ukc_json::Json;
use ukc_metric::Euclidean;
use ukc_uncertain::generators::{clustered, ring, two_scale, uniform_box, ProbModel};
use ukc_uncertain::{ecost_assigned, ecost_monte_carlo};

/// A named ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Workload name.
    pub workload: String,
    /// Variant name.
    pub variant: String,
    /// Mean exact expected cost across seeds (or the study's metric).
    pub value: f64,
}

/// A complete ablation report.
#[derive(Clone, Debug)]
pub struct AblationReport {
    /// Study id (A1..A4).
    pub id: String,
    /// Description.
    pub description: String,
    /// The metric reported in `value`.
    pub metric: String,
    /// Rows.
    pub rows: Vec<AblationRow>,
}

impl AblationReport {
    /// The report as a JSON document (what `save_ablation` writes).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id.as_str())),
            ("description", Json::from(self.description.as_str())),
            ("metric", Json::from(self.metric.as_str())),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("workload", Json::from(r.workload.as_str())),
                        ("variant", Json::from(r.variant.as_str())),
                        ("value", Json::from(r.value)),
                    ])
                })),
            ),
        ])
    }
}

/// A named, boxed seeded workload generator.
type Workload = (
    &'static str,
    Box<dyn Fn(u64) -> ukc_uncertain::UncertainSet<ukc_metric::Point> + Sync>,
);

fn workloads() -> Vec<Workload> {
    vec![
        (
            "clustered",
            Box::new(|s| clustered(s, 40, 4, 2, 3, 5.0, 1.5, ProbModel::Random)),
        ),
        (
            "uniform",
            Box::new(|s| uniform_box(s, 40, 4, 2, 50.0, 2.0, ProbModel::Random)),
        ),
        (
            "ring",
            Box::new(|s| ring(s, 40, 4, 30.0, 0.5, ProbModel::Random)),
        ),
        (
            "two-scale",
            Box::new(|s| two_scale(s, 40, 4, 2, 1.0, 150.0, 0.3)),
        ),
    ]
}

const ABLATION_SEEDS: u64 = 6;
const K: usize = 3;

/// One Euclidean solve through the `Problem` API (no per-solve bound:
/// the ablations compare costs, not certificates).
fn solve_eu(
    set: &ukc_uncertain::UncertainSet<ukc_metric::Point>,
    rule: AssignmentRule,
    strategy: CertainStrategy,
) -> Solution<ukc_metric::Point> {
    let config = SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        // Only the Grid strategy reads ε; 0.25 matches the "grid ε=0.25"
        // tier label in a4().
        .eps(0.25)
        .lower_bound(false)
        .build()
        .expect("static ablation config");
    Problem::euclidean(set.clone(), K)
        .expect("generated instances are valid")
        .solve(&config)
        .expect("euclidean pipeline accepts every ablation config")
}

fn mean(vals: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = vals.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// A1: with the same Gonzalez centers (from P̄), how much does the
/// assignment rule alone change the exact expected cost?
pub fn a1() -> AblationReport {
    let mut rows = Vec::new();
    for (name, gen) in &workloads() {
        for (variant, rule) in [
            ("ED", AssignmentRule::ExpectedDistance),
            ("EP", AssignmentRule::ExpectedPoint),
            ("OC", AssignmentRule::OneCenter),
        ] {
            let value = mean((0..ABLATION_SEEDS).map(|s| {
                // All three share the P̄-based centers: compute centers via
                // the EP pipeline, then re-assign.
                let set = gen(s);
                let base = solve_eu(
                    &set,
                    AssignmentRule::ExpectedPoint,
                    CertainStrategy::Gonzalez,
                );
                let assignment = match rule {
                    AssignmentRule::ExpectedDistance => {
                        ukc_core::assign_ed(&set, &base.centers, &Euclidean)
                    }
                    AssignmentRule::ExpectedPoint => base.assignment.clone(),
                    AssignmentRule::OneCenter => {
                        let reps: Vec<_> = set
                            .iter()
                            .map(ukc_uncertain::one_center_euclidean)
                            .collect();
                        ukc_core::assign_oc(&set, &base.centers, &reps, &Euclidean)
                    }
                };
                ecost_assigned(&set, &base.centers, &assignment, &Euclidean)
            }));
            rows.push(AblationRow {
                workload: name.to_string(),
                variant: variant.to_string(),
                value,
            });
        }
    }
    AblationReport {
        id: "A1".into(),
        description: "Assignment rule with fixed P̄/Gonzalez centers".into(),
        metric: "mean exact Ecost".into(),
        rows,
    }
}

/// A2: representative construction — expected point, 1-center, or mode.
pub fn a2() -> AblationReport {
    let mut rows = Vec::new();
    for (name, gen) in &workloads() {
        for variant in ["P̄ (expected point)", "P̃ (1-center)", "mode"] {
            let value = mean((0..ABLATION_SEEDS).map(|s| {
                let set = gen(s);
                match variant {
                    "P̄ (expected point)" => {
                        solve_eu(
                            &set,
                            AssignmentRule::ExpectedPoint,
                            CertainStrategy::Gonzalez,
                        )
                        .ecost
                    }
                    "P̃ (1-center)" => {
                        solve_eu(&set, AssignmentRule::OneCenter, CertainStrategy::Gonzalez).ecost
                    }
                    _ => mode_baseline(&set, K, &Euclidean).ecost,
                }
            }));
            rows.push(AblationRow {
                workload: name.to_string(),
                variant: variant.to_string(),
                value,
            });
        }
    }
    AblationReport {
        id: "A2".into(),
        description: "Representative construction (pipeline end-to-end)".into(),
        metric: "mean exact Ecost".into(),
        rows,
    }
}

/// A3: Monte-Carlo sample budget needed to match the exact `E[max]` sweep:
/// reports |MC − exact| / exact per budget.
pub fn a3() -> AblationReport {
    let mut rows = Vec::new();
    let set = clustered(9, 40, 4, 2, 3, 5.0, 1.5, ProbModel::HeavyTail);
    let sol = solve_eu(
        &set,
        AssignmentRule::ExpectedPoint,
        CertainStrategy::Gonzalez,
    );
    let exact = sol.ecost;
    for budget in [100usize, 1_000, 10_000, 100_000] {
        let value = mean((0..ABLATION_SEEDS).map(|s| {
            let mut rng = StdRng::seed_from_u64(s);
            let mc = ecost_monte_carlo(
                &set,
                &sol.centers,
                Some(&sol.assignment),
                &Euclidean,
                budget,
                &mut rng,
            );
            (mc.mean - exact).abs() / exact
        }));
        rows.push(AblationRow {
            workload: "clustered".into(),
            variant: format!("{budget} samples"),
            value,
        });
    }
    AblationReport {
        id: "A3".into(),
        description: "Monte-Carlo vs exact expected cost (the exact sweep costs ~one sort)".into(),
        metric: "mean relative error vs exact".into(),
        rows,
    }
}

/// A4: certain-solver tier on the same representatives.
pub fn a4() -> AblationReport {
    let mut rows = Vec::new();
    let tiers: Vec<(&str, CertainStrategy)> = vec![
        ("Gonzalez (2-approx)", CertainStrategy::Gonzalez),
        (
            "Gonzalez + local search",
            CertainStrategy::GonzalezLocalSearch { rounds: 30 },
        ),
        ("grid ε=0.25", CertainStrategy::Grid),
        ("exact discrete", CertainStrategy::ExactDiscrete),
    ];
    for (name, gen) in &workloads() {
        for (variant, solver) in &tiers {
            let value = mean((0..ABLATION_SEEDS).map(|s| {
                let set = gen(s);
                solve_eu(&set, AssignmentRule::ExpectedPoint, *solver).ecost
            }));
            rows.push(AblationRow {
                workload: name.to_string(),
                variant: variant.to_string(),
                value,
            });
        }
    }
    AblationReport {
        id: "A4".into(),
        description: "Certain k-center solver tier (EP rule throughout)".into(),
        metric: "mean exact Ecost".into(),
        rows,
    }
}

/// Prints an ablation report as a pivoted table (workloads × variants).
pub fn print_ablation(report: &AblationReport) {
    println!("\n=== {} — {} ===", report.id, report.description);
    println!("metric: {}", report.metric);
    // Collect column order.
    let mut variants: Vec<&str> = Vec::new();
    for r in &report.rows {
        if !variants.contains(&r.variant.as_str()) {
            variants.push(&r.variant);
        }
    }
    let mut workloads: Vec<&str> = Vec::new();
    for r in &report.rows {
        if !workloads.contains(&r.workload.as_str()) {
            workloads.push(&r.workload);
        }
    }
    print!("{:<14}", "workload");
    for v in &variants {
        print!(" {v:>22}");
    }
    println!();
    println!("{}", "-".repeat(14 + 23 * variants.len()));
    for w in &workloads {
        print!("{w:<14}");
        for v in &variants {
            let val = report
                .rows
                .iter()
                .find(|r| r.workload == *w && r.variant == *v)
                .map(|r| r.value)
                .unwrap_or(f64::NAN);
            print!(" {val:>22.4}");
        }
        println!();
    }
}

/// Saves an ablation report as JSON under `reports/`.
pub fn save_ablation(report: &AblationReport) {
    if std::fs::create_dir_all("reports").is_err() {
        return;
    }
    let _ = std::fs::write(
        format!("reports/{}.json", report.id.to_lowercase()),
        report.to_json().pretty(),
    );
}
