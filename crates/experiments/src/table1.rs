//! Experiments E1–E9: one per Table 1 row (see DESIGN.md §4).
//!
//! Every experiment sweeps randomized workloads over many seeds, runs the
//! paper's algorithm for the row, and certifies the row's approximation
//! factor against a lower/upper-bound sandwich of the relevant optimum
//! (see `common` for the verdict semantics).

use crate::common::{aggregate, par_sweep, Measurement, Report, Row};
use std::sync::Arc;
use ukc_baselines::{brute_force_restricted, brute_force_unrestricted, BruteForceLimits};
use ukc_core::{
    expected_point_one_center, lower_bound_euclidean, lower_bound_one_center, reference_one_center,
    AssignmentRule, CertainStrategy, Problem, Solution, SolverConfig,
};
use ukc_metric::Metric;
use ukc_metric::{Euclidean, FiniteMetric, Point, WeightedGraph};
use ukc_onedim::solve_one_d;
use ukc_uncertain::generators::{
    clustered, line_instance, on_finite_metric, ring, two_scale, uniform_box, ProbModel,
};
use ukc_uncertain::UncertainSet;

/// A boxed seeded workload generator.
type WorkloadGen = Box<dyn Fn(u64) -> UncertainSet<Point> + Sync>;

fn seeds(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B9).wrapping_add(17))
        .collect()
}

/// The candidate pool used by Euclidean brute force: every location plus
/// every expected point (so the pool contains the paper's own centers).
fn enriched_pool(set: &UncertainSet<Point>) -> Vec<Point> {
    let mut pool = set.location_pool();
    pool.extend(set.iter().map(ukc_uncertain::expected_point));
    pool
}

/// A (rule, strategy) config with per-solve lower-bound certification on
/// (the experiments read it from the report instead of recomputing).
fn cfg(rule: AssignmentRule, strategy: CertainStrategy) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .build()
        .expect("static experiment config")
}

/// Like [`cfg()`] with the grid strategy at a given ε.
fn cfg_grid(rule: AssignmentRule, eps: f64) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .strategy(CertainStrategy::Grid)
        .eps(eps)
        .build()
        .expect("static experiment config")
}

/// One Euclidean solve through the `Problem` API.
fn solve_eu(set: &UncertainSet<Point>, k: usize, config: &SolverConfig) -> Solution<Point> {
    Problem::euclidean(set.clone(), k)
        .expect("generated instances are valid")
        .solve(config)
        .expect("euclidean pipeline accepts every experiment config")
}

// ---------------------------------------------------------------------
// E1 — Table 1 row 1: 1-center, Euclidean, factor 2, O(z).
// ---------------------------------------------------------------------

/// E1: the expected point of any single uncertain point is a 2-approximate
/// 1-center (Theorem 2.1).
pub fn e1() -> Report {
    let mut rows: Vec<Row> = Vec::new();
    let configs: Vec<(&str, WorkloadGen)> = vec![
        (
            "uniform d=2",
            Box::new(|s| uniform_box(s, 8, 4, 2, 10.0, 2.0, ProbModel::Random)),
        ),
        (
            "uniform d=1",
            Box::new(|s| uniform_box(s, 8, 4, 1, 10.0, 2.0, ProbModel::Random)),
        ),
        (
            "uniform d=8",
            Box::new(|s| uniform_box(s, 6, 4, 8, 10.0, 2.0, ProbModel::Random)),
        ),
        (
            "clustered d=2",
            Box::new(|s| clustered(s, 10, 4, 2, 2, 4.0, 1.0, ProbModel::HeavyTail)),
        ),
        (
            "two-scale d=2",
            Box::new(|s| two_scale(s, 6, 3, 2, 0.5, 60.0, 0.2)),
        ),
        (
            "ring d=2",
            Box::new(|s| ring(s, 8, 4, 20.0, 0.4, ProbModel::Random)),
        ),
    ];
    for (name, gen) in &configs {
        let ms = par_sweep(&seeds(20), |seed| {
            let set = gen(seed);
            // The theorem holds for every anchor; measure the WORST anchor
            // so the certification covers them all.
            let alg = (0..set.n())
                .map(|a| expected_point_one_center(&set, a).1)
                .fold(0.0f64, f64::max);
            let (_, reference) = reference_one_center(&set);
            let lb = lower_bound_one_center(&set, &Euclidean).max(lower_bound_euclidean(&set, 1));
            Measurement {
                alg,
                lb: lb.min(reference),
                ub: reference.min(alg),
            }
        });
        rows.push(aggregate(name, "n≤10 z≤4, worst anchor", 2.0, &ms));
    }
    Report {
        id: "E1".into(),
        artifact: "Table 1 row 1 (Theorem 2.1)".into(),
        description: "Expected point of any single uncertain point as 1-center: factor 2, O(z)"
            .into(),
        rows,
    }
}

// ---------------------------------------------------------------------
// E2–E5 — Table 1 rows 2–5: restricted assigned, Euclidean.
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn restricted_row(
    name: &str,
    params: &str,
    bound: f64,
    config: &SolverConfig,
    gen: impl Fn(u64) -> UncertainSet<Point> + Sync,
    k: usize,
    n_seeds: usize,
    brute: bool,
) -> Row {
    let ms = par_sweep(&seeds(n_seeds), |seed| {
        let set = gen(seed);
        let sol = solve_eu(&set, k, config);
        let lb = sol.report.lower_bound.expect("config certifies bounds");
        let mut ub = sol.ecost;
        if brute {
            let pool = enriched_pool(&set);
            if let Some(b) = brute_force_restricted(
                &set,
                &pool,
                k,
                config.rule(),
                &Euclidean,
                BruteForceLimits::default(),
            ) {
                ub = ub.min(b.ecost);
            }
        }
        // A tighter certain solver with the same rule also upper-bounds the
        // rule's optimum.
        let better = solve_eu(&set, k, &cfg(config.rule(), CertainStrategy::ExactDiscrete));
        ub = ub.min(better.ecost);
        Measurement {
            alg: sol.ecost,
            lb,
            ub,
        }
    });
    aggregate(name, params, bound, &ms)
}

/// E2: restricted assigned, expected-distance rule, Gonzalez backend —
/// factor 6 in O(nz + n log k) (Remark 3.1).
pub fn e2() -> Report {
    let rows = vec![
        restricted_row(
            "clustered small",
            "n=6 z=3 k=2 (brute UB)",
            6.0,
            &cfg(AssignmentRule::ExpectedDistance, CertainStrategy::Gonzalez),
            |s| clustered(s, 6, 3, 2, 2, 4.0, 1.0, ProbModel::Random),
            2,
            16,
            true,
        ),
        restricted_row(
            "uniform small",
            "n=6 z=2 k=2 (brute UB)",
            6.0,
            &cfg(AssignmentRule::ExpectedDistance, CertainStrategy::Gonzalez),
            |s| uniform_box(s, 6, 2, 2, 20.0, 2.0, ProbModel::Random),
            2,
            16,
            true,
        ),
        restricted_row(
            "clustered large",
            "n=200 z=6 k=4",
            6.0,
            &cfg(AssignmentRule::ExpectedDistance, CertainStrategy::Gonzalez),
            |s| clustered(s, 200, 6, 2, 4, 6.0, 1.5, ProbModel::Random),
            4,
            8,
            false,
        ),
        restricted_row(
            "two-scale",
            "n=40 z=4 k=3 q=0.25",
            6.0,
            &cfg(AssignmentRule::ExpectedDistance, CertainStrategy::Gonzalez),
            |s| two_scale(s, 40, 4, 2, 1.0, 120.0, 0.25),
            3,
            8,
            false,
        ),
    ];
    Report {
        id: "E2".into(),
        artifact: "Table 1 row 2 (Theorem 2.2 + Remark 3.1)".into(),
        description: "Restricted assigned, ED rule, Gonzalez backend: factor 6".into(),
        rows,
    }
}

/// E3: restricted assigned, ED rule, grid (1+ε) backend — factor 5+ε.
pub fn e3() -> Report {
    let mut rows = Vec::new();
    for eps in [0.5f64, 0.25] {
        rows.push(restricted_row(
            "clustered small",
            &format!("n=6 z=3 k=2 ε={eps} (brute UB)"),
            5.0 + eps,
            &cfg_grid(AssignmentRule::ExpectedDistance, eps),
            |s| clustered(s, 6, 3, 2, 2, 4.0, 1.0, ProbModel::Random),
            2,
            12,
            true,
        ));
        rows.push(restricted_row(
            "uniform medium",
            &format!("n=30 z=4 k=3 ε={eps}"),
            5.0 + eps,
            &cfg_grid(AssignmentRule::ExpectedDistance, eps),
            |s| uniform_box(s, 30, 4, 2, 30.0, 2.0, ProbModel::Random),
            3,
            8,
            false,
        ));
    }
    Report {
        id: "E3".into(),
        artifact: "Table 1 row 3 (Theorem 2.2)".into(),
        description: "Restricted assigned, ED rule, (1+ε) grid backend: factor 5+ε".into(),
        rows,
    }
}

/// E4: restricted assigned, expected-point rule, Gonzalez — factor 4.
pub fn e4() -> Report {
    let rows = vec![
        restricted_row(
            "clustered small",
            "n=6 z=3 k=2 (brute UB)",
            4.0,
            &cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez),
            |s| clustered(s, 6, 3, 2, 2, 4.0, 1.0, ProbModel::Random),
            2,
            16,
            true,
        ),
        restricted_row(
            "uniform small",
            "n=6 z=2 k=2 (brute UB)",
            4.0,
            &cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez),
            |s| uniform_box(s, 6, 2, 2, 20.0, 2.0, ProbModel::Random),
            2,
            16,
            true,
        ),
        restricted_row(
            "ring",
            "n=40 z=5 k=4",
            4.0,
            &cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez),
            |s| ring(s, 40, 5, 30.0, 0.5, ProbModel::Random),
            4,
            8,
            false,
        ),
        restricted_row(
            "clustered large",
            "n=200 z=6 k=4",
            4.0,
            &cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez),
            |s| clustered(s, 200, 6, 2, 4, 6.0, 1.5, ProbModel::Random),
            4,
            8,
            false,
        ),
    ];
    Report {
        id: "E4".into(),
        artifact: "Table 1 row 4 (Theorem 2.2 + Remark 3.1)".into(),
        description: "Restricted assigned, EP rule, Gonzalez backend: factor 4".into(),
        rows,
    }
}

/// E5: restricted assigned, EP rule, grid (1+ε) — factor 3+ε.
pub fn e5() -> Report {
    let mut rows = Vec::new();
    for eps in [0.5f64, 0.25] {
        rows.push(restricted_row(
            "clustered small",
            &format!("n=6 z=3 k=2 ε={eps} (brute UB)"),
            3.0 + eps,
            &cfg_grid(AssignmentRule::ExpectedPoint, eps),
            |s| clustered(s, 6, 3, 2, 2, 4.0, 1.0, ProbModel::Random),
            2,
            12,
            true,
        ));
        rows.push(restricted_row(
            "uniform medium",
            &format!("n=30 z=4 k=3 ε={eps}"),
            3.0 + eps,
            &cfg_grid(AssignmentRule::ExpectedPoint, eps),
            |s| uniform_box(s, 30, 4, 2, 30.0, 2.0, ProbModel::Random),
            3,
            8,
            false,
        ));
    }
    Report {
        id: "E5".into(),
        artifact: "Table 1 row 5 (Theorem 2.2)".into(),
        description: "Restricted assigned, EP rule, (1+ε) grid backend: factor 3+ε".into(),
        rows,
    }
}

// ---------------------------------------------------------------------
// E6/E7 — Table 1 rows 6–7: unrestricted assigned, Euclidean.
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn unrestricted_row(
    name: &str,
    params: &str,
    bound: f64,
    config: &SolverConfig,
    gen: impl Fn(u64) -> UncertainSet<Point> + Sync,
    k: usize,
    n_seeds: usize,
) -> Row {
    let ms = par_sweep(&seeds(n_seeds), |seed| {
        let set = gen(seed);
        let sol = solve_eu(&set, k, config);
        let lb = sol.report.lower_bound.expect("config certifies bounds");
        let pool = enriched_pool(&set);
        // Unrestricted brute-force optimum over the enriched pool is an
        // upper bound on the continuous unrestricted optimum.
        let mut ub = sol.ecost;
        if let Some(b) =
            brute_force_unrestricted(&set, &pool, k, &Euclidean, BruteForceLimits::default())
        {
            ub = ub.min(b.ecost);
        }
        Measurement {
            alg: sol.ecost,
            lb,
            ub,
        }
    });
    aggregate(name, params, bound, &ms)
}

/// E6: unrestricted assigned via the EP pipeline, Gonzalez — factor 4
/// (Theorem 2.5 with ε=1).
pub fn e6() -> Report {
    let rows = vec![
        unrestricted_row(
            "clustered tiny",
            "n=5 z=3 k=2 (brute opt)",
            4.0,
            &cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez),
            |s| clustered(s, 5, 3, 2, 2, 4.0, 1.0, ProbModel::Random),
            2,
            16,
        ),
        unrestricted_row(
            "uniform tiny",
            "n=5 z=2 k=2 (brute opt)",
            4.0,
            &cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez),
            |s| uniform_box(s, 5, 2, 2, 20.0, 2.0, ProbModel::Random),
            2,
            16,
        ),
        unrestricted_row(
            "two-scale tiny",
            "n=5 z=3 k=2 q=0.2 (brute opt)",
            4.0,
            &cfg(AssignmentRule::ExpectedPoint, CertainStrategy::Gonzalez),
            |s| two_scale(s, 5, 3, 2, 0.5, 60.0, 0.2),
            2,
            16,
        ),
    ];
    Report {
        id: "E6".into(),
        artifact: "Table 1 row 6 (Theorem 2.5, ε=1)".into(),
        description: "Unrestricted assigned via EP pipeline, Gonzalez: factor 4".into(),
        rows,
    }
}

/// E7: unrestricted assigned via the EP pipeline, grid (1+ε) — factor 3+ε.
pub fn e7() -> Report {
    let mut rows = Vec::new();
    for eps in [0.5f64, 0.25] {
        rows.push(unrestricted_row(
            "clustered tiny",
            &format!("n=5 z=3 k=2 ε={eps} (brute opt)"),
            3.0 + eps,
            &cfg_grid(AssignmentRule::ExpectedPoint, eps),
            |s| clustered(s, 5, 3, 2, 2, 4.0, 1.0, ProbModel::Random),
            2,
            12,
        ));
    }
    rows.push(unrestricted_row(
        "uniform tiny",
        "n=5 z=2 k=2 ε=0.25 (brute opt)",
        3.25,
        &cfg_grid(AssignmentRule::ExpectedPoint, 0.25),
        |s| uniform_box(s, 5, 2, 2, 20.0, 2.0, ProbModel::Random),
        2,
        12,
    ));
    Report {
        id: "E7".into(),
        artifact: "Table 1 row 7 (Theorem 2.5)".into(),
        description: "Unrestricted assigned via EP pipeline, (1+ε) grid: factor 3+ε".into(),
        rows,
    }
}

// ---------------------------------------------------------------------
// E8 — Table 1 row 8: R¹, exact ED solver + factor-3 lift (Theorem 2.3).
// ---------------------------------------------------------------------

/// E8: the exact 1-D solver's ED solution is a 3-approximation of the
/// unrestricted assigned optimum.
pub fn e8() -> Report {
    let mut rows = Vec::new();
    // Tiny instances: certified against the brute unrestricted optimum.
    let ms = par_sweep(&seeds(16), |seed| {
        let set = line_instance(seed, 5, 3, 40.0, 2.0, ProbModel::Random);
        let sol = solve_one_d(&set, 2);
        let lb = lower_bound_euclidean(&set, 2);
        let pool = enriched_pool(&set);
        let mut ub = sol.ecost_ed;
        if let Some(b) =
            brute_force_unrestricted(&set, &pool, 2, &Euclidean, BruteForceLimits::default())
        {
            ub = ub.min(b.ecost);
        }
        Measurement {
            alg: sol.ecost_ed,
            lb,
            ub,
        }
    });
    rows.push(aggregate("line tiny", "n=5 z=3 k=2 (brute opt)", 3.0, &ms));
    // Larger instances: certified against the lower bound only.
    for (n, z, k) in [(100usize, 4usize, 4usize), (500, 8, 8)] {
        let ms = par_sweep(&seeds(8), |seed| {
            let set = line_instance(seed, n, z, 200.0, 3.0, ProbModel::Random);
            let sol = solve_one_d(&set, k);
            let lb = lower_bound_euclidean(&set, k);
            Measurement {
                alg: sol.ecost_ed,
                lb,
                ub: sol.ecost_ed,
            }
        });
        rows.push(aggregate(
            "line large",
            &format!("n={n} z={z} k={k}"),
            3.0,
            &ms,
        ));
    }
    Report {
        id: "E8".into(),
        artifact: "Table 1 row 8 (Theorem 2.3 + Wang–Zhang [26])".into(),
        description: "Exact 1-D ED solver lifts to a 3-approx of the unrestricted optimum".into(),
        rows,
    }
}

// ---------------------------------------------------------------------
// E9 — Table 1 row 9: any metric space (Theorems 2.6 / 2.7).
// ---------------------------------------------------------------------

/// E9: general metric spaces via graph closures; OC rule (Thm 2.7) and ED
/// rule (Thm 2.6), with exact-discrete (ε=0) and Gonzalez (ε=1) backends.
pub fn e9() -> Report {
    let mut rows = Vec::new();
    let spaces: Vec<(&str, FiniteMetric)> = vec![
        (
            "cycle C12",
            WeightedGraph::cycle(12, 1.0)
                .shortest_path_metric()
                .unwrap(),
        ),
        (
            "grid 4x5",
            WeightedGraph::grid(4, 5, 1.0)
                .shortest_path_metric()
                .unwrap(),
        ),
    ];
    let cases: Vec<(&str, AssignmentRule, CertainStrategy, f64)> = vec![
        (
            "OC + exact (5+2ε, ε=0)",
            AssignmentRule::OneCenter,
            CertainStrategy::ExactDiscrete,
            5.0,
        ),
        (
            "OC + Gonzalez (5+2ε, ε=1)",
            AssignmentRule::OneCenter,
            CertainStrategy::Gonzalez,
            7.0,
        ),
        (
            "ED + exact (7+2ε, ε=0)",
            AssignmentRule::ExpectedDistance,
            CertainStrategy::ExactDiscrete,
            7.0,
        ),
        (
            "ED + Gonzalez (7+2ε, ε=1)",
            AssignmentRule::ExpectedDistance,
            CertainStrategy::Gonzalez,
            9.0,
        ),
    ];
    for (space_name, fm) in &spaces {
        // One shared metric + pool across every problem in the sweep
        // (the batch-serving shape: one substrate, many queries).
        let metric: Arc<dyn Metric<usize> + Send + Sync> = Arc::new(fm.clone());
        let ids: Arc<[usize]> = Arc::from(fm.ids());
        for (case_name, rule, strategy, bound) in &cases {
            let config = cfg(*rule, *strategy);
            let ms = par_sweep(&seeds(12), |seed| {
                let set = on_finite_metric(seed, fm.len(), 6, 3, ProbModel::Random);
                let sol = Problem::in_metric_shared(
                    set.clone(),
                    2,
                    Arc::clone(&metric),
                    Arc::clone(&ids),
                )
                .expect("valid instance")
                .solve(&config)
                .expect("metric pipeline accepts every experiment config");
                let lb = sol.report.lower_bound.expect("config certifies bounds");
                let mut ub = sol.ecost;
                if let Some(b) =
                    brute_force_unrestricted(&set, &ids, 2, fm, BruteForceLimits::default())
                {
                    ub = ub.min(b.ecost);
                }
                Measurement {
                    alg: sol.ecost,
                    lb,
                    ub,
                }
            });
            rows.push(aggregate(
                &format!("{space_name}: {case_name}"),
                "n=6 z=3 k=2 (brute opt)",
                *bound,
                &ms,
            ));
        }
    }
    Report {
        id: "E9".into(),
        artifact: "Table 1 row 9 (Theorems 2.6 / 2.7)".into(),
        description: "General metric spaces (graph shortest-path closures): 1-center and ED rules"
            .into(),
        rows,
    }
}
