//! # ukc-json — dependency-free JSON for instance and report I/O
//!
//! The workspace's on-disk formats (instances, solutions, experiment
//! reports), the CLI's `--format json` output, and the HTTP server's
//! wire bodies need JSON without any external crates. This crate
//! provides a small, strict implementation — a [`Json`] value type, a
//! recursive-descent [`Json::parse`], and compact / pretty writers —
//! plus the shared instance/solution/report schemas in [`mod@format`], so
//! every tool emits byte-identical documents from one encoder.
//!
//! Numbers are `f64` throughout (like `serde_json`'s default float mode)
//! and are written with Rust's shortest round-trip formatting, so
//! `parse(write(x)) == x` bit-for-bit for every finite `f64`. Non-finite
//! numbers serialize as `null`.
//!
//! ```
//! use ukc_json::Json;
//!
//! let doc = Json::obj([
//!     ("dim", Json::from(2.0)),
//!     ("tags", Json::arr([Json::from("a"), Json::from("b")])),
//! ]);
//! let text = doc.pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("dim").and_then(Json::as_f64), Some(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse error with byte offset context.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds an array of numbers.
    pub fn nums(items: impl IntoIterator<Item = f64>) -> Self {
        Json::Arr(items.into_iter().map(Json::Num).collect())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a usize, if this is a non-negative integral number
    /// exactly representable on this target (bounded by both 2⁵³ — the
    /// f64 integer-precision limit — and `usize::MAX`).
    pub fn as_usize(&self) -> Option<usize> {
        const F64_INT_MAX: f64 = (1u64 << 53) as f64;
        match self {
            Json::Num(v)
                if *v >= 0.0
                    && v.fract() == 0.0
                    && *v <= F64_INT_MAX
                    && *v <= usize::MAX as f64 =>
            {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Writes compact JSON.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Writes pretty JSON (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                write_string(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-round-trip, so values
        // survive write → parse exactly.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Maximum container nesting accepted by the parser; deeper documents
/// are a [`JsonError`], not a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("bad number {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        let doc = Json::obj([
            ("a", Json::Num(1.5)),
            (
                "b",
                Json::arr([Json::Null, Json::Bool(true), Json::from("x\n\"y\"")]),
            ),
            ("nested", Json::obj([("k", Json::nums([0.1, -2.0, 3e-7]))])),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        for text in [doc.compact(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -123.456e-78,
            1e300,
            -0.0,
        ] {
            let text = Json::Num(v).compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn non_finite_writes_null() {
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).compact(), "null");
    }

    #[test]
    fn parse_errors_are_positioned() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = Json::parse("[1, 2, x]").unwrap_err();
        assert_eq!(e.offset, 7);
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        // Control characters escape on output and survive.
        let s = Json::Str("a\u{1}b".into());
        assert_eq!(Json::parse(&s.compact()).unwrap(), s);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&too_deep).is_err());
        let bomb = "[".repeat(200_000);
        assert!(Json::parse(&bomb).is_err());
        // Wide-but-shallow documents are unaffected.
        let wide = format!("[{}1]", "1,".repeat(10_000));
        assert!(Json::parse(&wide).is_ok());
        // Depth is the *current* nesting, not a cumulative count: many
        // sequential siblings of depth 2 stay fine.
        let siblings = format!("[{}[1]]", "[1],".repeat(5_000));
        assert!(Json::parse(&siblings).is_ok());
    }

    #[test]
    fn as_usize_rejects_unrepresentable_integers() {
        assert_eq!(Json::Num(2f64.powi(53)).as_usize(), Some(1 << 53));
        assert_eq!(Json::Num(2f64.powi(53) + 2.0).as_usize(), None);
        assert_eq!(Json::Num(2f64.powi(64)).as_usize(), None);
        assert_eq!(Json::parse("1e19").unwrap().as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 3, "s": "hi", "f": 1.5, "b": false, "a": [1]}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(doc.get("f").and_then(Json::as_usize), None);
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }
}
