//! JSON instance, solution, and report formats.
//!
//! One encoder for every surface: the CLI's files and `--format json`
//! output, the HTTP server's request/response bodies, and the experiment
//! drivers all go through this module, so the same instance or solution
//! is byte-identical no matter which tool emitted it.
//!
//! The library types keep their invariants behind validating constructors,
//! so the wire schema is a separate, plain-data layer with explicit
//! conversion (and therefore explicit validation errors) in both
//! directions:
//!
//! ```json
//! {
//!   "dim": 2,
//!   "points": [
//!     { "locations": [[0.0, 1.0], [2.0, 3.0]], "probs": [0.25, 0.75] }
//!   ]
//! }
//! ```
//!
//! Serialization is hand-rolled over [`crate::Json`]; floats round-trip
//! exactly (shortest round-trip formatting on write, `f64` parse on read).

use crate::Json;
use ukc_core::{Report, Solution};
use ukc_metric::Point;
use ukc_uncertain::{UncertainPoint, UncertainPointError, UncertainSet};

/// One uncertain point on disk.
#[derive(Clone, Debug)]
pub struct JsonPoint {
    /// Possible locations, each a `dim`-length coordinate vector.
    pub locations: Vec<Vec<f64>>,
    /// Location probabilities (must sum to 1 within 1e-6).
    pub probs: Vec<f64>,
}

/// A complete instance on disk.
#[derive(Clone, Debug)]
pub struct JsonInstance {
    /// Ambient dimension; every location must have this length.
    pub dim: usize,
    /// The uncertain points.
    pub points: Vec<JsonPoint>,
}

/// A solution on disk.
#[derive(Clone, Debug)]
pub struct JsonSolution {
    /// Chosen centers.
    pub centers: Vec<Vec<f64>>,
    /// `assignment[i]` = index into `centers` serving point `i`.
    pub assignment: Vec<usize>,
    /// Exact expected cost reported by the solver.
    pub ecost: f64,
    /// Certified lower bound at solve time (0 when not computed).
    pub lower_bound: f64,
    /// Free-form description of how the solution was produced.
    pub method: String,
}

/// Conversion and validation errors, with the failing point index where
/// applicable.
#[derive(Debug)]
pub enum FormatError {
    /// The document is not valid JSON or misses a required field.
    Schema(String),
    /// A location's length disagrees with `dim`.
    DimMismatch {
        /// Index of the offending point.
        point: usize,
        /// Length found.
        got: usize,
        /// Length expected.
        expected: usize,
    },
    /// The underlying distribution was rejected.
    BadPoint {
        /// Index of the offending point.
        point: usize,
        /// The library's validation error.
        source: ukc_uncertain::UncertainPointError,
    },
    /// The instance has no points.
    Empty,
    /// A coordinate is NaN or infinite.
    NonFinite {
        /// Index of the offending point.
        point: usize,
    },
    /// A location has no coordinates (`dim` 0 instances are rejected
    /// here, *before* the panicking `Point` constructor can see them).
    EmptyLocation {
        /// Index of the offending point.
        point: usize,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Schema(msg) => write!(f, "{msg}"),
            FormatError::DimMismatch {
                point,
                got,
                expected,
            } => {
                write!(
                    f,
                    "point {point}: location has {got} coordinates, instance dim is {expected}"
                )
            }
            FormatError::BadPoint { point, source } => write!(f, "point {point}: {source}"),
            FormatError::Empty => write!(f, "instance has no points"),
            FormatError::NonFinite { point } => write!(f, "point {point}: non-finite coordinate"),
            FormatError::EmptyLocation { point } => {
                write!(f, "point {point}: location has no coordinates")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// Constructor slot for [`JsonInstance::to_set_with`]: either the
/// renormalizing [`UncertainPoint::new`] or the bit-preserving
/// [`UncertainPoint::from_normalized`].
type MakePoint = fn(Vec<Point>, Vec<f64>) -> Result<UncertainPoint<Point>, UncertainPointError>;

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, FormatError> {
    doc.get(key)
        .ok_or_else(|| FormatError::Schema(format!("missing field {key:?}")))
}

fn f64_array(value: &Json, what: &str) -> Result<Vec<f64>, FormatError> {
    value
        .as_array()
        .ok_or_else(|| FormatError::Schema(format!("{what} must be an array")))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| FormatError::Schema(format!("{what} must contain numbers")))
        })
        .collect()
}

impl JsonInstance {
    /// Parses an instance document.
    pub fn parse(text: &str) -> Result<Self, FormatError> {
        let doc = Json::parse(text).map_err(|e| FormatError::Schema(e.to_string()))?;
        Self::from_json(&doc)
    }

    /// Reads an instance from an already-parsed document (e.g. an
    /// `"instance"` sub-object of a larger request body).
    pub fn from_json(doc: &Json) -> Result<Self, FormatError> {
        let dim = field(doc, "dim")?
            .as_usize()
            .ok_or_else(|| FormatError::Schema("dim must be a non-negative integer".into()))?;
        let points = field(doc, "points")?
            .as_array()
            .ok_or_else(|| FormatError::Schema("points must be an array".into()))?
            .iter()
            .map(|p| {
                Ok(JsonPoint {
                    locations: field(p, "locations")?
                        .as_array()
                        .ok_or_else(|| FormatError::Schema("locations must be an array".into()))?
                        .iter()
                        .map(|loc| f64_array(loc, "location"))
                        .collect::<Result<_, _>>()?,
                    probs: f64_array(field(p, "probs")?, "probs")?,
                })
            })
            .collect::<Result<Vec<_>, FormatError>>()?;
        Ok(Self { dim, points })
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("dim", Json::from(self.dim)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        (
                            "locations",
                            Json::arr(
                                p.locations
                                    .iter()
                                    .map(|loc| Json::nums(loc.iter().copied())),
                            ),
                        ),
                        ("probs", Json::nums(p.probs.iter().copied())),
                    ])
                })),
            ),
        ])
    }

    /// Validates and converts to the library representation.
    ///
    /// Probabilities are renormalized to sum exactly to 1 (the
    /// [`UncertainPoint::new`] contract) — the right behavior for raw
    /// external input.
    pub fn to_set(&self) -> Result<UncertainSet<Point>, FormatError> {
        self.to_set_with(UncertainPoint::new)
    }

    /// Like [`JsonInstance::to_set`], but keeps the stored probabilities
    /// bit-for-bit instead of renormalizing them.
    ///
    /// Renormalization is not idempotent at the ulp level: dividing an
    /// already-normalized distribution by its float sum (close to one
    /// but rarely exactly one) shifts every probability. A document
    /// produced by [`JsonInstance::from_set`] holds probabilities a live
    /// server already normalized, so rebuilding it must go through
    /// [`UncertainPoint::from_normalized`] or the reconstructed set's
    /// digest drifts from the one recorded at write time. Use this for
    /// trusted round-trips (e.g. durable-store recovery), never for
    /// client-supplied input.
    pub fn to_set_verbatim(&self) -> Result<UncertainSet<Point>, FormatError> {
        self.to_set_with(UncertainPoint::from_normalized)
    }

    fn to_set_with(&self, make: MakePoint) -> Result<UncertainSet<Point>, FormatError> {
        if self.points.is_empty() {
            return Err(FormatError::Empty);
        }
        let mut points = Vec::with_capacity(self.points.len());
        for (i, jp) in self.points.iter().enumerate() {
            let mut locs = Vec::with_capacity(jp.locations.len());
            for loc in &jp.locations {
                if loc.len() != self.dim {
                    return Err(FormatError::DimMismatch {
                        point: i,
                        got: loc.len(),
                        expected: self.dim,
                    });
                }
                // `Point::try_new` is the typed gate: non-finite values
                // (e.g. a JSON `1e999`, which parses to +∞) and empty
                // locations become errors here instead of panics in the
                // panicking constructor downstream.
                locs.push(Point::try_new(loc.clone()).map_err(|e| match e {
                    ukc_metric::PointError::Empty => FormatError::EmptyLocation { point: i },
                    _ => FormatError::NonFinite { point: i },
                })?);
            }
            let up = make(locs, jp.probs.clone())
                .map_err(|source| FormatError::BadPoint { point: i, source })?;
            points.push(up);
        }
        Ok(UncertainSet::new(points))
    }

    /// Converts a library set into the disk format.
    pub fn from_set(set: &UncertainSet<Point>) -> Self {
        let dim = set.point(0).locations()[0].dim();
        let points = set
            .iter()
            .map(|up| JsonPoint {
                locations: up.locations().iter().map(|p| p.coords().to_vec()).collect(),
                probs: up.probs().to_vec(),
            })
            .collect();
        Self { dim, points }
    }
}

impl JsonSolution {
    /// Parses a solution document.
    pub fn parse(text: &str) -> Result<Self, FormatError> {
        let doc = Json::parse(text).map_err(|e| FormatError::Schema(e.to_string()))?;
        let centers = field(&doc, "centers")?
            .as_array()
            .ok_or_else(|| FormatError::Schema("centers must be an array".into()))?
            .iter()
            .map(|c| f64_array(c, "center"))
            .collect::<Result<_, _>>()?;
        let assignment = field(&doc, "assignment")?
            .as_array()
            .ok_or_else(|| FormatError::Schema("assignment must be an array".into()))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| FormatError::Schema("assignment must contain indices".into()))
            })
            .collect::<Result<_, _>>()?;
        let ecost = field(&doc, "ecost")?
            .as_f64()
            .ok_or_else(|| FormatError::Schema("ecost must be a number".into()))?;
        let lower_bound = doc.get("lower_bound").and_then(Json::as_f64).unwrap_or(0.0);
        let method = doc
            .get("method")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        Ok(Self {
            centers,
            assignment,
            ecost,
            lower_bound,
            method,
        })
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "centers",
                Json::arr(self.centers.iter().map(|c| Json::nums(c.iter().copied()))),
            ),
            (
                "assignment",
                Json::arr(self.assignment.iter().map(|&a| Json::from(a))),
            ),
            ("ecost", Json::from(self.ecost)),
            ("lower_bound", Json::from(self.lower_bound)),
            ("method", Json::from(self.method.as_str())),
        ])
    }

    /// The centers as library points.
    pub fn center_points(&self) -> Vec<Point> {
        self.centers.iter().map(|c| Point::new(c.clone())).collect()
    }
}

/// The instrumentation [`Report`] as one JSON object: method, lower
/// bound, per-stage timings in seconds, per-stage distance-evaluation
/// counts, and — for warm-started solves only — the `warm` object
/// (reused centers, evals saved, skipped stages, and the typed fallback
/// reason when the prior could not be reused). Cold solves omit `warm`
/// entirely, so pre-incremental documents are byte-identical.
pub fn report_json(report: &Report) -> Json {
    let secs = |d: std::time::Duration| Json::from(d.as_secs_f64());
    let mut doc = Json::obj([
        ("method", Json::from(report.method.as_str())),
        (
            "lower_bound",
            report.lower_bound.map_or(Json::Null, Json::from),
        ),
        (
            "timings_seconds",
            Json::obj([
                ("representatives", secs(report.timings.representatives)),
                ("certain_solve", secs(report.timings.certain_solve)),
                ("assignment", secs(report.timings.assignment)),
                ("cost", secs(report.timings.cost)),
                ("lower_bound", secs(report.timings.lower_bound)),
                ("total", secs(report.timings.total)),
            ]),
        ),
        (
            "distance_evals",
            Json::obj([
                (
                    "representatives",
                    Json::from(report.distance_evals.representatives as f64),
                ),
                (
                    "certain_solve",
                    Json::from(report.distance_evals.certain_solve as f64),
                ),
                (
                    "assignment",
                    Json::from(report.distance_evals.assignment as f64),
                ),
                ("cost", Json::from(report.distance_evals.cost as f64)),
                (
                    "lower_bound",
                    Json::from(report.distance_evals.lower_bound as f64),
                ),
                ("total", Json::from(report.distance_evals.total() as f64)),
            ]),
        ),
    ]);
    if let (Json::Obj(pairs), Some(warm)) = (&mut doc, &report.warm) {
        pairs.push((
            "warm".into(),
            Json::obj([
                ("reused_centers", Json::from(warm.reused_centers)),
                ("evals_saved", Json::from(warm.evals_saved as f64)),
                (
                    "stages_skipped",
                    Json::arr(warm.stages_skipped.iter().map(|s| Json::from(*s))),
                ),
                ("fallback", warm.fallback.map_or(Json::Null, Json::from)),
            ]),
        ));
    }
    doc
}

/// A solved [`Solution`] as one JSON document: the [`JsonSolution`] disk
/// schema plus `certain_radius` and the instrumentation `report`. The
/// CLI's `--format json` output and the server's solve responses are both
/// this document.
pub fn solution_document(sol: &Solution<Point>) -> Json {
    let disk = JsonSolution {
        centers: sol.centers.iter().map(|c| c.coords().to_vec()).collect(),
        assignment: sol.assignment.clone(),
        ecost: sol.ecost,
        lower_bound: sol.report.lower_bound.unwrap_or(0.0),
        method: sol.report.method.clone(),
    };
    let mut doc = disk.to_json();
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("certain_radius".into(), Json::from(sol.certain_radius)));
        pairs.push(("report".into(), report_json(&sol.report)));
    }
    doc
}

/// Cluster wire forms: the registry/status documents that `ukc-cluster`,
/// the server's `/cluster/*` endpoints, and `ukc cluster status` all
/// share, so a node description rendered by one surface parses on any
/// other.
pub mod cluster {
    use super::FormatError;
    use crate::Json;

    /// One registry node on the wire.
    ///
    /// ```json
    /// { "id": 0, "addr": "127.0.0.1:8891",
    ///   "prefix_start": 0, "prefix_end": 32768, "state": "alive" }
    /// ```
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct JsonNode {
        /// Registry-assigned stable node ID.
        pub id: usize,
        /// The node's base address (`host:port`).
        pub addr: String,
        /// First owned digest prefix (inclusive).
        pub prefix_start: u32,
        /// One past the last owned digest prefix (exclusive).
        pub prefix_end: u32,
        /// Liveness as last observed (`"alive"` / `"down"`).
        pub state: String,
    }

    impl JsonNode {
        /// The node's JSON document.
        pub fn to_json(&self) -> Json {
            Json::obj([
                ("id", Json::from(self.id)),
                ("addr", Json::from(self.addr.as_str())),
                ("prefix_start", Json::from(self.prefix_start as usize)),
                ("prefix_end", Json::from(self.prefix_end as usize)),
                ("state", Json::from(self.state.as_str())),
            ])
        }

        /// Parses one node document.
        pub fn from_json(doc: &Json) -> Result<Self, FormatError> {
            let schema = |what: &str| FormatError::Schema(format!("node document: {what}"));
            let uint = |key: &str| {
                doc.get(key)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| schema(&format!("{key:?} must be a non-negative integer")))
            };
            Ok(JsonNode {
                id: uint("id")?,
                addr: doc
                    .get("addr")
                    .and_then(Json::as_str)
                    .ok_or_else(|| schema("\"addr\" must be a string"))?
                    .to_string(),
                prefix_start: uint("prefix_start")? as u32,
                prefix_end: uint("prefix_end")? as u32,
                state: doc
                    .get("state")
                    .and_then(Json::as_str)
                    .ok_or_else(|| schema("\"state\" must be a string"))?
                    .to_string(),
            })
        }
    }

    /// A whole `/cluster/status` document.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct JsonClusterStatus {
        /// The serving role (`"single"` or `"coordinator"`).
        pub role: String,
        /// Registry nodes in range order (empty in single mode).
        pub nodes: Vec<JsonNode>,
    }

    impl JsonClusterStatus {
        /// The status JSON document.
        pub fn to_json(&self) -> Json {
            Json::obj([
                ("role", Json::from(self.role.as_str())),
                ("nodes", Json::arr(self.nodes.iter().map(JsonNode::to_json))),
            ])
        }

        /// Parses a status document (tolerates extra sibling fields such
        /// as replication gauges).
        pub fn from_json(doc: &Json) -> Result<Self, FormatError> {
            let role = doc
                .get("role")
                .and_then(Json::as_str)
                .ok_or_else(|| FormatError::Schema("status: \"role\" must be a string".into()))?
                .to_string();
            let nodes = doc
                .get("nodes")
                .and_then(Json::as_array)
                .ok_or_else(|| FormatError::Schema("status: \"nodes\" must be an array".into()))?
                .iter()
                .map(JsonNode::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(JsonClusterStatus { role, nodes })
        }

        /// Parses a status document from text.
        pub fn parse(text: &str) -> Result<Self, FormatError> {
            let doc = Json::parse(text).map_err(|e| FormatError::Schema(e.to_string()))?;
            Self::from_json(&doc)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn node_and_status_roundtrip() {
            let status = JsonClusterStatus {
                role: "coordinator".into(),
                nodes: vec![
                    JsonNode {
                        id: 0,
                        addr: "127.0.0.1:8891".into(),
                        prefix_start: 0,
                        prefix_end: 32768,
                        state: "alive".into(),
                    },
                    JsonNode {
                        id: 1,
                        addr: "127.0.0.1:8892".into(),
                        prefix_start: 32768,
                        prefix_end: 65536,
                        state: "down".into(),
                    },
                ],
            };
            let back = JsonClusterStatus::parse(&status.to_json().pretty()).unwrap();
            assert_eq!(back, status);
        }

        #[test]
        fn extra_fields_are_tolerated_on_status() {
            let text = r#"{"role": "single", "nodes": [], "replicated_instances": 3}"#;
            let status = JsonClusterStatus::parse(text).unwrap();
            assert_eq!(status.role, "single");
            assert!(status.nodes.is_empty());
        }

        #[test]
        fn schema_errors_are_typed() {
            assert!(matches!(
                JsonClusterStatus::parse(r#"{"nodes": []}"#),
                Err(FormatError::Schema(_))
            ));
            assert!(matches!(
                JsonNode::from_json(&Json::parse(r#"{"id": 0}"#).unwrap()),
                Err(FormatError::Schema(_))
            ));
            assert!(matches!(
                JsonNode::from_json(&Json::parse(r#"{"id": -1, "addr": "x"}"#).unwrap()),
                Err(FormatError::Schema(_))
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_uncertain::generators::{clustered, ProbModel};

    #[test]
    fn roundtrip_preserves_instance() {
        let set = clustered(3, 8, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let json = JsonInstance::from_set(&set);
        let text = json.to_json().pretty();
        let parsed = JsonInstance::parse(&text).unwrap();
        let back = parsed.to_set().unwrap();
        // Locations roundtrip exactly (shortest round-trip float
        // formatting); probabilities are re-normalized at construction,
        // which can shift the last ulp — compare those within 1e-15.
        assert_eq!(set.n(), back.n());
        for (a, b) in set.iter().zip(back.iter()) {
            assert_eq!(a.locations(), b.locations());
            for (pa, pb) in a.probs().iter().zip(b.probs().iter()) {
                assert!((pa - pb).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn verbatim_roundtrip_preserves_probs_bit_for_bit() {
        // Random distributions rarely sum to exactly 1.0 after the
        // constructor's normalizing divide, so `to_set` shifts them by
        // an ulp on every round-trip. The verbatim path must not: the
        // durable store's recovery digest check depends on it.
        let set = clustered(9, 100, 3, 2, 4, 5.0, 1.5, ProbModel::Random);
        let text = JsonInstance::from_set(&set).to_json().compact();
        let back = JsonInstance::parse(&text)
            .unwrap()
            .to_set_verbatim()
            .unwrap();
        assert_eq!(set.n(), back.n());
        for (a, b) in set.iter().zip(back.iter()) {
            assert_eq!(a.locations(), b.locations());
            assert_eq!(a.probs(), b.probs());
        }
        assert_eq!(ukc_core::digest_set(&set), ukc_core::digest_set(&back));
    }

    #[test]
    fn solution_roundtrips() {
        let sol = JsonSolution {
            centers: vec![vec![0.5, -1.25], vec![3.0, 4.0]],
            assignment: vec![0, 1, 1, 0],
            ecost: 1.75,
            lower_bound: 0.5,
            method: "ep+gonzalez".into(),
        };
        let text = sol.to_json().pretty();
        let back = JsonSolution::parse(&text).unwrap();
        assert_eq!(back.centers, sol.centers);
        assert_eq!(back.assignment, sol.assignment);
        assert_eq!(back.ecost, sol.ecost);
        assert_eq!(back.lower_bound, sol.lower_bound);
        assert_eq!(back.method, sol.method);
    }

    #[test]
    fn rejects_dim_mismatch() {
        let j = JsonInstance {
            dim: 2,
            points: vec![JsonPoint {
                locations: vec![vec![1.0, 2.0], vec![3.0]],
                probs: vec![0.5, 0.5],
            }],
        };
        assert!(matches!(
            j.to_set(),
            Err(FormatError::DimMismatch {
                point: 0,
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn rejects_bad_probs() {
        let j = JsonInstance {
            dim: 1,
            points: vec![JsonPoint {
                locations: vec![vec![1.0]],
                probs: vec![0.4],
            }],
        };
        assert!(matches!(
            j.to_set(),
            Err(FormatError::BadPoint { point: 0, .. })
        ));
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        let j = JsonInstance {
            dim: 1,
            points: vec![],
        };
        assert!(matches!(j.to_set(), Err(FormatError::Empty)));
        let j = JsonInstance {
            dim: 1,
            points: vec![JsonPoint {
                locations: vec![vec![f64::NAN]],
                probs: vec![1.0],
            }],
        };
        assert!(matches!(
            j.to_set(),
            Err(FormatError::NonFinite { point: 0 })
        ));
    }

    #[test]
    fn solution_document_roundtrips_and_carries_report() {
        let set = clustered(5, 10, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let problem = ukc_core::Problem::euclidean(set, 2).unwrap();
        let sol = problem.solve(&ukc_core::SolverConfig::default()).unwrap();
        let doc = solution_document(&sol);
        // The document embeds the JsonSolution schema exactly and is
        // parseable back through it.
        let parsed = JsonSolution::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed.ecost, sol.ecost);
        assert_eq!(parsed.assignment, sol.assignment);
        assert_eq!(parsed.method, sol.report.method);
        // Plus the extras: certain_radius and the full report.
        assert_eq!(
            doc.get("certain_radius").and_then(Json::as_f64),
            Some(sol.certain_radius)
        );
        let report = doc.get("report").unwrap();
        assert_eq!(
            report.get("method").and_then(Json::as_str),
            Some(sol.report.method.as_str())
        );
        assert!(report
            .get("distance_evals")
            .and_then(|d| d.get("total"))
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn rejects_schema_errors() {
        assert!(matches!(
            JsonInstance::parse("{\"points\": []}"),
            Err(FormatError::Schema(_))
        ));
        assert!(matches!(
            JsonInstance::parse("not json"),
            Err(FormatError::Schema(_))
        ));
        assert!(matches!(
            JsonSolution::parse("{\"centers\": [[0]], \"assignment\": [0.5], \"ecost\": 1}"),
            Err(FormatError::Schema(_))
        ));
    }
}
