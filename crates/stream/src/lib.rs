//! # ukc-stream — memory-bounded streaming uncertain k-center
//!
//! The uncertain k-center model is exactly the regime where points
//! arrive continuously — sensor readings, noisy location feeds — yet a
//! batch [`ukc_core::Problem`] needs the whole instance in memory. This
//! crate makes streaming a first-class subsystem: a doubling/coreset
//! summary ([`StreamSummary`]) holds an O(budget)-point working set on a
//! [`ukc_metric::PointStore`] with batched kernel distance evaluation
//! and pool-driven merge phases, and [`StreamSolver`] runs the paper's
//! replace-by-representative pipeline over it online — expected points
//! in, certified k-center solutions out, whatever the stream length.
//!
//! The three layers:
//!
//! * [`StreamSummary`] — the state: weighted doubling summary with the
//!   coverage (`≤ 4τ`) and separation (`> τ`) invariants, truncation +
//!   compaction keeping the store at `≤ budget + 1` rows, and a
//!   canonical [`StreamSummary::digest`] that is **bit-identical across
//!   pool lane counts and distance kernels** (maintenance pins the
//!   scalar kernel) — the property serving layers key incremental
//!   re-solve caches on.
//! * [`StreamSolver`] — the API: [`ukc_core::SolverConfig`]-driven,
//!   typed [`ukc_core::SolveError`]s, per-epoch [`EpochReport`]s with
//!   eval counts and the memory high-water mark, and snapshot
//!   finalization ([`StreamSolver::solution`]) through the configured
//!   certain strategy.
//! * The serving integration: `ukc-server` exposes `POST /streams`,
//!   `POST /streams/{id}/push`, and `GET /streams/{id}/solution`
//!   (incremental re-solve through the scheduler, cached on the
//!   digest), and the CLI ingests line-delimited JSON via `ukc stream`.
//!
//! ```
//! use ukc_core::SolverConfig;
//! use ukc_stream::StreamSolver;
//! use ukc_uncertain::generators::{clustered, ProbModel};
//!
//! let mut solver = StreamSolver::new(3, SolverConfig::default()).unwrap();
//! let feed = clustered(7, 500, 3, 2, 3, 6.0, 1.0, ProbModel::Random);
//! for chunk in feed.points().chunks(64) {
//!     let epoch = solver.push_chunk(chunk).unwrap();
//!     assert!(epoch.summary_len <= solver.budget());
//! }
//! let solution = solver.solution().unwrap();
//! assert_eq!(solution.centers.len(), 3);
//! // Memory stayed bounded by the budget + one chunk, not the stream.
//! assert!(solution.stream.memory_peak_points < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod solver;
pub mod summary;

pub use solver::{
    EpochReport, SolverSnapshot, StreamReport, StreamSolution, StreamSolver, StreamSolverBuilder,
    DEFAULT_BUDGET_PER_CENTER,
};
pub use summary::{StreamSummary, SummarySnapshot};
