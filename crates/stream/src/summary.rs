//! The doubling summary: a memory-bounded, weighted k-center sketch over
//! a [`PointStore`].
//!
//! [`StreamSummary`] maintains the Charikar–Chekuri–Feder–Motwani
//! doubling invariants over a coordinate stream, one point at a time:
//!
//! * **coverage** — every point ever inserted lies within `4τ` of a kept
//!   center (`τ` is the current merge threshold);
//! * **separation** — kept centers are pairwise `> τ` apart, so once the
//!   budget overflows, `opt ≥ τ/2` by pigeonhole (the certified lower
//!   bound the approximation rests on).
//!
//! With a budget of exactly `k` the kept centers are an 8-approximate
//! k-center solution outright; a larger budget keeps a finer *coreset*
//! (the `O(k·ε⁻ᵈ)`-style working set) that a downstream solve can refine
//! — `τ` only doubles when the budget overflows, so more memory means a
//! smaller threshold and a tighter sketch on the same stream.
//!
//! Every distance evaluated while maintaining the summary runs through
//! the batched store kernels with [`Kernel::Scalar`] **pinned**: scalar
//! batch sweeps are bit-identical to pointwise [`ukc_metric::Point`]
//! arithmetic, so the evolved state — and therefore [`StreamSummary::digest`]
//! — is identical whatever kernel the enclosing
//! [`SolverConfig`](ukc_core::SolverConfig) selects for its finalize
//! solve, and identical for every pool lane count (the execution-layer
//! determinism contract). The summary is what makes streams cacheable:
//! the serving layer keys incremental re-solves on the digest.
//!
//! Memory is bounded by construction: the backing store is truncated
//! when an arriving point is absorbed and compacted after every merge
//! phase, so it never holds more than `budget + 1` rows.

use ukc_metric::{DistCounter, DistanceOracle, Kernel, PointId, PointStore, StoreOracle};
use ukc_pool::Exec;

/// 64-bit FNV-1a over the canonical byte stream of the summary state.
/// Same constants and float canonicalization as `ukc_core::digest`, so
/// digests are stable across processes and platforms.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_f64(&mut self, v: f64) {
        // Normalize -0.0 so numerically equal states digest identically.
        let v = if v == 0.0 { 0.0 } else { v };
        self.write_u64(v.to_bits());
    }
}

/// A structural snapshot of a [`StreamSummary`]: every field that
/// determines future evolution (and the digest), as plain data.
///
/// Produced by [`StreamSummary::snapshot`] and consumed by
/// [`StreamSummary::from_snapshot`]; the serving layer serializes it for
/// durable storage. Floats must round-trip *bit-exactly* for the restore
/// to digest identically — encode them as IEEE bit patterns, not text.
#[derive(Clone, Debug, PartialEq)]
pub struct SummarySnapshot {
    /// The center budget.
    pub budget: usize,
    /// Ambient dimension (0 before the first insertion).
    pub dim: usize,
    /// The merge threshold τ.
    pub threshold: f64,
    /// Points inserted so far.
    pub seen: u64,
    /// Merge phases executed.
    pub merges: u64,
    /// Distance evaluations spent on maintenance.
    pub distance_evals: u64,
    /// Working-set high-water mark in rows.
    pub peak_rows: usize,
    /// Kept center coordinates, in order.
    pub centers: Vec<Vec<f64>>,
    /// Per-center absorbed-point counts, parallel to `centers`.
    pub weights: Vec<u64>,
}

/// A weighted doubling summary of a coordinate stream (see the module
/// docs for the invariants).
///
/// The summary is the *state* layer of the streaming subsystem:
/// [`crate::StreamSolver`] feeds it expected points and finalizes it
/// into solutions; the deprecated
/// `ukc_extensions::StreamingUncertainKCenter` wraps it with a budget of
/// exactly `k`, reproducing the historical center sequence bit for bit.
#[derive(Debug)]
pub struct StreamSummary {
    budget: usize,
    /// 0 until the first insertion fixes the ambient dimension.
    dim: usize,
    /// Exactly the live centers, row `i` ↔ center `i` (compacted after
    /// every merge, truncated after every absorption).
    store: PointStore,
    /// `weights[i]` = points absorbed into center `i` (itself included).
    weights: Vec<u64>,
    threshold: f64,
    seen: u64,
    merges: u64,
    evals: DistCounter,
    peak_rows: usize,
    threads: usize,
    /// Reusable scratch for the per-insert coverage sweep (ids `0..m`
    /// and their distances): the hot path allocates nothing once these
    /// reach the budget size.
    scratch_ids: Vec<PointId>,
    scratch_dists: Vec<f64>,
}

impl Clone for StreamSummary {
    /// Snapshots the full summary state — the clone evolves (and
    /// digests) exactly like the original from this point on, including
    /// the evaluation count, which is carried over into a fresh counter.
    fn clone(&self) -> Self {
        let evals = DistCounter::new();
        evals.add(self.evals.count());
        Self {
            budget: self.budget,
            dim: self.dim,
            store: self.store.clone(),
            weights: self.weights.clone(),
            threshold: self.threshold,
            seen: self.seen,
            merges: self.merges,
            evals,
            peak_rows: self.peak_rows,
            threads: self.threads,
            scratch_ids: Vec::new(),
            scratch_dists: Vec::new(),
        }
    }
}

impl StreamSummary {
    /// An empty summary keeping at most `budget` centers.
    ///
    /// # Panics
    /// Panics when `budget == 0` (use the typed
    /// [`crate::StreamSolver`] API to get a [`ukc_core::SolveError`]
    /// instead).
    pub fn new(budget: usize) -> Self {
        assert!(budget > 0, "summary budget must be at least 1");
        Self::with_threads(budget, 1)
    }

    /// Like [`StreamSummary::new`] with an explicit pool-lane cap for
    /// the batched sweeps (a pure resource knob: the evolved state is
    /// bit-identical for every value).
    pub fn with_threads(budget: usize, threads: usize) -> Self {
        assert!(budget > 0, "summary budget must be at least 1");
        Self {
            budget,
            dim: 0,
            store: PointStore::default(),
            weights: Vec::with_capacity(budget + 1),
            threshold: 0.0,
            seen: 0,
            merges: 0,
            evals: DistCounter::new(),
            peak_rows: 0,
            threads: threads.max(1),
            scratch_ids: Vec::new(),
            scratch_dists: Vec::new(),
        }
    }

    /// The center budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The ambient dimension (0 before the first insertion).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points inserted so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of kept centers (`<= budget` between insertions).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The current merge threshold τ (0 until the first overflow).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Upper bound on the distance from any inserted point to its
    /// nearest kept center: the coverage invariant `4τ`.
    pub fn coverage_radius(&self) -> f64 {
        4.0 * self.threshold
    }

    /// Certified lower bound on the optimum k-center radius of
    /// everything inserted so far (for any `k < budget + 1` kept at the
    /// last overflow): `τ/2`, or 0 before the first overflow.
    pub fn lower_bound(&self) -> f64 {
        self.threshold / 2.0
    }

    /// Merge phases executed (the threshold doubled this many times,
    /// counting the initial threshold fix).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Distance evaluations spent maintaining the summary.
    pub fn distance_evals(&self) -> u64 {
        self.evals.count()
    }

    /// High-water mark of backing-store rows — the summary's working-set
    /// bound, `<= budget + 1` by construction.
    pub fn peak_rows(&self) -> usize {
        self.peak_rows
    }

    /// The kept centers as owned points, in insertion order.
    pub fn center_points(&self) -> Vec<ukc_metric::Point> {
        (0..self.store.len())
            .map(|i| self.store.point(PointId(i)))
            .collect()
    }

    /// The coordinates of kept center `i`.
    pub fn center_coords(&self, i: usize) -> &[f64] {
        self.store.coords(PointId(i))
    }

    /// The weight (absorbed-point count) of kept center `i`.
    pub fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// The weights of all kept centers, parallel to
    /// [`StreamSummary::center_points`].
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    fn oracle(&self) -> StoreOracle<'_> {
        // Kernel pinned to Scalar: summary evolution must be identical
        // whatever kernel the finalize solve uses (digests are part of
        // the serving cache key). Exec is attached so large budgets get
        // pooled sweeps — bit-identical for every lane count.
        StoreOracle::new(&self.store, Kernel::Scalar)
            .with_counter(&self.evals)
            .with_exec(Exec::auto(self.threads))
    }

    /// Inserts one point, maintaining the doubling invariants. Returns
    /// `Err` with the expected dimension when `coords` disagrees with
    /// the stream's ambient dimension.
    pub fn insert(&mut self, coords: &[f64]) -> Result<(), usize> {
        if self.dim == 0 {
            if coords.is_empty() {
                return Err(0);
            }
            self.dim = coords.len();
            self.store = PointStore::with_capacity(self.dim, self.budget + 1);
        } else if coords.len() != self.dim {
            return Err(self.dim);
        }
        self.seen += 1;
        let m = self.store.len();
        let id = self
            .store
            .try_push(coords)
            .expect("dimension checked and coordinates finite");
        self.peak_rows = self.peak_rows.max(self.store.len());
        if m > 0 {
            // Covered points are absorbed into the first center within
            // the coverage radius (with τ = 0 this drops exact
            // duplicates, as the historical implementation did). The
            // sweep reuses persistent scratch buffers — and builds the
            // oracle from disjoint field borrows — so the hot path is
            // allocation-free at steady state.
            self.scratch_ids.clear();
            self.scratch_ids.extend((0..m).map(PointId));
            self.scratch_dists.clear();
            self.scratch_dists.resize(m, 0.0);
            let oracle = StoreOracle::new(&self.store, Kernel::Scalar)
                .with_counter(&self.evals)
                .with_exec(Exec::auto(self.threads));
            oracle.dists_to_one(&self.scratch_ids, &id, &mut self.scratch_dists);
            if let Some(first) = self
                .scratch_dists
                .iter()
                .position(|&d| d <= 4.0 * self.threshold)
            {
                self.weights[first] += 1;
                self.store.truncate(m);
                return Ok(());
            }
        }
        self.weights.push(1);
        while self.store.len() > self.budget {
            if self.overflow() {
                break;
            }
        }
        Ok(())
    }

    /// One overflow step: raise τ and merge. Returns `true` when the
    /// all-duplicates degenerate case collapsed the summary (the caller
    /// must stop doubling).
    fn overflow(&mut self) -> bool {
        self.merges += 1;
        let m = self.store.len();
        let ids: Vec<PointId> = (0..m).map(PointId).collect();
        if self.threshold == 0.0 {
            // Initial τ: the smallest positive pairwise distance among
            // the budget + 1 centers.
            let mut min = f64::INFINITY;
            let mut dists = vec![0.0f64; m];
            {
                let oracle = self.oracle();
                for i in 0..m {
                    let row = &mut dists[..m - i - 1];
                    oracle.dists_to_one(&ids[i + 1..], &ids[i], row);
                    for &d in row.iter() {
                        if d > 0.0 {
                            min = min.min(d);
                        }
                    }
                }
            }
            if min.is_finite() {
                self.threshold = min;
            } else {
                // All duplicates: collapse onto the first center.
                let total: u64 = self.weights.iter().sum();
                self.store.truncate(1);
                self.weights.truncate(1);
                self.weights[0] = total;
                return true;
            }
        } else {
            self.threshold *= 2.0;
        }
        // Greedy merge: keep centers pairwise > τ, in order; each dropped
        // center donates its weight to the first keeper within τ.
        let mut kept: Vec<usize> = Vec::with_capacity(self.budget);
        let mut kept_ids: Vec<PointId> = Vec::with_capacity(self.budget);
        let mut donations: Vec<(usize, u64)> = Vec::new();
        {
            let oracle = self.oracle();
            let mut dists = vec![0.0f64; m];
            for (j, &id) in ids.iter().enumerate() {
                let row = &mut dists[..kept_ids.len()];
                oracle.dists_to_one(&kept_ids, &id, row);
                match row.iter().position(|&d| d <= self.threshold) {
                    None => {
                        kept.push(j);
                        kept_ids.push(id);
                    }
                    Some(first) => donations.push((first, self.weights[j])),
                }
            }
        }
        // Compact: rebuild the store with only the keepers, so the
        // working set returns to `<= budget` rows.
        let mut store = PointStore::with_capacity(self.dim, self.budget + 1);
        let mut weights = Vec::with_capacity(self.budget + 1);
        for &j in &kept {
            store.push(self.store.coords(PointId(j)));
            weights.push(self.weights[j]);
        }
        for (keeper, weight) in donations {
            weights[keeper] += weight;
        }
        self.store = store;
        self.weights = weights;
        false
    }

    /// Captures the full evolution-relevant state as plain data (see
    /// [`SummarySnapshot`]).
    pub fn snapshot(&self) -> SummarySnapshot {
        SummarySnapshot {
            budget: self.budget,
            dim: self.dim,
            threshold: self.threshold,
            seen: self.seen,
            merges: self.merges,
            distance_evals: self.evals.count(),
            peak_rows: self.peak_rows,
            centers: (0..self.store.len())
                .map(|i| self.store.coords(PointId(i)).to_vec())
                .collect(),
            weights: self.weights.clone(),
        }
    }

    /// Rebuilds a summary from a snapshot; the result evolves — and
    /// digests — exactly like the summary that produced it, as
    /// [`StreamSummary::clone`] does. `threads` is the pool-lane cap (a
    /// pure resource knob, not part of the state).
    ///
    /// Returns `None` when the snapshot is structurally invalid (zero
    /// budget, mismatched center/weight lengths, inconsistent
    /// dimensions, non-finite coordinates): a damaged snapshot is a lost
    /// optimization for callers, never a wrong state.
    pub fn from_snapshot(snap: &SummarySnapshot, threads: usize) -> Option<Self> {
        if snap.budget == 0
            || snap.centers.len() != snap.weights.len()
            || snap.centers.len() > snap.budget + 1
        {
            return None;
        }
        if snap.dim == 0 && !snap.centers.is_empty() {
            return None;
        }
        let mut store = PointStore::with_capacity(snap.dim.max(1), snap.budget + 1);
        for coords in &snap.centers {
            if coords.len() != snap.dim {
                return None;
            }
            store.try_push(coords).ok()?;
        }
        if snap.dim == 0 {
            store = PointStore::default();
        }
        Some(Self {
            budget: snap.budget,
            dim: snap.dim,
            store,
            weights: snap.weights.clone(),
            threshold: snap.threshold,
            seen: snap.seen,
            merges: snap.merges,
            evals: {
                let evals = DistCounter::new();
                evals.add(snap.distance_evals);
                evals
            },
            peak_rows: snap.peak_rows,
            threads: threads.max(1),
            scratch_ids: Vec::new(),
            scratch_dists: Vec::new(),
        })
    }

    /// Canonical digest of the evolved state: budget, dimension, points
    /// seen, threshold, and every kept `(center, weight)` in order.
    ///
    /// Bit-identical across pool lane counts and across the scalar and
    /// blocked kernels (summary maintenance pins the scalar kernel), so
    /// two replicas that consumed the same stream agree — the property
    /// the serving layer keys incremental re-solve caching on.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.budget as u64);
        h.write_u64(self.dim as u64);
        h.write_u64(self.seen);
        h.write_f64(self.threshold);
        h.write_u64(self.store.len() as u64);
        for i in 0..self.store.len() {
            for &c in self.store.coords(PointId(i)) {
                h.write_f64(c);
            }
            h.write_u64(self.weights[i]);
        }
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::Metric;

    fn stream_points(seed: u64, n: usize) -> Vec<Vec<f64>> {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| vec![rnd() * 100.0, rnd() * 100.0]).collect()
    }

    #[test]
    fn summary_oracle_stays_pinned_to_the_scalar_kernel() {
        // The summary digest is part of the serving cache key, so its
        // evolution must not depend on which kernel finalize solves
        // pick. Both oracle construction sites (the shared helper and
        // the insert fast path) pin Scalar; this pins the pin.
        let mut s = StreamSummary::new(4);
        for p in stream_points(11, 50) {
            s.insert(&p).unwrap();
        }
        assert_eq!(s.oracle().kernel(), Kernel::Scalar);
    }

    #[test]
    fn summary_respects_budget_and_weights_conserve_points() {
        let mut s = StreamSummary::new(4);
        for p in stream_points(1, 300) {
            s.insert(&p).unwrap();
        }
        assert!(s.len() <= 4);
        assert_eq!(s.seen(), 300);
        assert_eq!(s.weights().iter().sum::<u64>(), 300);
        assert!(s.peak_rows() <= 5);
        assert!(s.threshold() > 0.0);
    }

    #[test]
    fn coverage_invariant_holds_over_the_whole_stream() {
        let pts = stream_points(3, 200);
        let mut s = StreamSummary::new(3);
        for p in &pts {
            s.insert(p).unwrap();
        }
        let centers = s.center_points();
        let metric = ukc_metric::Euclidean;
        for p in &pts {
            let p = ukc_metric::Point::new(p.clone());
            let d = centers
                .iter()
                .map(|c| metric.dist(&p, c))
                .fold(f64::INFINITY, f64::min);
            assert!(
                d <= s.coverage_radius() + 1e-9,
                "{d} > {}",
                s.coverage_radius()
            );
        }
    }

    #[test]
    fn larger_budgets_never_raise_the_threshold() {
        let pts = stream_points(5, 400);
        let mut small = StreamSummary::new(3);
        let mut large = StreamSummary::new(24);
        for p in &pts {
            small.insert(p).unwrap();
            large.insert(p).unwrap();
        }
        assert!(large.threshold() <= small.threshold());
        assert!(large.len() >= small.len());
    }

    #[test]
    fn duplicates_collapse_without_overflowing() {
        let mut s = StreamSummary::new(2);
        for _ in 0..50 {
            s.insert(&[1.0, 1.0]).unwrap();
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.threshold(), 0.0);
        assert_eq!(s.weights(), &[50]);
    }

    #[test]
    fn dimension_mismatch_is_a_typed_rejection() {
        let mut s = StreamSummary::new(2);
        s.insert(&[0.0, 1.0]).unwrap();
        assert_eq!(s.insert(&[0.0, 1.0, 2.0]), Err(2));
        assert_eq!(s.seen(), 1);
        let mut empty = StreamSummary::new(2);
        assert_eq!(empty.insert(&[]), Err(0));
    }

    #[test]
    fn clone_snapshots_state_and_evolves_identically() {
        let pts = stream_points(21, 300);
        let mut original = StreamSummary::new(4);
        for p in &pts[..200] {
            original.insert(p).unwrap();
        }
        let mut snapshot = original.clone();
        assert_eq!(snapshot.digest(), original.digest());
        assert_eq!(snapshot.distance_evals(), original.distance_evals());
        for p in &pts[200..] {
            original.insert(p).unwrap();
            snapshot.insert(p).unwrap();
        }
        assert_eq!(snapshot.digest(), original.digest());
        assert_eq!(snapshot.distance_evals(), original.distance_evals());
    }

    #[test]
    fn snapshot_round_trips_and_evolves_identically() {
        let pts = stream_points(17, 300);
        let mut original = StreamSummary::new(5);
        for p in &pts[..180] {
            original.insert(p).unwrap();
        }
        let snap = original.snapshot();
        let mut restored = StreamSummary::from_snapshot(&snap, 3).expect("valid snapshot");
        assert_eq!(restored.digest(), original.digest());
        assert_eq!(restored.distance_evals(), original.distance_evals());
        assert_eq!(restored.peak_rows(), original.peak_rows());
        for p in &pts[180..] {
            original.insert(p).unwrap();
            restored.insert(p).unwrap();
        }
        assert_eq!(restored.digest(), original.digest());
        // An empty summary round-trips too.
        let empty = StreamSummary::new(3);
        let restored = StreamSummary::from_snapshot(&empty.snapshot(), 1).unwrap();
        assert_eq!(restored.digest(), empty.digest());
        assert!(restored.is_empty());
    }

    #[test]
    fn invalid_snapshots_restore_as_none() {
        let mut s = StreamSummary::new(3);
        for p in stream_points(19, 50) {
            s.insert(&p).unwrap();
        }
        let good = s.snapshot();
        let mut bad = good.clone();
        bad.budget = 0;
        assert!(StreamSummary::from_snapshot(&bad, 1).is_none());
        let mut bad = good.clone();
        bad.weights.pop();
        assert!(StreamSummary::from_snapshot(&bad, 1).is_none());
        let mut bad = good.clone();
        bad.centers[0].push(1.0);
        assert!(StreamSummary::from_snapshot(&bad, 1).is_none());
        let mut bad = good.clone();
        bad.centers[0][0] = f64::NAN;
        assert!(StreamSummary::from_snapshot(&bad, 1).is_none());
        let mut bad = good;
        bad.dim = 0;
        assert!(StreamSummary::from_snapshot(&bad, 1).is_none());
    }

    #[test]
    fn digest_tracks_state_not_chunking_or_threads() {
        let pts = stream_points(9, 250);
        let mut a = StreamSummary::with_threads(4, 1);
        let mut b = StreamSummary::with_threads(4, 4);
        for p in &pts {
            a.insert(p).unwrap();
            b.insert(p).unwrap();
        }
        assert_eq!(a.digest(), b.digest());
        // A different stream changes the digest.
        let mut c = StreamSummary::new(4);
        for p in stream_points(10, 250) {
            c.insert(&p).unwrap();
        }
        assert_ne!(a.digest(), c.digest());
    }
}
