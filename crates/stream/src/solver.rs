//! [`StreamSolver`]: the uncertain streaming API over the doubling
//! summary.
//!
//! The paper's pipeline replaces each uncertain point by its expected
//! point `P̄` (computable in O(z)) and solves certain k-center on the
//! representatives. [`StreamSolver`] performs exactly that replacement
//! *online*: every arriving point contributes its `P̄` to a
//! [`StreamSummary`], whose working set stays bounded by the summary
//! budget however long the stream runs. Finalizing runs the configured
//! certain solver on the weighted summary and wraps the result with the
//! summary's certified bounds.
//!
//! Approximation guarantee (certain radius on the expected points): with
//! the default budget the kept summary covers every `P̄` within `4τ`
//! while `opt ≥ τ/2`, and the finalize solve adds its own factor on the
//! summary, so the streamed centers are within a constant factor of the
//! optimum — **8** when the budget equals `k` (the summary *is* the
//! solution: the classic doubling bound), and `2·opt + 12τ` for a
//! Gonzalez finalize over a larger budget (smaller `τ`, better in
//! practice). Substituting the streaming factor for the certain-solver
//! factor `1+ε` in the paper's Theorems 2.2/2.5 bounds the end-to-end
//! *expected cost* at `2 + factor` (EP rule) or `4 + factor` (ED rule)
//! times the optimum — e.g. at budget `k`: **10×** (EP) / **12×** (ED),
//! which `tests/stream_equivalence.rs` asserts against full batch
//! solves.

use std::time::{Duration, Instant};

use crate::summary::{StreamSummary, SummarySnapshot};
use ukc_core::{Problem, Report, SolveError, SolverConfig};
use ukc_metric::Point;
use ukc_pool::Exec;
use ukc_uncertain::{expected_point, UncertainPoint, UncertainSet};

/// Default summary budget per requested center: a 4k-point working set
/// keeps the merge threshold (and therefore the sketch error) well below
/// the budget-`k` worst case while remaining O(k) memory.
pub const DEFAULT_BUDGET_PER_CENTER: usize = 4;

/// Instrumentation for one epoch (one [`StreamSolver::push_chunk`]).
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// 1-based epoch index.
    pub epoch: u64,
    /// Points consumed this epoch.
    pub points: usize,
    /// Distance evaluations spent on summary maintenance this epoch.
    pub distance_evals: u64,
    /// Merge phases (threshold raises) this epoch.
    pub merges: u64,
    /// The merge threshold τ after the epoch.
    pub threshold: f64,
    /// Kept summary centers after the epoch.
    pub summary_len: usize,
    /// Working-set high-water mark so far: summary rows plus the largest
    /// in-flight chunk buffer.
    pub memory_peak_points: usize,
    /// Wall clock of the epoch.
    pub wall: Duration,
}

/// Cumulative stream instrumentation, including the state digest.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Uncertain points consumed so far.
    pub points: u64,
    /// Epochs ([`StreamSolver::push_chunk`] calls) so far.
    pub epochs: u64,
    /// Kept summary centers.
    pub summary_len: usize,
    /// The current merge threshold τ.
    pub threshold: f64,
    /// Distance evaluations spent on summary maintenance.
    pub distance_evals: u64,
    /// Merge phases executed.
    pub merges: u64,
    /// Working-set high-water mark (summary rows + largest chunk).
    pub memory_peak_points: usize,
    /// The canonical state digest — bit-identical across pool lane
    /// counts and kernels, see [`StreamSummary::digest`].
    pub digest: u64,
}

/// The finalized output of a stream: k centers plus certified bounds.
#[derive(Clone, Debug)]
pub struct StreamSolution {
    /// The chosen centers (at most `k`).
    pub centers: Vec<Point>,
    /// The certain k-center radius achieved on the summary points.
    pub certain_radius: f64,
    /// Upper bound on the distance from *any* streamed expected point to
    /// its nearest center: `certain_radius + 4τ` (the coverage slack).
    pub radius_bound: f64,
    /// Certified lower bound on the optimal k-center radius of the
    /// streamed expected points: `τ/2`.
    pub lower_bound: f64,
    /// The finalize solve's instrumentation (a default report with only
    /// `method` set when the summary had at most `k` centers and no
    /// solve was needed).
    pub finalize: Report,
    /// Cumulative stream instrumentation at finalize time.
    pub stream: StreamReport,
}

/// A structural snapshot of a [`StreamSolver`]'s evolved state: the
/// summary plus the stream counters. Deliberately excludes `k` and the
/// [`SolverConfig`] — those come from the stream's creation request, so
/// a restore always applies a snapshot to a solver rebuilt from the same
/// request (see [`StreamSolver::restore`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SolverSnapshot {
    /// Epochs consumed so far.
    pub epochs: u64,
    /// Working-set high-water mark (summary rows + largest chunk).
    pub memory_peak: usize,
    /// The summary state.
    pub summary: SummarySnapshot,
}

/// Builder for [`StreamSolver`]; finish with
/// [`StreamSolverBuilder::build`], which validates.
///
/// ```
/// use ukc_core::SolverConfig;
/// use ukc_stream::StreamSolver;
///
/// let solver = StreamSolver::builder(3)
///     .config(SolverConfig::default())
///     .budget(24)
///     .build()
///     .unwrap();
/// assert_eq!(solver.k(), 3);
/// assert_eq!(solver.budget(), 24);
/// ```
#[derive(Clone, Debug)]
pub struct StreamSolverBuilder {
    k: usize,
    config: SolverConfig,
    budget: Option<usize>,
}

impl StreamSolverBuilder {
    /// Sets the solver configuration driving the finalize solve (rule,
    /// strategy, kernel, pool-lane cap). Defaults to
    /// [`SolverConfig::default`].
    pub fn config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the summary budget (working-set bound in points). Values
    /// below `k` are clamped up to `k`; the default is
    /// [`DEFAULT_BUDGET_PER_CENTER`]` * k`.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Validates and returns the solver (`k == 0` is
    /// [`SolveError::ZeroK`]).
    pub fn build(self) -> Result<StreamSolver, SolveError> {
        if self.k == 0 {
            return Err(SolveError::ZeroK);
        }
        let budget = self
            .budget
            .unwrap_or(DEFAULT_BUDGET_PER_CENTER * self.k)
            .max(self.k);
        let threads = self.config.resolved_threads();
        Ok(StreamSolver {
            k: self.k,
            summary: StreamSummary::with_threads(budget, threads),
            config: self.config,
            epochs: 0,
            last_epoch: None,
            memory_peak: 0,
        })
    }
}

/// A memory-bounded streaming uncertain k-center solver.
///
/// Push uncertain points (singly or in chunked epochs), read cheap
/// state ([`StreamSolver::report`], [`StreamSolver::digest`]) at any
/// time, and finalize with [`StreamSolver::solution`] as often as
/// needed — the stream keeps accepting points afterwards.
///
/// ```
/// use ukc_metric::Point;
/// use ukc_stream::StreamSolver;
/// use ukc_uncertain::UncertainPoint;
///
/// let mut solver = StreamSolver::builder(2).build().unwrap();
/// for x in 0..100 {
///     let spread = UncertainPoint::new(
///         vec![
///             Point::new(vec![f64::from(x), 0.0]),
///             Point::new(vec![f64::from(x), 2.0]),
///         ],
///         vec![0.5, 0.5],
///     )
///     .unwrap();
///     solver.push(&spread).unwrap();
/// }
/// let solution = solver.solution().unwrap();
/// assert!(solution.centers.len() <= 2);
/// // The certified bounds bracket the achievable radius.
/// assert!(solution.lower_bound <= solution.radius_bound);
/// // The working set stayed far below the 100 points streamed.
/// assert!(solution.stream.memory_peak_points < 20);
/// ```
#[derive(Clone, Debug)]
pub struct StreamSolver {
    k: usize,
    config: SolverConfig,
    summary: StreamSummary,
    epochs: u64,
    last_epoch: Option<EpochReport>,
    memory_peak: usize,
}

impl StreamSolver {
    /// Starts a builder for a `k`-center stream.
    pub fn builder(k: usize) -> StreamSolverBuilder {
        StreamSolverBuilder {
            k,
            config: SolverConfig::default(),
            budget: None,
        }
    }

    /// A solver with the default budget; `k == 0` is
    /// [`SolveError::ZeroK`].
    pub fn new(k: usize, config: SolverConfig) -> Result<Self, SolveError> {
        Self::builder(k).config(config).build()
    }

    /// The number of centers requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configuration driving the finalize solve.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The summary budget (working-set bound in points).
    pub fn budget(&self) -> usize {
        self.summary.budget()
    }

    /// Uncertain points consumed so far.
    pub fn len(&self) -> u64 {
        self.summary.seen()
    }

    /// `true` before the first point.
    pub fn is_empty(&self) -> bool {
        self.summary.seen() == 0
    }

    /// The canonical state digest (see [`StreamSummary::digest`]).
    pub fn digest(&self) -> u64 {
        self.summary.digest()
    }

    /// The underlying summary (read-only).
    pub fn summary(&self) -> &StreamSummary {
        &self.summary
    }

    /// The last epoch's instrumentation, if any epoch ran.
    pub fn last_epoch(&self) -> Option<&EpochReport> {
        self.last_epoch.as_ref()
    }

    /// Cumulative stream instrumentation.
    pub fn report(&self) -> StreamReport {
        StreamReport {
            points: self.summary.seen(),
            epochs: self.epochs,
            summary_len: self.summary.len(),
            threshold: self.summary.threshold(),
            distance_evals: self.summary.distance_evals(),
            merges: self.summary.merges(),
            memory_peak_points: self.memory_peak.max(self.summary.peak_rows()),
            digest: self.summary.digest(),
        }
    }

    /// Captures the evolved state as plain data for durable storage.
    pub fn snapshot(&self) -> SolverSnapshot {
        SolverSnapshot {
            epochs: self.epochs,
            memory_peak: self.memory_peak,
            summary: self.summary.snapshot(),
        }
    }

    /// Replaces this solver's evolved state with a snapshot's. The
    /// solver must have been rebuilt from the stream's original creation
    /// request first — `k`, budget, and config are not in the snapshot.
    ///
    /// Returns `false` (leaving the solver untouched) when the snapshot
    /// is structurally invalid or its budget disagrees with this
    /// solver's: callers fall back to replaying the stream history.
    pub fn restore(&mut self, snap: &SolverSnapshot) -> bool {
        if snap.summary.budget != self.summary.budget() {
            return false;
        }
        let threads = self.config.resolved_threads();
        match StreamSummary::from_snapshot(&snap.summary, threads) {
            Some(summary) => {
                self.summary = summary;
                self.epochs = snap.epochs;
                self.memory_peak = snap.memory_peak;
                self.last_epoch = None;
                true
            }
            None => false,
        }
    }

    /// Pushes one uncertain point (an epoch of one). O(z + budget).
    pub fn push(&mut self, up: &UncertainPoint<Point>) -> Result<(), SolveError> {
        self.push_chunk(std::slice::from_ref(up)).map(|_| ())
    }

    /// Pushes one chunk as a single epoch: validates the whole chunk
    /// first (all-or-nothing — a dimension mismatch rejects the chunk
    /// without consuming any of it), computes the expected points with
    /// pooled fan-out, then folds them into the summary in order.
    ///
    /// An empty chunk is [`SolveError::EmptySet`].
    pub fn push_chunk(
        &mut self,
        chunk: &[UncertainPoint<Point>],
    ) -> Result<EpochReport, SolveError> {
        if chunk.is_empty() {
            return Err(SolveError::EmptySet);
        }
        let t = Instant::now();
        let base = self.summary.seen() as usize;
        let mut expected = self.summary.dim();
        if expected == 0 {
            expected = chunk[0].locations()[0].dim();
        }
        for (offset, up) in chunk.iter().enumerate() {
            for loc in up.locations() {
                if loc.dim() != expected {
                    return Err(SolveError::DimensionMismatch {
                        point: base + offset,
                        got: loc.dim(),
                        expected,
                    });
                }
            }
        }
        // Expected points are independent per point: fan the O(z)
        // reductions out across the pool. Each slot is written by
        // exactly one chunk and its value depends only on its own point,
        // so the fill is deterministic for every lane count.
        let mut pbars: Vec<Option<Point>> = vec![None; chunk.len()];
        ukc_pool::for_each_slice(
            Exec::auto(self.config.resolved_threads()),
            &mut pbars,
            256,
            |start, slice| {
                for (j, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(expected_point(&chunk[start + j]));
                }
            },
        );
        let evals_before = self.summary.distance_evals();
        let merges_before = self.summary.merges();
        for pbar in &pbars {
            let pbar = pbar.as_ref().expect("every slot filled");
            self.summary
                .insert(pbar.coords())
                .expect("chunk dimensions validated above");
        }
        self.epochs += 1;
        self.memory_peak = self.memory_peak.max(self.summary.peak_rows() + chunk.len());
        let report = EpochReport {
            epoch: self.epochs,
            points: chunk.len(),
            distance_evals: self.summary.distance_evals() - evals_before,
            merges: self.summary.merges() - merges_before,
            threshold: self.summary.threshold(),
            summary_len: self.summary.len(),
            memory_peak_points: self.memory_peak,
            wall: t.elapsed(),
        };
        self.last_epoch = Some(report.clone());
        Ok(report)
    }

    /// Finalizes the current state into k centers with certified bounds.
    ///
    /// When the summary holds more than `k` centers, the configured
    /// certain strategy solves k-center on the summary points (honoring
    /// the configured kernel and pool lanes); otherwise the summary *is*
    /// the solution. Either way the stream keeps accepting points — this
    /// is a snapshot, not a terminal call.
    ///
    /// An empty stream is [`SolveError::EmptySet`].
    pub fn solution(&self) -> Result<StreamSolution, SolveError> {
        if self.summary.is_empty() {
            return Err(SolveError::EmptySet);
        }
        let summary_points = self.summary.center_points();
        let (centers, certain_radius, finalize) = if summary_points.len() <= self.k {
            let finalize = Report {
                method: format!("{}/summary", stream_method(&self.config)),
                ..Report::default()
            };
            (summary_points, 0.0, finalize)
        } else {
            let certain: Vec<UncertainPoint<Point>> = summary_points
                .iter()
                .cloned()
                .map(UncertainPoint::certain)
                .collect();
            let set = UncertainSet::new(certain);
            let problem = Problem::euclidean(set, self.k)?;
            let mut solution = problem.solve(&self.config)?;
            solution.report.method = format!("{}/finalize", stream_method(&self.config));
            (solution.centers, solution.certain_radius, solution.report)
        };
        Ok(StreamSolution {
            centers,
            certain_radius,
            radius_bound: certain_radius + self.summary.coverage_radius(),
            lower_bound: self.summary.lower_bound(),
            finalize,
            stream: self.report(),
        })
    }
}

/// The `space/rule/strategy` descriptor prefix shared by stream reports.
fn stream_method(config: &SolverConfig) -> String {
    let rule = match config.rule() {
        ukc_core::AssignmentRule::ExpectedDistance => "ed",
        ukc_core::AssignmentRule::ExpectedPoint => "ep",
        ukc_core::AssignmentRule::OneCenter => "oc",
    };
    format!("stream/{rule}/{}", config.strategy().name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::Metric;
    use ukc_uncertain::generators::{clustered, ProbModel};

    fn stream_set(seed: u64, n: usize) -> UncertainSet<Point> {
        clustered(seed, n, 3, 2, 4, 8.0, 1.0, ProbModel::Random)
    }

    #[test]
    fn zero_k_and_empty_streams_are_typed_errors() {
        assert!(matches!(
            StreamSolver::builder(0).build(),
            Err(SolveError::ZeroK)
        ));
        let solver = StreamSolver::builder(2).build().unwrap();
        assert!(matches!(solver.solution(), Err(SolveError::EmptySet)));
        let mut solver = StreamSolver::builder(2).build().unwrap();
        assert!(matches!(solver.push_chunk(&[]), Err(SolveError::EmptySet)));
    }

    #[test]
    fn dimension_mismatch_rejects_the_whole_chunk() {
        let mut solver = StreamSolver::builder(2).build().unwrap();
        let good = UncertainPoint::certain(Point::new(vec![0.0, 1.0]));
        let bad = UncertainPoint::certain(Point::new(vec![0.0, 1.0, 2.0]));
        let err = solver
            .push_chunk(&[good.clone(), bad, good.clone()])
            .unwrap_err();
        assert_eq!(
            err,
            SolveError::DimensionMismatch {
                point: 1,
                got: 3,
                expected: 2
            }
        );
        // All-or-nothing: the valid prefix was not consumed.
        assert!(solver.is_empty());
        solver.push(&good).unwrap();
        assert_eq!(solver.len(), 1);
    }

    #[test]
    fn epochs_and_reports_accumulate() {
        let set = stream_set(7, 120);
        let mut solver = StreamSolver::builder(3).budget(6).build().unwrap();
        let points = set.points();
        let first = solver.push_chunk(&points[..40]).unwrap();
        assert_eq!((first.epoch, first.points), (1, 40));
        let second = solver.push_chunk(&points[40..]).unwrap();
        assert_eq!((second.epoch, second.points), (2, 80));
        let report = solver.report();
        assert_eq!(report.points, 120);
        assert_eq!(report.epochs, 2);
        assert!(report.summary_len <= 6);
        assert!(report.distance_evals > 0);
        assert_eq!(report.digest, solver.digest());
        // Working set: summary rows + the largest chunk, never the
        // whole stream.
        assert!(report.memory_peak_points <= 6 + 1 + 80);
    }

    #[test]
    fn solution_brackets_and_respects_k() {
        let set = stream_set(11, 200);
        let mut solver = StreamSolver::builder(3).build().unwrap();
        solver.push_chunk(set.points()).unwrap();
        let solution = solver.solution().unwrap();
        assert!(solution.centers.len() <= 3);
        assert!(solution.lower_bound <= solution.radius_bound + 1e-12);
        assert!(solution.radius_bound >= solution.certain_radius);
        // Every streamed expected point is covered within the bound.
        let metric = ukc_metric::Euclidean;
        for up in set.iter() {
            let pbar = expected_point(up);
            let d = solution
                .centers
                .iter()
                .map(|c| metric.dist(&pbar, c))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= solution.radius_bound + 1e-9);
        }
    }

    #[test]
    fn solver_snapshot_restores_onto_a_rebuilt_solver() {
        let set = stream_set(17, 160);
        let points = set.points();
        let mut original = StreamSolver::builder(3).budget(9).build().unwrap();
        original.push_chunk(&points[..100]).unwrap();
        let snap = original.snapshot();
        // Recovery path: rebuild from the creation parameters, then
        // restore the evolved state.
        let mut restored = StreamSolver::builder(3).budget(9).build().unwrap();
        assert!(restored.restore(&snap));
        assert_eq!(restored.digest(), original.digest());
        assert_eq!(restored.report().epochs, original.report().epochs);
        assert_eq!(
            restored.report().memory_peak_points,
            original.report().memory_peak_points
        );
        // Both keep evolving identically, and finalize identically.
        original.push_chunk(&points[100..]).unwrap();
        restored.push_chunk(&points[100..]).unwrap();
        assert_eq!(restored.digest(), original.digest());
        let a = original.solution().unwrap();
        let b = restored.solution().unwrap();
        for (x, y) in a.centers.iter().zip(&b.centers) {
            assert_eq!(x.coords(), y.coords());
        }
        assert_eq!(a.certain_radius.to_bits(), b.certain_radius.to_bits());
        // A budget mismatch refuses to restore and leaves state alone.
        let mut wrong = StreamSolver::builder(3).budget(12).build().unwrap();
        assert!(!wrong.restore(&snap));
        assert!(wrong.is_empty());
    }

    #[test]
    fn chunking_does_not_change_state_or_solution() {
        let set = stream_set(13, 150);
        let mut whole = StreamSolver::builder(3).build().unwrap();
        whole.push_chunk(set.points()).unwrap();
        let mut pieces = StreamSolver::builder(3).build().unwrap();
        for chunk in set.points().chunks(7) {
            pieces.push_chunk(chunk).unwrap();
        }
        assert_eq!(whole.digest(), pieces.digest());
        let a = whole.solution().unwrap();
        let b = pieces.solution().unwrap();
        assert_eq!(a.centers.len(), b.centers.len());
        for (x, y) in a.centers.iter().zip(&b.centers) {
            assert_eq!(x.coords(), y.coords());
        }
        assert_eq!(a.certain_radius.to_bits(), b.certain_radius.to_bits());
    }
}
