//! Exact one-dimensional k-center.
//!
//! On a line the k-center problem is solvable exactly in O(n log n)
//! (Megiddo et al. \[24\] in the paper's bibliography): sort the points;
//! the optimal radius is half the length of some gap-free window, i.e. one
//! of the O(n²) values `(x_j − x_i)/2` — but binary searching *feasibility*
//! over radii needs only the sorted order. Feasibility for radius `r` is a
//! greedy sweep: place a center at `leftmost uncovered + r`, skip the
//! points it covers, repeat; the point set is coverable by `k` intervals of
//! half-length `r` iff the sweep uses at most `k` centers.
//!
//! We binary search over the exact candidate set `{(x_j − x_i)/2}`
//! implicitly: the optimal radius is determined by a pair of points that
//! share a center, and the greedy sweep at radius `r` is monotone in `r`,
//! so we search over the sorted distinct half-gaps of *any* pair — realized
//! here as a search over the O(n²) pair distances for small n, or a
//! numeric bisection to machine precision for large n (both exposed; the
//! numeric path is what the uncertain 1-D solver uses too).

use crate::gonzalez::KCenterSolution;
use ukc_metric::Point;

/// Greedy feasibility sweep: minimal number of radius-`r` intervals needed
/// to cover the sorted values, together with the chosen centers.
fn sweep(sorted: &[f64], r: f64) -> (usize, Vec<f64>) {
    let mut centers = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let c = sorted[i] + r;
        centers.push(c);
        // Coverage slack scales with the coordinate magnitude: `c + r`
        // accumulates ~2 ulps of rounding, which at |x| ≈ 100 already
        // exceeds a fixed 1e-15 and would split a cluster spuriously.
        let tol = 8.0 * f64::EPSILON * (c.abs() + r.abs() + 1.0);
        while i < sorted.len() && sorted[i] <= c + r + tol {
            i += 1;
        }
    }
    (centers.len(), centers)
}

/// Exact 1-D k-center over scalar values.
///
/// Returns the optimal radius and centers. `values` need not be sorted.
/// Runs the exact combinatorial search (binary search over the O(n²)
/// candidate radii) when `n ≤ 2048`, otherwise bisects numerically to
/// `1e-12` relative precision — indistinguishable from exact at f64 scale.
///
/// # Panics
/// Panics if `values` is empty or `k == 0`.
pub fn one_d_kcenter(values: &[f64], k: usize) -> KCenterSolution<Point> {
    assert!(!values.is_empty(), "one_d_kcenter requires values");
    assert!(k > 0, "one_d_kcenter requires k >= 1");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();

    // Quick exit: enough centers for every distinct value.
    let (need_zero, _) = sweep(&sorted, 0.0);
    if need_zero <= k {
        let (_, centers) = sweep(&sorted, 0.0);
        return solution(centers, 0.0);
    }

    if n <= 2048 {
        // Exact: candidate radii are half the pairwise gaps.
        let mut radii: Vec<f64> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                radii.push((sorted[j] - sorted[i]) / 2.0);
            }
        }
        radii.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        radii.dedup();
        let mut lo = 0usize;
        let mut hi = radii.len() - 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if sweep(&sorted, radii[mid]).0 <= k {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let r = radii[hi];
        let (_, centers) = sweep(&sorted, r);
        solution(centers, r)
    } else {
        // Numeric bisection.
        let mut lo = 0.0f64;
        let mut hi = (sorted[n - 1] - sorted[0]) / 2.0;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if sweep(&sorted, mid).0 <= k {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let (_, centers) = sweep(&sorted, hi);
        solution(centers, hi)
    }
}

fn solution(centers: Vec<f64>, radius: f64) -> KCenterSolution<Point> {
    KCenterSolution {
        centers: centers.iter().map(|&c| Point::scalar(c)).collect(),
        center_indices: Vec::new(),
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcenter_cost;
    use ukc_metric::Euclidean;

    fn cost_of(values: &[f64], sol: &KCenterSolution<Point>) -> f64 {
        let pts: Vec<Point> = values.iter().map(|&v| Point::scalar(v)).collect();
        kcenter_cost(&pts, &sol.centers, &Euclidean)
    }

    #[test]
    fn single_center_is_midrange() {
        let vals = [1.0, 5.0, 2.0, 9.0];
        let sol = one_d_kcenter(&vals, 1);
        assert_eq!(sol.radius, 4.0);
        assert!((sol.centers[0].x() - 5.0).abs() < 1e-12);
        assert!(cost_of(&vals, &sol) <= sol.radius + 1e-9);
    }

    #[test]
    fn two_clusters_two_centers() {
        let vals = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0];
        let sol = one_d_kcenter(&vals, 2);
        assert_eq!(sol.radius, 1.0);
        assert!(cost_of(&vals, &sol) <= sol.radius + 1e-9);
    }

    #[test]
    fn k_covers_all_points_zero_radius() {
        let vals = [3.0, 1.0, 2.0];
        let sol = one_d_kcenter(&vals, 3);
        assert_eq!(sol.radius, 0.0);
        let sol = one_d_kcenter(&vals, 5);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn duplicates_do_not_need_extra_centers() {
        let vals = [1.0, 1.0, 1.0, 2.0, 2.0];
        let sol = one_d_kcenter(&vals, 2);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn uneven_clusters() {
        let vals = [0.0, 10.0, 11.0, 12.0, 13.0, 14.0];
        let sol = one_d_kcenter(&vals, 2);
        assert_eq!(sol.radius, 2.0);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Brute force: try all radius candidates (x_j-x_i)/2, take smallest
        // feasible; compare for many pseudo-random instances.
        let mut s: u64 = 99;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..30 {
            let n = 4 + (trial % 8);
            let vals: Vec<f64> = (0..n).map(|_| rnd() * 50.0).collect();
            for k in 1..=3usize {
                let sol = one_d_kcenter(&vals, k);
                // Brute force over candidate radii.
                let mut sorted = vals.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut best = f64::INFINITY;
                for i in 0..n {
                    for j in i..n {
                        let r = (sorted[j] - sorted[i]) / 2.0;
                        if sweep(&sorted, r).0 <= k {
                            best = best.min(r);
                        }
                    }
                }
                assert!(
                    (sol.radius - best).abs() < 1e-9,
                    "trial {trial} k {k}: {} vs {best}",
                    sol.radius
                );
            }
        }
    }

    #[test]
    fn large_instance_numeric_path() {
        let vals: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();
        let sol = one_d_kcenter(&vals, 4);
        assert!(cost_of(&vals, &sol) <= sol.radius * (1.0 + 1e-9) + 1e-9);
        // Sanity: radius must be < diameter/2 given 4 centers on a spread set.
        assert!(sol.radius < 100.0);
    }

    #[test]
    #[should_panic(expected = "requires values")]
    fn empty_values_panics() {
        let _ = one_d_kcenter(&[], 1);
    }
}
