//! Exact discrete k-center.
//!
//! Centers are restricted to an explicit candidate pool; the optimal radius
//! is then one of the point-candidate distances, so a binary search over the
//! sorted distinct distances with the exact set-cover decision of
//! [`crate::cover`] yields the true discrete optimum. This is the optimum
//! reference used by the experiments' ratio denominators and the inner
//! engine of the grid-based (1+ε) solver.

use crate::cover::{cover_decision, BitSet};
use crate::gonzalez::KCenterSolution;
use ukc_metric::DistanceOracle;

/// Options bounding the exact solver's effort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExactOptions {
    /// Refuse instances with more points than this (the decision procedure
    /// is exponential in the worst case).
    pub max_points: usize,
    /// Refuse instances with more candidates than this.
    pub max_candidates: usize,
}

impl Default for ExactOptions {
    fn default() -> Self {
        Self {
            max_points: 512,
            max_candidates: 8192,
        }
    }
}

/// Exact k-center with centers restricted to `candidates`.
///
/// Returns the optimal centers (as candidate indices and clones) and the
/// optimal radius, or `None` when the instance exceeds [`ExactOptions`]
/// limits or is infeasible (`k == 0` with points present).
///
/// Complexity: O(n·m) distances, O(log(nm)) cover decisions, each decision
/// worst-case exponential in `k` but fast under the fail-first/dominance
/// pruning for the small `k` used in experiments.
///
/// # Panics
/// Panics when `points` or `candidates` is empty.
pub fn exact_discrete_kcenter<P: Clone, M: DistanceOracle<P>>(
    points: &[P],
    candidates: &[P],
    k: usize,
    metric: &M,
    opts: ExactOptions,
) -> Option<KCenterSolution<P>> {
    assert!(!points.is_empty(), "exact solver requires points");
    assert!(!candidates.is_empty(), "exact solver requires candidates");
    let n = points.len();
    let m = candidates.len();
    if n > opts.max_points || m > opts.max_candidates || k == 0 {
        return None;
    }
    // Distance matrix candidate x point (one batched row per candidate),
    // plus the sorted distinct radii.
    let mut dist = vec![0.0f64; m * n];
    for (c, cand) in candidates.iter().enumerate() {
        metric.dists_to_one(points, cand, &mut dist[c * n..(c + 1) * n]);
    }
    let mut radii: Vec<f64> = dist.clone();
    radii.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    radii.dedup();

    let feasible = |r: f64| -> Option<Vec<usize>> {
        let masks: Vec<BitSet> = (0..m)
            .map(|c| {
                let mut b = BitSet::new(n);
                for p in 0..n {
                    if dist[c * n + p] <= r {
                        b.insert(p);
                    }
                }
                b
            })
            .collect();
        cover_decision(&masks, k)
    };

    // Binary search the smallest feasible radius over the candidate radii.
    let mut lo = 0usize; // invariant: radii[hi] is feasible
    let mut hi = radii.len() - 1;
    feasible(radii[hi])?; // largest radius must be feasible, else k==0-like corner
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(radii[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let r = radii[hi];
    let witness = feasible(r).expect("binary search invariant");
    let centers: Vec<P> = witness.iter().map(|&c| candidates[c].clone()).collect();
    Some(KCenterSolution {
        centers,
        center_indices: witness,
        radius: r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gonzalez::gonzalez;
    use crate::kcenter_cost;
    use ukc_metric::{Euclidean, FiniteMetric, Point, WeightedGraph};

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::scalar(i as f64)).collect()
    }

    #[test]
    fn one_center_on_line_picks_middle() {
        let pts = line(11); // 0..10
        let sol =
            exact_discrete_kcenter(&pts, &pts, 1, &Euclidean, ExactOptions::default()).unwrap();
        assert_eq!(sol.radius, 5.0);
        assert_eq!(sol.centers[0].x(), 5.0);
    }

    #[test]
    fn two_centers_on_line() {
        let pts = line(12); // 0..11, opt radius 2.5 -> discrete 3
        let sol =
            exact_discrete_kcenter(&pts, &pts, 2, &Euclidean, ExactOptions::default()).unwrap();
        assert_eq!(sol.radius, 3.0);
        let cost = kcenter_cost(&pts, &sol.centers, &Euclidean);
        assert_eq!(cost, sol.radius);
    }

    #[test]
    fn radius_matches_reported_cost() {
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![2.0, 1.0]),
            Point::new(vec![5.0, -1.0]),
            Point::new(vec![9.0, 3.0]),
            Point::new(vec![4.0, 4.0]),
        ];
        for k in 1..=3 {
            let sol =
                exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default()).unwrap();
            let cost = kcenter_cost(&pts, &sol.centers, &Euclidean);
            assert!((cost - sol.radius).abs() < 1e-12);
            assert!(sol.centers.len() <= k);
        }
    }

    #[test]
    fn exact_never_worse_than_gonzalez_and_at_least_half() {
        // Pseudo-random clouds: exact <= gonzalez <= 2 * exact.
        let mut s: u64 = 7;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..10 {
            let pts: Vec<Point> = (0..20)
                .map(|_| Point::new(vec![rnd() * 10.0, rnd() * 10.0]))
                .collect();
            let k = 1 + trial % 4;
            let ex =
                exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default()).unwrap();
            let gz = gonzalez(&pts, k, &Euclidean, 0);
            assert!(ex.radius <= gz.radius + 1e-12, "trial {trial}");
            assert!(gz.radius <= 2.0 * ex.radius + 1e-12, "trial {trial}");
        }
    }

    #[test]
    fn candidates_distinct_from_points() {
        // Points on a line, candidates only at even coordinates.
        let pts = line(7); // 0..6
        let cands: Vec<Point> = (0..4).map(|i| Point::scalar(2.0 * i as f64)).collect();
        let sol =
            exact_discrete_kcenter(&pts, &cands, 2, &Euclidean, ExactOptions::default()).unwrap();
        // With candidates {0,2,4,6}: picking 2 and 5... 5 unavailable; best
        // is e.g. {2, 5?} -> {2,4} radius 2, or {1?}. Optimal radius is 2
        // ({0..3} -> center 2 wait radius |0-2|=2; {4,5,6} -> center 4 or 6
        // radius 2... center 4: |6-4| = 2). So 2... but {2, 4}? point 6 at
        // distance 2. Check exact value:
        assert_eq!(sol.radius, 2.0);
    }

    #[test]
    fn respects_limits() {
        let pts = line(5);
        let opts = ExactOptions {
            max_points: 2,
            max_candidates: 100,
        };
        assert!(exact_discrete_kcenter(&pts, &pts, 1, &Euclidean, opts).is_none());
    }

    #[test]
    fn works_on_graph_metric() {
        let g = WeightedGraph::cycle(8, 1.0);
        let fm: FiniteMetric = g.shortest_path_metric().unwrap();
        let ids = fm.ids();
        let sol = exact_discrete_kcenter(&ids, &ids, 2, &fm, ExactOptions::default()).unwrap();
        // Two centers on an 8-cycle cover within distance 2.
        assert_eq!(sol.radius, 2.0);
    }

    #[test]
    fn k_ge_n_zero_radius() {
        let pts = line(3);
        let sol =
            exact_discrete_kcenter(&pts, &pts, 5, &Euclidean, ExactOptions::default()).unwrap();
        assert_eq!(sol.radius, 0.0);
    }
}
