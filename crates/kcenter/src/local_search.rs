//! Single-swap local search over a discrete candidate pool.
//!
//! Starting from any center set (typically Gonzalez's), repeatedly try
//! replacing one chosen center with one unchosen candidate, keeping the swap
//! that most reduces the k-center cost; stop at a local optimum. Local
//! search does not improve the worst-case factor, but in practice it
//! recovers most of the gap between the greedy 2-approximation and the
//! discrete optimum — it is the "mid-tier" certain solver in the
//! experiments' ablation A4.

use crate::gonzalez::KCenterSolution;
use crate::kcenter_cost;
use ukc_metric::DistanceOracle;

/// Improves `initial` center indices (into `candidates`) by best-improvement
/// single swaps until no swap helps or `max_rounds` is exhausted.
///
/// Returns the final solution. O(rounds · k · m · n) distance evaluations
/// for m candidates.
///
/// # Panics
/// Panics when `points` or `candidates` is empty, or an initial index is out
/// of range.
pub fn local_search_kcenter<P: Clone, M: DistanceOracle<P>>(
    points: &[P],
    candidates: &[P],
    initial: &[usize],
    metric: &M,
    max_rounds: usize,
) -> KCenterSolution<P> {
    assert!(!points.is_empty(), "local search requires points");
    assert!(!candidates.is_empty(), "local search requires candidates");
    assert!(
        initial.iter().all(|&i| i < candidates.len()),
        "initial center index out of range"
    );
    let mut current: Vec<usize> = initial.to_vec();
    let materialize =
        |idx: &[usize]| -> Vec<P> { idx.iter().map(|&i| candidates[i].clone()).collect() };
    let mut cost = kcenter_cost(points, &materialize(&current), metric);
    for _ in 0..max_rounds {
        let mut best_swap: Option<(usize, usize, f64)> = None;
        for slot in 0..current.len() {
            for cand in 0..candidates.len() {
                if current.contains(&cand) {
                    continue;
                }
                let old = current[slot];
                current[slot] = cand;
                let c = kcenter_cost(points, &materialize(&current), metric);
                current[slot] = old;
                if c < cost && best_swap.is_none_or(|(_, _, bc)| c < bc) {
                    best_swap = Some((slot, cand, c));
                }
            }
        }
        match best_swap {
            Some((slot, cand, c)) => {
                current[slot] = cand;
                cost = c;
            }
            None => break,
        }
    }
    KCenterSolution {
        centers: materialize(&current),
        center_indices: current,
        radius: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_discrete_kcenter, ExactOptions};
    use crate::gonzalez::gonzalez;
    use ukc_metric::{Euclidean, Point};

    fn cloud(seed: u64, n: usize) -> Vec<Point> {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(vec![rnd() * 10.0, rnd() * 10.0]))
            .collect()
    }

    #[test]
    fn never_worse_than_start() {
        for seed in 1..6u64 {
            let pts = cloud(seed, 25);
            let gz = gonzalez(&pts, 3, &Euclidean, 0);
            let ls = local_search_kcenter(&pts, &pts, &gz.center_indices, &Euclidean, 50);
            assert!(ls.radius <= gz.radius + 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn reaches_between_gonzalez_and_exact() {
        for seed in 1..6u64 {
            let pts = cloud(seed, 18);
            let k = 2 + (seed as usize) % 3;
            let gz = gonzalez(&pts, k, &Euclidean, 0);
            let ls = local_search_kcenter(&pts, &pts, &gz.center_indices, &Euclidean, 100);
            let ex =
                exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default()).unwrap();
            assert!(ex.radius <= ls.radius + 1e-12);
            assert!(ls.radius <= gz.radius + 1e-12);
        }
    }

    #[test]
    fn fixes_bad_initialization() {
        // Two clusters; start with both centers in the same cluster.
        let mut pts: Vec<Point> = (0..5).map(|i| Point::scalar(i as f64 * 0.1)).collect();
        pts.extend((0..5).map(|i| Point::scalar(100.0 + i as f64 * 0.1)));
        let ls = local_search_kcenter(&pts, &pts, &[0, 1], &Euclidean, 50);
        // A local optimum must place one center per cluster.
        assert!(ls.radius < 1.0, "radius {}", ls.radius);
    }

    #[test]
    fn zero_rounds_returns_initial_cost() {
        let pts = cloud(3, 10);
        let ls = local_search_kcenter(&pts, &pts, &[0], &Euclidean, 0);
        assert_eq!(ls.center_indices, vec![0]);
        let direct = kcenter_cost(&pts, &[pts[0].clone()], &Euclidean);
        assert!((ls.radius - direct).abs() < 1e-12);
    }
}
