//! Grid-based (1+ε)-approximate Euclidean k-center.
//!
//! The paper's theorems are parameterized by a black-box
//! (1+ε)-approximation for certain points (e.g. Bădoiu–Har-Peled–Indyk
//! \[4\] or Agarwal–Procopiuc \[1\]). We implement a certified scheme for
//! low dimension:
//!
//! 1. run Gonzalez for a radius estimate `r̂ ∈ [opt, 2·opt]`;
//! 2. lay a grid of spacing `δ = ε·r̂/(2√d)` over the bounding box of the
//!    input, keeping only grid vertices within `r̂ + δ√d` of some input
//!    point (others can never serve a cluster optimally);
//! 3. solve *discrete* k-center exactly over the grid candidates.
//!
//! Snapping the optimal centers to the grid inflates the radius by at most
//! `δ·√d/2 ≤ ε·r̂/4 ≤ ε·opt/2`, so the grid optimum is a
//! `(1+ε/2) ≤ (1+ε)` approximation. The candidate count grows like
//! `n·(1/ε)^d`, so the solver enforces a hard candidate cap and reports
//! failure beyond it (dimension ≤ 3 and moderate ε are the intended
//! regime — exactly the paper's experimental setting).

use crate::exact::{exact_discrete_kcenter, ExactOptions};
use crate::gonzalez::{gonzalez, KCenterSolution};
use ukc_metric::batch;
use ukc_metric::{Kernel, Point, PointId, PointStore, StoreOracle};
use ukc_pool::Exec;

/// Options for the grid (1+ε) solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridOptions {
    /// Approximation slack ε (> 0).
    pub eps: f64,
    /// Hard cap on generated grid candidates.
    pub max_candidates: usize,
    /// Limits forwarded to the exact discrete solver.
    pub exact: ExactOptions,
    /// Distance kernel for the internal sweeps (the solver runs on a
    /// [`PointStore`]; `Scalar` reproduces the historical per-pair
    /// arithmetic bit-for-bit).
    pub kernel: Kernel,
}

impl Default for GridOptions {
    fn default() -> Self {
        Self {
            eps: 0.5,
            max_candidates: 20_000,
            exact: ExactOptions {
                max_points: 512,
                max_candidates: 20_000,
            },
            kernel: Kernel::default(),
        }
    }
}

/// Certified (1+ε)-approximate Euclidean k-center.
///
/// Returns `None` when the grid would exceed `max_candidates` (caller should
/// fall back to Gonzalez) or the exact inner solve refuses the instance.
/// Duplicate-free inputs of dimension ≤ 3 with ε ≥ 0.1 are the supported
/// regime.
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or `eps <= 0`.
pub fn grid_kcenter(
    points: &[Point],
    k: usize,
    opts: GridOptions,
) -> Option<KCenterSolution<Point>> {
    grid_kcenter_exec(points, k, opts, Exec::sequential())
}

/// [`grid_kcenter`] with an execution context: the internal Gonzalez
/// radius estimate and the exact inner solve run their batched sweeps
/// through `exec`. Output is bit-identical for every `exec` (the
/// parallel kernels' determinism contract).
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or `eps <= 0`.
pub fn grid_kcenter_exec(
    points: &[Point],
    k: usize,
    opts: GridOptions,
    exec: Exec<'_>,
) -> Option<KCenterSolution<Point>> {
    assert!(!points.is_empty(), "grid solver requires points");
    assert!(k > 0, "grid solver requires k >= 1");
    assert!(opts.eps > 0.0, "eps must be positive");
    let d = points[0].dim();
    // The whole solve runs over one SoA store: the input points first,
    // kept grid vertices appended behind them.
    let mut store = PointStore::from_points(points);
    let point_ids = store.ids();
    let materialize = |sol: KCenterSolution<PointId>, store: &PointStore| KCenterSolution {
        centers: sol.centers.iter().map(|&id| store.point(id)).collect(),
        center_indices: sol.center_indices,
        radius: sol.radius,
    };
    let gz = gonzalez(
        &point_ids,
        k,
        &StoreOracle::new(&store, opts.kernel).with_exec(exec),
        0,
    );
    if gz.radius == 0.0 {
        // k distinct-ish points already have zero radius: optimal.
        return Some(materialize(gz, &store));
    }
    let r_hat = gz.radius; // in [opt, 2 opt]
    let sqrt_d = (d as f64).sqrt();
    let delta = opts.eps * r_hat / (2.0 * sqrt_d);
    // Bounding box.
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in points {
        for (i, &c) in p.coords().iter().enumerate() {
            lo[i] = lo[i].min(c);
            hi[i] = hi[i].max(c);
        }
    }
    // Candidate grid vertices near the input; enumerate cells per dimension.
    let mut counts = Vec::with_capacity(d);
    let mut total: usize = 1;
    for i in 0..d {
        let span = hi[i] - lo[i];
        let c = (span / delta).floor() as usize + 2;
        counts.push(c);
        total = total.saturating_mul(c);
        if total > opts.max_candidates.saturating_mul(64) {
            return None; // even the raw grid is hopeless
        }
    }
    let keep_radius = r_hat + delta * sqrt_d;
    let near_input = |store: &PointStore, coords: &[f64]| -> bool {
        let cand_norm_sq = batch::dot_blocked(coords, coords);
        point_ids.iter().any(|&p| {
            let d_sq = match opts.kernel {
                Kernel::Scalar => batch::dist_sq_scalar(store.coords(p), coords),
                // Grid vertices are synthesized coordinates, not store
                // rows, so the tiled caches don't apply; blocked
                // arithmetic shares its tolerance contract.
                Kernel::Blocked | Kernel::Tiled => {
                    batch::dist_sq_blocked(store.coords(p), store.norm_sq(p), coords, cand_norm_sq)
                }
            };
            d_sq.sqrt() <= keep_radius
        })
    };
    let mut cand_ids: Vec<PointId> = Vec::new();
    let mut idx = vec![0usize; d];
    'cells: loop {
        let coords: Vec<f64> = (0..d).map(|i| lo[i] + idx[i] as f64 * delta).collect();
        // Keep the vertex only if some input point is within keep_radius.
        if near_input(&store, &coords) {
            cand_ids.push(store.push(&coords));
            if cand_ids.len() > opts.max_candidates {
                return None;
            }
        }
        // Odometer increment.
        for i in 0..d {
            idx[i] += 1;
            if idx[i] < counts[i] {
                continue 'cells;
            }
            idx[i] = 0;
        }
        break;
    }
    if cand_ids.is_empty() {
        return Some(materialize(gz, &store));
    }
    let oracle = StoreOracle::new(&store, opts.kernel).with_exec(exec);
    let sol = exact_discrete_kcenter(&point_ids, &cand_ids, k, &oracle, opts.exact)?;
    // The grid optimum is certified (1+eps); but Gonzalez may still win on
    // degenerate inputs (e.g. grid quantization of tiny instances), so take
    // the better of the two.
    if gz.radius < sol.radius {
        Some(materialize(gz, &store))
    } else {
        Some(materialize(sol, &store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_discrete_kcenter, ExactOptions};
    use crate::kcenter_cost;
    use ukc_metric::{Euclidean, Metric};

    fn cloud(seed: u64, n: usize, d: usize) -> Vec<Point> {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new((0..d).map(|_| rnd() * 10.0).collect()))
            .collect()
    }

    /// Continuous lower bound on the optimal k-center radius: half the
    /// (k+1)-th largest pairwise "scattering" via Gonzalez residues.
    fn continuous_lb(points: &[Point], k: usize) -> f64 {
        // The distance of the (k+1)-th Gonzalez pick to the first k picks is
        // a lower bound on 2*opt... actually on opt: k+1 points pairwise
        // > 2r cannot be covered by k balls of radius r. Use the standard
        // bound: r_{k+1}/2 where r_{k+1} is the Gonzalez residual.
        let idx = crate::gonzalez::gonzalez_indices(points, k + 1, &Euclidean, 0);
        if idx.len() <= k {
            return 0.0;
        }
        let last = &points[idx[k]];
        let centers: Vec<Point> = idx[..k].iter().map(|&i| points[i].clone()).collect();
        Euclidean.dist_to_set(last, &centers) / 2.0
    }

    #[test]
    fn certified_eps_vs_continuous_lower_bound() {
        for seed in 1..6u64 {
            let pts = cloud(seed, 15, 2);
            for &k in &[2usize, 3] {
                for &eps in &[0.5, 0.25] {
                    let opts = GridOptions {
                        eps,
                        ..Default::default()
                    };
                    let sol = grid_kcenter(&pts, k, opts).expect("grid within caps");
                    let lb = continuous_lb(&pts, k);
                    assert!(
                        sol.radius <= (1.0 + eps) * 2.0 * lb.max(1e-12) + 1e-9
                            || sol.radius <= (1.0 + eps) * lb * 2.0 + 1e-9,
                        "seed {seed} k {k} eps {eps}: radius {} lb {lb}",
                        sol.radius
                    );
                    // The certified property we rely on: grid beats
                    // (1+eps) times the *discrete* optimum over the points
                    // (which itself is at most 2x continuous opt).
                    let disc =
                        exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default())
                            .unwrap();
                    assert!(
                        sol.radius <= (1.0 + eps) * disc.radius + 1e-9,
                        "seed {seed}: grid {} discrete {}",
                        sol.radius,
                        disc.radius
                    );
                }
            }
        }
    }

    #[test]
    fn radius_matches_cost() {
        let pts = cloud(9, 12, 2);
        let sol = grid_kcenter(&pts, 2, GridOptions::default()).unwrap();
        let cost = kcenter_cost(&pts, &sol.centers, &Euclidean);
        assert!((cost - sol.radius).abs() < 1e-9);
    }

    #[test]
    fn one_dimensional_grid_matches_exact_1d() {
        let pts: Vec<Point> = [0.0, 1.0, 2.0, 9.0, 10.0, 11.0]
            .iter()
            .map(|&x| Point::scalar(x))
            .collect();
        let sol = grid_kcenter(
            &pts,
            2,
            GridOptions {
                eps: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        // Optimal continuous radius is 1 (centers at 1 and 10).
        assert!(sol.radius <= 1.1 + 1e-9, "radius {}", sol.radius);
    }

    #[test]
    fn degenerate_all_same_point() {
        let pts = vec![Point::new(vec![1.0, 1.0]); 5];
        let sol = grid_kcenter(&pts, 2, GridOptions::default()).unwrap();
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn candidate_cap_returns_none() {
        let pts = cloud(4, 30, 3);
        let opts = GridOptions {
            eps: 0.01,
            max_candidates: 100,
            ..Default::default()
        };
        assert!(grid_kcenter(&pts, 2, opts).is_none());
    }

    #[test]
    fn improves_on_gonzalez_for_adversarial_line() {
        // 4 points where greedy from index 0 is strictly suboptimal for k=2:
        // {0, 4, 5, 9}: Gonzalez(start 0) picks 0 then 9 -> radius 2.0
        // (point 4->0 is 4? no: 4 to 0 is 4... let's use classic example)
        let pts: Vec<Point> = [0.0, 3.9, 4.1, 8.0]
            .iter()
            .map(|&x| Point::scalar(x))
            .collect();
        let gz = gonzalez(&pts, 2, &Euclidean, 0);
        let grid = grid_kcenter(
            &pts,
            2,
            GridOptions {
                eps: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(grid.radius <= gz.radius + 1e-12);
        // Continuous optimum: centers ~1.95 and ~6.05, radius ~1.95.
        assert!(grid.radius <= 1.95 * 1.1 + 1e-6, "radius {}", grid.radius);
    }
}
