//! Exact set-cover decision procedure for discrete k-center.
//!
//! The decision version of discrete k-center — "do k candidate centers of
//! radius `r` cover all points?" — is a set-cover instance. This module
//! solves it *exactly* by branch and bound over coverage bitsets, which is
//! fast in practice for the small `k` the experiments use:
//!
//! * dominated candidates (coverage ⊆ another's coverage) are discarded;
//! * the branching variable is always the uncovered point with the fewest
//!   covering candidates (fail-first);
//! * a coverage bound prunes branches where the `k` remaining picks cannot
//!   cover the uncovered points even at maximal coverage.

/// A fixed-capacity bitset over point indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` points.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts point `i`.
    ///
    /// # Panics
    /// Panics when `i` is outside the universe.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ∪= other`.
    ///
    /// # Panics
    /// Panics when universes differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// `true` when `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.len == other.len
            && self
                .words
                .iter()
                .zip(other.words.iter())
                .all(|(a, b)| a & !b == 0)
    }

    /// `true` when every point of the universe is covered.
    pub fn is_full(&self) -> bool {
        self.count() == self.len
    }

    /// Iterates over the indices *not* in the set.
    pub fn iter_missing(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.contains(i))
    }
}

/// Exact decision: can `k` of the candidate coverage sets cover the whole
/// universe? Returns the indices of a witness cover (at most `k` of them),
/// or `None` when impossible.
///
/// `masks[c]` is the set of points candidate `c` covers. Runs branch and
/// bound; worst-case exponential but the fail-first heuristic plus
/// dominance pruning makes small-instance use (n ≤ 64-ish, k ≤ 6)
/// effectively instant.
pub fn cover_decision(masks: &[BitSet], k: usize) -> Option<Vec<usize>> {
    if masks.is_empty() {
        return None;
    }
    let n = masks[0].universe();
    assert!(masks.iter().all(|m| m.universe() == n), "universe mismatch");
    if n == 0 {
        return Some(Vec::new());
    }
    if k == 0 {
        return None;
    }
    // Dominance pruning: drop candidates whose coverage is a subset of
    // another candidate's coverage (keep the first of equal pairs).
    let mut keep: Vec<usize> = Vec::with_capacity(masks.len());
    'outer: for i in 0..masks.len() {
        for j in 0..masks.len() {
            if i == j {
                continue;
            }
            if masks[i].is_subset(&masks[j]) && (!masks[j].is_subset(&masks[i]) || j < i) {
                continue 'outer; // i dominated by j
            }
        }
        keep.push(i);
    }
    if keep.is_empty() {
        return None;
    }
    // Any point not covered by the union of all candidates => infeasible.
    let mut all = BitSet::new(n);
    for &c in &keep {
        all.union_with(&masks[c]);
    }
    if !all.is_full() {
        return None;
    }
    let max_cov = keep.iter().map(|&c| masks[c].count()).max().unwrap_or(0);
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let covered = BitSet::new(n);
    if branch(masks, &keep, k, &covered, max_cov, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

fn branch(
    masks: &[BitSet],
    keep: &[usize],
    k: usize,
    covered: &BitSet,
    max_cov: usize,
    chosen: &mut Vec<usize>,
) -> bool {
    if covered.is_full() {
        return true;
    }
    if k == 0 {
        return false;
    }
    let uncovered = covered.universe() - covered.count();
    if uncovered > k * max_cov {
        return false; // even maximal coverage cannot finish
    }
    // Fail-first: the uncovered point with the fewest covering candidates.
    let mut best_point = usize::MAX;
    let mut best_cands: Vec<usize> = Vec::new();
    for p in covered.iter_missing() {
        let cands: Vec<usize> = keep
            .iter()
            .copied()
            .filter(|&c| masks[c].contains(p))
            .collect();
        if cands.is_empty() {
            return false; // p cannot be covered at all
        }
        if best_point == usize::MAX || cands.len() < best_cands.len() {
            best_point = p;
            best_cands = cands;
            if best_cands.len() == 1 {
                break;
            }
        }
    }
    for c in best_cands {
        let mut next = covered.clone();
        next.union_with(&masks[c]);
        chosen.push(c);
        if branch(masks, keep, k - 1, &next, max_cov, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(n: usize, bits: &[usize]) -> BitSet {
        let mut m = BitSet::new(n);
        for &b in bits {
            m.insert(b);
        }
        m
    }

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(100);
        assert_eq!(b.count(), 0);
        b.insert(0);
        b.insert(63);
        b.insert(64);
        b.insert(99);
        assert_eq!(b.count(), 4);
        assert!(b.contains(63) && b.contains(64));
        assert!(!b.contains(1));
        assert!(!b.is_full());
        let missing: Vec<usize> = b.iter_missing().collect();
        assert_eq!(missing.len(), 96);
    }

    #[test]
    fn bitset_subset_and_union() {
        let a = mask(10, &[1, 2]);
        let b = mask(10, &[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c, b);
    }

    #[test]
    fn trivial_single_candidate_cover() {
        let masks = vec![mask(3, &[0, 1, 2])];
        let w = cover_decision(&masks, 1).unwrap();
        assert_eq!(w, vec![0]);
    }

    #[test]
    fn needs_two_candidates() {
        let masks = vec![mask(4, &[0, 1]), mask(4, &[2, 3]), mask(4, &[1, 2])];
        assert!(cover_decision(&masks, 1).is_none());
        let w = cover_decision(&masks, 2).unwrap();
        let mut covered = BitSet::new(4);
        for &c in &w {
            covered.union_with(&masks[c]);
        }
        assert!(covered.is_full());
    }

    #[test]
    fn infeasible_when_point_uncoverable() {
        let masks = vec![mask(3, &[0]), mask(3, &[1])];
        assert!(cover_decision(&masks, 2).is_none());
    }

    #[test]
    fn dominated_candidates_do_not_matter() {
        let masks = vec![
            mask(4, &[0]), // dominated by 2
            mask(4, &[2, 3]),
            mask(4, &[0, 1]),
        ];
        let w = cover_decision(&masks, 2).unwrap();
        let mut covered = BitSet::new(4);
        for &c in &w {
            covered.union_with(&masks[c]);
        }
        assert!(covered.is_full());
        assert!(w.len() <= 2);
    }

    #[test]
    fn k_zero_only_covers_empty_universe() {
        let masks = vec![mask(0, &[])];
        assert_eq!(cover_decision(&masks, 0), Some(vec![]));
        let masks = vec![mask(1, &[0])];
        assert!(cover_decision(&masks, 0).is_none());
    }

    #[test]
    fn exhaustive_agreement_with_brute_force_small() {
        // Compare against brute-force subset enumeration on randomized-ish
        // small instances built from a deterministic counter.
        let n = 8;
        for seed in 0..40u64 {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
            let mut rnd = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let m = 6;
            let masks: Vec<BitSet> = (0..m)
                .map(|_| {
                    let bits = rnd() % 256;
                    let mut b = BitSet::new(n);
                    for i in 0..n {
                        if bits >> i & 1 == 1 {
                            b.insert(i);
                        }
                    }
                    b
                })
                .collect();
            for k in 1..=3usize {
                let bb = cover_decision(&masks, k).is_some();
                // Brute force over all subsets of size <= k.
                let mut brute = false;
                for sel in 0u32..(1 << m) {
                    if (sel.count_ones() as usize) > k {
                        continue;
                    }
                    let mut cov = BitSet::new(n);
                    #[allow(clippy::needless_range_loop)] // c indexes the selector bits too
                    for c in 0..m {
                        if sel >> c & 1 == 1 {
                            cov.union_with(&masks[c]);
                        }
                    }
                    if cov.is_full() {
                        brute = true;
                        break;
                    }
                }
                assert_eq!(bb, brute, "seed {seed} k {k}");
            }
        }
    }
}
