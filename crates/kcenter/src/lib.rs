//! # ukc-kcenter — deterministic k-center solvers
//!
//! The paper's uncertain k-center algorithms reduce to *certain* k-center on
//! representative points: "let `c₁..c_k` be a (1+ε)-approximation solution
//! for the k-center problem for `P̄₁..P̄_n`". This crate supplies the
//! interchangeable certain-point solvers:
//!
//! * [`gonzalez()`] — the greedy farthest-point 2-approximation of Gonzalez
//!   \[13\], O(nk); used by the paper's Remark 3.1 to obtain the factor-6 and
//!   factor-4 rows of Table 1 in O(nz + n log k) total time.
//! * [`mod@exact`] — exact *discrete* k-center (centers restricted to a candidate
//!   pool) via binary search over the candidate radii with a
//!   branch-and-bound set-cover decision procedure; the optimum reference
//!   for small instances.
//! * [`mod@local_search`] — single-swap local search refinement over a discrete
//!   candidate pool; a cheap improvement pass between Gonzalez and exact.
//! * [`mod@grid`] — a certified (1+ε)-approximation for low-dimensional
//!   Euclidean inputs: snap candidate centers to a grid of spacing
//!   `ε·r̂/(2√d)` (where `r̂` is the Gonzalez radius) and solve the discrete
//!   problem exactly over the grid candidates.
//! * [`mod@one_d`] — exact 1-D k-center in O(n log n) (binary search over
//!   candidate radii with a linear sweep), the deterministic special case
//!   the paper's row 8 builds on.
//!
//! All solvers are generic over [`ukc_metric::Metric`] except the grid
//! solver, which is inherently Euclidean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod exact;
pub mod gonzalez;
pub mod grid;
pub mod local_search;
pub mod one_d;

pub use exact::{exact_discrete_kcenter, ExactOptions};
pub use gonzalez::{gonzalez, gonzalez_indices, gonzalez_indices_weighted, KCenterSolution};
pub use grid::{grid_kcenter, grid_kcenter_exec, GridOptions};
pub use local_search::local_search_kcenter;
pub use one_d::one_d_kcenter;

use ukc_metric::DistanceOracle;

/// The k-center cost of a center set: `max_i d(pᵢ, C)`.
///
/// Returns 0 for an empty point set and `+∞` for an empty center set over a
/// non-empty point set.
///
/// Evaluated through the fused
/// [`DistanceOracle::dists_to_centers_min`] sweep (by default one
/// [`DistanceOracle::dists_to_set_min`] pass per center; a store oracle's
/// tiled kernel streams each point past all centers at once); the result
/// is identical to the point-major `max_i min_c` loop (min and max are
/// order-independent over the same pair set), and the evaluation count is
/// `n·k` either way.
pub fn kcenter_cost<P, M: DistanceOracle<P>>(points: &[P], centers: &[P], metric: &M) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let mut min_dist = vec![f64::INFINITY; points.len()];
    metric.dists_to_centers_min(points, centers, &mut min_dist);
    min_dist.into_iter().fold(0.0, f64::max)
}

/// The additively-weighted k-center cost:
/// `max_i min_c (d(pᵢ, c) − w_c)`, clamped below at zero (a point inside
/// some center's weighted cell contributes no cost).
///
/// Returns 0 for an empty point set and `+∞` for an empty center set over
/// a non-empty point set. With all-zero weights this equals
/// [`kcenter_cost`].
///
/// # Panics
/// Panics when `weights` and `centers` differ in length.
pub fn kcenter_cost_weighted<P, M: DistanceOracle<P>>(
    points: &[P],
    centers: &[P],
    weights: &[f64],
    metric: &M,
) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let mut min_dist = vec![f64::INFINITY; points.len()];
    metric.dists_to_centers_min_weighted(points, centers, weights, &mut min_dist);
    min_dist.into_iter().fold(0.0, f64::max)
}

/// Assigns every point to its nearest center, returning center indices.
///
/// Runs through the batched [`DistanceOracle::nearest_each`] sweep, so a
/// pool-backed oracle parallelizes it across points with identical
/// output.
///
/// # Panics
/// Panics when `centers` is empty and `points` is not.
pub fn nearest_assignment<P, M: DistanceOracle<P>>(
    points: &[P],
    centers: &[P],
    metric: &M,
) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    assert!(
        !centers.is_empty(),
        "nearest_assignment requires at least one center"
    );
    let mut nearest = vec![(0usize, 0.0f64); points.len()];
    metric.nearest_each(points, centers, &mut nearest);
    nearest.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::{Euclidean, Point};

    #[test]
    fn cost_of_empty_inputs() {
        let m = Euclidean;
        let pts = vec![Point::scalar(1.0)];
        assert_eq!(kcenter_cost::<Point, _>(&[], &pts, &m), 0.0);
        assert_eq!(kcenter_cost(&pts, &[], &m), f64::INFINITY);
    }

    #[test]
    fn cost_is_max_min_distance() {
        let m = Euclidean;
        let pts = vec![Point::scalar(0.0), Point::scalar(10.0), Point::scalar(4.0)];
        let centers = vec![Point::scalar(1.0), Point::scalar(9.0)];
        assert!((kcenter_cost(&pts, &centers, &m) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_assignment_basic() {
        let m = Euclidean;
        let pts = vec![Point::scalar(0.0), Point::scalar(10.0), Point::scalar(4.0)];
        let centers = vec![Point::scalar(1.0), Point::scalar(9.0)];
        assert_eq!(nearest_assignment(&pts, &centers, &m), vec![0, 1, 0]);
    }
}
