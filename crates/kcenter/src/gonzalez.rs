//! Gonzalez's greedy farthest-point 2-approximation.
//!
//! Repeatedly pick the point farthest from the current center set
//! (Gonzalez \[13\]; paper Remark 3.1). The result is a 2-approximation of
//! the optimal k-center cost over *any* metric space, which is what turns
//! the paper's (1+ε)-parameterized theorems into the concrete factor-6 and
//! factor-4 table rows.

use crate::kcenter_cost;
use ukc_metric::DistanceOracle;

/// A k-center solution over an explicit point slice.
#[derive(Clone, Debug, PartialEq)]
pub struct KCenterSolution<P> {
    /// The chosen centers (owned copies of input points or synthesized
    /// locations, depending on the solver).
    pub centers: Vec<P>,
    /// Indices of the chosen centers in the solver's candidate pool, when
    /// the solver picks from a pool (Gonzalez picks input points).
    pub center_indices: Vec<usize>,
    /// The k-center cost `max_i d(pᵢ, centers)` of this solution.
    pub radius: f64,
}

/// Runs Gonzalez's greedy algorithm, returning the chosen center *indices*
/// into `points` (the first center is `start`).
///
/// O(nk) distance evaluations. Returns all indices when `k >= n`.
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or `start` is out of range.
pub fn gonzalez_indices<P, M: DistanceOracle<P>>(
    points: &[P],
    k: usize,
    metric: &M,
    start: usize,
) -> Vec<usize> {
    assert!(!points.is_empty(), "gonzalez requires at least one point");
    assert!(k > 0, "gonzalez requires k >= 1");
    assert!(start < points.len(), "start index out of range");
    let n = points.len();
    let k = k.min(n);
    let mut centers = Vec::with_capacity(k);
    centers.push(start);
    // dist[i] = d(points[i], current centers), maintained by the batched
    // min-update kernel (one pass per new center).
    let mut dist = vec![f64::INFINITY; n];
    metric.dists_to_one(points, &points[start], &mut dist);
    while centers.len() < k {
        // Farthest point from the current centers.
        let (far, far_d) = dist
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty");
        if far_d == 0.0 {
            // Fewer than k distinct points: every point is already a center.
            break;
        }
        centers.push(far);
        metric.dists_to_set_min(points, &points[far], &mut dist);
    }
    centers
}

/// The additively-weighted (Apollonius) form of [`gonzalez_indices`]:
/// `weights[i]` is the additive weight point `i` carries *when chosen as
/// a center*, and the maintained coverage array holds weighted distances
/// `min_c d(pᵢ, c) − w_c`. Each round picks the point with the largest
/// weighted distance — the point least covered once every center's
/// weight is credited — and stops early when every weighted distance has
/// reached zero (all points inside some center's weighted cell).
///
/// With all-zero weights this is exactly [`gonzalez_indices`], operation
/// for operation, which the weighted-equivalence suite pins.
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, `start` is out of range, or
/// `weights` and `points` differ in length.
pub fn gonzalez_indices_weighted<P, M: DistanceOracle<P>>(
    points: &[P],
    weights: &[f64],
    k: usize,
    metric: &M,
    start: usize,
) -> Vec<usize> {
    assert!(!points.is_empty(), "gonzalez requires at least one point");
    assert!(k > 0, "gonzalez requires k >= 1");
    assert!(start < points.len(), "start index out of range");
    assert_eq!(points.len(), weights.len(), "one weight per point required");
    let n = points.len();
    let k = k.min(n);
    let mut centers = Vec::with_capacity(k);
    centers.push(start);
    let mut dist = vec![f64::INFINITY; n];
    metric.dists_to_set_min_weighted(points, &points[start], weights[start], &mut dist);
    while centers.len() < k {
        let (far, far_d) = dist
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty");
        if far_d <= 0.0 {
            // Every point already sits inside some center's weighted cell.
            break;
        }
        centers.push(far);
        metric.dists_to_set_min_weighted(points, &points[far], weights[far], &mut dist);
    }
    centers
}

/// Runs Gonzalez's greedy algorithm and materializes the full
/// [`KCenterSolution`] (centers, their indices, and the resulting radius).
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or `start` is out of range.
pub fn gonzalez<P: Clone, M: DistanceOracle<P>>(
    points: &[P],
    k: usize,
    metric: &M,
    start: usize,
) -> KCenterSolution<P> {
    let idx = gonzalez_indices(points, k, metric, start);
    let centers: Vec<P> = idx.iter().map(|&i| points[i].clone()).collect();
    let radius = kcenter_cost(points, &centers, metric);
    KCenterSolution {
        centers,
        center_indices: idx,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::{Euclidean, FiniteMetric, Manhattan, Point};

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::scalar(i as f64)).collect()
    }

    #[test]
    fn one_center_picks_start() {
        let pts = line(5);
        let sol = gonzalez(&pts, 1, &Euclidean, 0);
        assert_eq!(sol.center_indices, vec![0]);
        assert_eq!(sol.radius, 4.0);
    }

    #[test]
    fn two_centers_on_line() {
        let pts = line(11); // 0..10
        let sol = gonzalez(&pts, 2, &Euclidean, 0);
        // Second center is the farthest point from 0, i.e. 10.
        assert_eq!(sol.center_indices, vec![0, 10]);
        assert_eq!(sol.radius, 5.0);
    }

    #[test]
    fn k_at_least_n_gives_zero_radius() {
        let pts = line(4);
        let sol = gonzalez(&pts, 10, &Euclidean, 2);
        assert_eq!(sol.centers.len(), 4);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn duplicate_points_terminate_early() {
        let pts = vec![Point::scalar(1.0), Point::scalar(1.0), Point::scalar(1.0)];
        let sol = gonzalez(&pts, 3, &Euclidean, 0);
        assert_eq!(sol.centers.len(), 1);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn two_approximation_on_random_clusters() {
        // Three tight clusters far apart: Gonzalez with k=3 must find one
        // center per cluster, and its radius is at most 2x the optimum.
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (100.0, 0.0), (50.0, 80.0)] {
            for i in 0..10 {
                let t = i as f64 * 0.1;
                pts.push(Point::new(vec![cx + t, cy - t]));
            }
        }
        let sol = gonzalez(&pts, 3, &Euclidean, 0);
        // Optimal radius is at most the cluster in-radius (~0.64); Gonzalez
        // must stay within one cluster diameter.
        assert!(sol.radius <= 1.3, "radius {}", sol.radius);
        // Centers in distinct clusters.
        let cluster_of = |p: &Point| -> usize {
            [(0.0, 0.0), (100.0, 0.0), (50.0, 80.0)]
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da = (p[0] - a.0).powi(2) + (p[1] - a.1).powi(2);
                    let db = (p[0] - b.0).powi(2) + (p[1] - b.1).powi(2);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap()
                .0
        };
        let mut seen = [false; 3];
        for c in &sol.centers {
            seen[cluster_of(c)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_on_finite_metric() {
        // Cycle metric on 6 ids; k=2 should land on opposite sides.
        let g = ukc_metric::WeightedGraph::cycle(6, 1.0);
        let fm: FiniteMetric = g.shortest_path_metric().unwrap();
        let ids = fm.ids();
        let sol = gonzalez(&ids, 2, &fm, 0);
        assert_eq!(sol.center_indices.len(), 2);
        assert!(sol.radius <= 2.0);
    }

    #[test]
    fn works_on_manhattan() {
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![10.0, 10.0]),
        ];
        let sol = gonzalez(&pts, 2, &Manhattan, 0);
        assert_eq!(sol.center_indices, vec![0, 2]);
        assert_eq!(sol.radius, 2.0);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let pts = line(3);
        let _ = gonzalez(&pts, 0, &Euclidean, 0);
    }

    #[test]
    fn weighted_gonzalez_with_zero_weights_matches_plain() {
        let pts = line(17);
        let zeros = vec![0.0; pts.len()];
        for (k, start) in [(1, 0), (3, 5), (5, 16)] {
            assert_eq!(
                gonzalez_indices_weighted(&pts, &zeros, k, &Euclidean, start),
                gonzalez_indices(&pts, k, &Euclidean, start),
            );
        }
    }

    #[test]
    fn weighted_gonzalez_stops_once_weights_cover_everything() {
        // Every point is within weight 100 of the start center, so the
        // weighted farthest distance is negative after one pick.
        let pts = line(9);
        let weights = vec![100.0; pts.len()];
        let idx = gonzalez_indices_weighted(&pts, &weights, 5, &Euclidean, 0);
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn weighted_gonzalez_prefers_weight_uncovered_points() {
        // Points 0..4 tight, point 4 remote; a big weight on index 0
        // covers the tight group, so the second pick must be the remote
        // point regardless of raw distance ordering.
        let pts = vec![
            Point::scalar(0.0),
            Point::scalar(0.1),
            Point::scalar(0.2),
            Point::scalar(0.3),
            Point::scalar(50.0),
        ];
        let weights = vec![1.0, 0.0, 0.0, 0.0, 0.0];
        let idx = gonzalez_indices_weighted(&pts, &weights, 2, &Euclidean, 0);
        assert_eq!(idx, vec![0, 4]);
    }

    #[test]
    fn start_choice_changes_centers_not_quality_much() {
        let pts = line(21);
        let a = gonzalez(&pts, 3, &Euclidean, 0);
        let b = gonzalez(&pts, 3, &Euclidean, 10);
        // Both are 2-approximations of opt (= 10/3 for 3 centers on 0..20).
        let opt = 20.0 / 6.0;
        assert!(a.radius <= 2.0 * opt + 1e-9);
        assert!(b.radius <= 2.0 * opt + 1e-9);
    }
}
