//! Property tests for the deterministic k-center solvers.

use proptest::prelude::*;
use ukc_kcenter::cover::{cover_decision, BitSet};
use ukc_kcenter::{
    exact_discrete_kcenter, gonzalez, kcenter_cost, local_search_kcenter, one_d_kcenter,
    ExactOptions,
};
use ukc_metric::{Euclidean, Point};

fn points(n: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 2..=2), n)
        .prop_map(|rows| rows.into_iter().map(Point::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gonzalez is a 2-approximation of the discrete optimum, and local
    /// search sits between them.
    #[test]
    fn solver_hierarchy(pts in points(3..=12), k in 1usize..=3) {
        let gz = gonzalez(&pts, k, &Euclidean, 0);
        let ls = local_search_kcenter(&pts, &pts, &gz.center_indices, &Euclidean, 30);
        let ex = exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default())
            .unwrap();
        prop_assert!(ex.radius <= ls.radius + 1e-9);
        prop_assert!(ls.radius <= gz.radius + 1e-9);
        prop_assert!(gz.radius <= 2.0 * ex.radius + 1e-9);
    }

    /// The reported radius always equals the recomputed cost.
    #[test]
    fn reported_radius_is_cost(pts in points(2..=10), k in 1usize..=3) {
        let gz = gonzalez(&pts, k, &Euclidean, 0);
        prop_assert!((kcenter_cost(&pts, &gz.centers, &Euclidean) - gz.radius).abs() < 1e-9);
        let ex = exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default())
            .unwrap();
        prop_assert!((kcenter_cost(&pts, &ex.centers, &Euclidean) - ex.radius).abs() < 1e-9);
    }

    /// Exact radius is monotone non-increasing in k.
    #[test]
    fn exact_monotone_in_k(pts in points(4..=10)) {
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let ex = exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default())
                .unwrap();
            prop_assert!(ex.radius <= prev + 1e-12);
            prev = ex.radius;
        }
    }

    /// 1-D exact solver matches the 2-D exact solver on embedded lines.
    #[test]
    fn one_d_matches_discrete_on_lines(vals in prop::collection::vec(-100.0f64..100.0, 3..=10), k in 1usize..=3) {
        let sol = one_d_kcenter(&vals, k);
        // The continuous 1-D optimum can only be <= the discrete optimum
        // (centers restricted to input points), and >= half of it.
        let pts: Vec<Point> = vals.iter().map(|&v| Point::scalar(v)).collect();
        let disc = exact_discrete_kcenter(&pts, &pts, k, &Euclidean, ExactOptions::default())
            .unwrap();
        prop_assert!(sol.radius <= disc.radius + 1e-9);
        prop_assert!(disc.radius <= 2.0 * sol.radius + 1e-9);
    }

    /// Gonzalez output is independent of duplicated tail points.
    #[test]
    fn gonzalez_stable_under_duplicates(pts in points(2..=8), k in 1usize..=3) {
        let base = gonzalez(&pts, k, &Euclidean, 0);
        let mut dup = pts.clone();
        dup.extend(pts.iter().cloned());
        let doubled = gonzalez(&dup, k, &Euclidean, 0);
        prop_assert!((base.radius - doubled.radius).abs() < 1e-9);
    }

    /// Cover decision agrees with subset brute force.
    #[test]
    fn cover_decision_vs_brute(masks_raw in prop::collection::vec(0u32..256, 2..=6), k in 1usize..=3) {
        let n = 8;
        let masks: Vec<BitSet> = masks_raw
            .iter()
            .map(|&bits| {
                let mut b = BitSet::new(n);
                for i in 0..n {
                    if bits >> i & 1 == 1 {
                        b.insert(i);
                    }
                }
                b
            })
            .collect();
        let bb = cover_decision(&masks, k).is_some();
        let mut brute = false;
        let m = masks.len();
        for sel in 0u32..(1 << m) {
            if (sel.count_ones() as usize) > k {
                continue;
            }
            let mut cov = BitSet::new(n);
            #[allow(clippy::needless_range_loop)] // c indexes the selector bits too
            for c in 0..m {
                if sel >> c & 1 == 1 {
                    cov.union_with(&masks[c]);
                }
            }
            if cov.is_full() {
                brute = true;
                break;
            }
        }
        prop_assert_eq!(bb, brute);
    }

    /// A returned cover witness actually covers.
    #[test]
    fn cover_witness_is_valid(masks_raw in prop::collection::vec(1u32..256, 2..=6), k in 1usize..=4) {
        let n = 8;
        let masks: Vec<BitSet> = masks_raw
            .iter()
            .map(|&bits| {
                let mut b = BitSet::new(n);
                for i in 0..n {
                    if bits >> i & 1 == 1 || i == (bits as usize) % n {
                        b.insert(i);
                    }
                }
                b
            })
            .collect();
        if let Some(witness) = cover_decision(&masks, k) {
            prop_assert!(witness.len() <= k);
            let mut cov = BitSet::new(n);
            for &c in &witness {
                cov.union_with(&masks[c]);
            }
            prop_assert!(cov.is_full());
        }
    }
}
