//! # ukc-bench — benchmark harness
//!
//! Criterion benches reproducing the *running time* column of the paper's
//! Table 1, one bench target per row family, plus substrate microbenches:
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `t1_one_center` | row 1: `P̄` in O(z), vs the reference optimizer |
//! | `t1_restricted_greedy` | rows 2/4: O(nz + n log k) pipeline |
//! | `t1_restricted_eps` | rows 3/5: (1+ε) grid backend |
//! | `t1_unrestricted` | rows 6/7: EP pipeline vs brute-force optimum |
//! | `t1_onedim` | row 8: O(zn log zn) exact 1-D solver |
//! | `t1_metric` | row 9: general-metric pipeline |
//! | `substrate` | exact `E[max]` sweep, Gonzalez, MEB, Weiszfeld |
//! | `scaling` | parameter sweeps behind EXPERIMENTS.md's S1–S3 |
//! | `server_throughput` | loopback requests/sec through `ukc-server` (cache-warm vs cache-cold, 1 / 4 / ncpu clients) |
//!
//! Run with `cargo bench -p ukc-bench` (or `--bench <target>`).
//!
//! This crate exports only shared deterministic workload builders.

pub mod workloads {
    //! Deterministic workload builders shared by the bench targets.
    use ukc_metric::{FiniteMetric, Point, WeightedGraph};
    use ukc_uncertain::generators::{clustered, line_instance, on_finite_metric, ProbModel};
    use ukc_uncertain::UncertainSet;

    /// Standard clustered Euclidean workload at a given size.
    pub fn euclidean(n: usize, z: usize) -> UncertainSet<Point> {
        clustered(42, n, z, 2, 4, 6.0, 1.5, ProbModel::Random)
    }

    /// Standard 1-D workload at a given size.
    pub fn line(n: usize, z: usize) -> UncertainSet<Point> {
        line_instance(42, n, z, 500.0, 3.0, ProbModel::Random)
    }

    /// Standard graph-metric workload: grid closure plus uncertain ids.
    pub fn graph(n: usize, z: usize) -> (FiniteMetric, UncertainSet<usize>) {
        let fm = WeightedGraph::grid(8, 8, 1.0)
            .shortest_path_metric()
            .expect("grid is connected");
        let set = on_finite_metric(42, fm.len(), n, z, ProbModel::Random);
        (fm, set)
    }
}
