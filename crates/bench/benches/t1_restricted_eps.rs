//! Table 1 rows 3 and 5: the (1+ε) grid backend (factors 5+ε / 3+ε). The
//! paper leaves these running times blank — they depend on the chosen
//! (1+ε) solver; these benches document ours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{AssignmentRule, CertainStrategy, Problem, SolverConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_rows3_5_restricted_eps");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [16usize, 32] {
        let problem = Problem::euclidean(euclidean(n, 4), 3).expect("valid workload");
        for eps in [0.5f64, 0.25] {
            let config = SolverConfig::builder()
                .rule(AssignmentRule::ExpectedPoint)
                .strategy(CertainStrategy::Grid)
                .eps(eps)
                .lower_bound(false)
                .build()
                .expect("static bench config");
            let id = format!("n{n}_eps{eps}");
            g.bench_with_input(BenchmarkId::new("EP_grid", &id), &problem, |b, p| {
                b.iter(|| black_box(p).solve(&config).expect("bench config is valid"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
