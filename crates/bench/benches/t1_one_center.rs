//! Table 1 row 1: the O(z) expected-point 1-center (Theorem 2.1) vs the
//! exact-cost reference optimizer it is certified against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{expected_point_one_center, reference_one_center};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_row1_one_center");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for z in [4usize, 16, 64, 256] {
        let set = euclidean(8, z);
        g.bench_with_input(BenchmarkId::new("expected_point_O(z)", z), &set, |b, s| {
            b.iter(|| expected_point_one_center(black_box(s), 0))
        });
    }
    // The reference optimizer is orders of magnitude slower — bench once at
    // a small size to document the gap the O(z) construction buys.
    let set = euclidean(8, 4);
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.bench_function("reference_optimizer_n8_z4", |b| {
        b.iter(|| reference_one_center(black_box(&set)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
