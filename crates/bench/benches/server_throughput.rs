//! Serving throughput: loopback requests/sec through the full HTTP
//! stack (TCP, HTTP parse, routing, scheduler, cache, JSON render).
//!
//! Two regimes at 1, 4, and `available_parallelism` concurrent clients:
//!
//! * **cache-warm** — every request is the same `(instance, config)`;
//!   after the first solve all requests are cache hits, so this measures
//!   the serving overhead alone (the amortized-repeated-work regime the
//!   solution cache exists for);
//! * **cache-cold** — every request sets `"cache": false` and re-pays
//!   the solve, so this measures the scheduler's batch pipeline under
//!   concurrent load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::SocketAddr;

use ukc_bench::workloads::euclidean;
use ukc_json::format::JsonInstance;
use ukc_server::client::ClientConn;
use ukc_server::{serve, ServerConfig, ServerHandle};

/// Requests each client thread issues per iteration (amortizes thread
/// spawn and connection setup into the measurement).
const REQUESTS_PER_CLIENT: usize = 4;

fn start_server() -> (ServerHandle, SocketAddr, String) {
    let handle = serve(ServerConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr();
    let instance = JsonInstance::from_set(&euclidean(24, 3))
        .to_json()
        .compact();
    let mut conn = ClientConn::connect(addr).expect("connect");
    let upload = conn
        .request("POST", "/instances", Some(&instance))
        .expect("upload");
    assert!(upload.is_success(), "{}", upload.body);
    let id = ukc_json::Json::parse(&upload.body)
        .expect("upload response")
        .get("id")
        .and_then(ukc_json::Json::as_str)
        .expect("id")
        .to_string();
    (handle, addr, id)
}

fn client_counts() -> Vec<usize> {
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1, 4, ncpu];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Fires `clients` threads, each sending `REQUESTS_PER_CLIENT` solves on
/// its own keep-alive connection, and joins them all.
fn fan_out(addr: SocketAddr, path: &str, body: &str, clients: usize) {
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut conn = ClientConn::connect(addr).expect("connect");
                for _ in 0..REQUESTS_PER_CLIENT {
                    let r = conn.request("POST", path, Some(body)).expect("solve");
                    assert!(r.is_success(), "{}", r.body);
                }
            });
        }
    });
}

fn bench_serving(c: &mut Criterion) {
    let (handle, addr, id) = start_server();
    let path = format!("/instances/{id}/solve");
    let warm_body = r#"{"k": 3, "lower_bound": false}"#;
    let cold_body = r#"{"k": 3, "lower_bound": false, "cache": false}"#;

    // Prime the cache so the warm regime is all hits.
    fan_out(addr, &path, warm_body, 1);

    for (regime, body) in [("warm", warm_body), ("cold", cold_body)] {
        let mut group = c.benchmark_group(format!("server_throughput_cache_{regime}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1500));
        for clients in client_counts() {
            group.throughput(Throughput::Elements((clients * REQUESTS_PER_CLIENT) as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(clients),
                &clients,
                |b, &clients| b.iter(|| fan_out(addr, &path, body, clients)),
            );
        }
        group.finish();
    }
    handle.shutdown();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
