//! Criterion version of the EXPERIMENTS.md scaling studies S1/S2: the
//! O(z) expected point and the O(nz + nk) pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{solve_euclidean, AssignmentRule, CertainSolver};
use ukc_uncertain::expected_point;

fn bench_s1(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s1_expected_point");
    g.sample_size(30);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for z in [16usize, 64, 256, 1024, 4096] {
        let set = euclidean(1, z);
        g.throughput(Throughput::Elements(z as u64));
        g.bench_with_input(BenchmarkId::from_parameter(z), set.point(0), |b, up| {
            b.iter(|| expected_point(black_box(up)))
        });
    }
    g.finish();
}

fn bench_s2(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s2_pipeline");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [128usize, 512, 2048] {
        let set = euclidean(n, 4);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, s| {
            b.iter(|| {
                solve_euclidean(
                    black_box(s),
                    8,
                    AssignmentRule::ExpectedPoint,
                    CertainSolver::Gonzalez,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_s1, bench_s2);
criterion_main!(benches);
