//! Criterion version of the EXPERIMENTS.md scaling studies S1/S2: the
//! O(z) expected point and the O(nz + nk) pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{solve_batch_threads, AssignmentRule, Problem, SolverConfig};
use ukc_uncertain::expected_point;

fn config() -> SolverConfig {
    SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .lower_bound(false)
        .build()
        .expect("static bench config")
}

fn bench_s1(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s1_expected_point");
    g.sample_size(30);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for z in [16usize, 64, 256, 1024, 4096] {
        let set = euclidean(1, z);
        g.throughput(Throughput::Elements(z as u64));
        g.bench_with_input(BenchmarkId::from_parameter(z), set.point(0), |b, up| {
            b.iter(|| expected_point(black_box(up)))
        });
    }
    g.finish();
}

fn bench_s2(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s2_pipeline");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let cfg = config();
    for n in [128usize, 512, 2048] {
        let problem = Problem::euclidean(euclidean(n, 4), 8).expect("valid workload");
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(p).solve(&cfg).expect("bench config is valid"))
        });
    }
    g.finish();
}

/// Batch throughput: `solve_batch` fan-out vs the sequential loop over
/// the same 16 problems.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_batch_throughput");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let cfg = config();
    let problems: Vec<Problem<ukc_metric::Point>> = (0..16)
        .map(|i| Problem::euclidean(euclidean(256 + i, 4), 8).expect("valid workload"))
        .collect();
    g.throughput(Throughput::Elements(problems.len() as u64));
    g.bench_function("sequential_16x256", |b| {
        b.iter(|| solve_batch_threads(black_box(&problems), &cfg, 1))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| solve_batch_threads(black_box(&problems), &cfg, threads)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_s1, bench_s2, bench_batch);
criterion_main!(benches);
