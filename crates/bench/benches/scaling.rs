//! Criterion version of the EXPERIMENTS.md scaling studies S1/S2: the
//! O(z) expected point and the O(nz + nk) pipeline, plus the
//! `kernel_comparison` group pitting the scalar, blocked, and tiled
//! distance kernels (the latter also with the opt-in f32 storage
//! mirror) against each other on two workloads — Gonzalez sweeps and
//! fused nearest-center assignment — the numbers behind
//! `BENCH_kernel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;
use ukc_bench::workloads::euclidean;
use ukc_core::{solve_batch_threads, AssignmentRule, Problem, SolverConfig};
use ukc_json::Json;
use ukc_kcenter::gonzalez;
use ukc_metric::{DistanceOracle, Kernel, Point, PointStore, StoreOracle};
use ukc_uncertain::expected_point;

fn config() -> SolverConfig {
    SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .lower_bound(false)
        .build()
        .expect("static bench config")
}

fn bench_s1(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s1_expected_point");
    g.sample_size(30);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for z in [16usize, 64, 256, 1024, 4096] {
        let set = euclidean(1, z);
        g.throughput(Throughput::Elements(z as u64));
        g.bench_with_input(BenchmarkId::from_parameter(z), set.point(0), |b, up| {
            b.iter(|| expected_point(black_box(up)))
        });
    }
    g.finish();
}

fn bench_s2(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s2_pipeline");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let cfg = config();
    for n in [128usize, 512, 2048] {
        let problem = Problem::euclidean(euclidean(n, 4), 8).expect("valid workload");
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(p).solve(&cfg).expect("bench config is valid"))
        });
    }
    g.finish();
}

/// Batch throughput: `solve_batch` fan-out vs the sequential loop over
/// the same 16 problems.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_batch_throughput");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let cfg = config();
    let problems: Vec<Problem<ukc_metric::Point>> = (0..16)
        .map(|i| Problem::euclidean(euclidean(256 + i, 4), 8).expect("valid workload"))
        .collect();
    g.throughput(Throughput::Elements(problems.len() as u64));
    g.bench_function("sequential_16x256", |b| {
        b.iter(|| solve_batch_threads(black_box(&problems), &cfg, 1))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| solve_batch_threads(black_box(&problems), &cfg, threads)),
        );
    }
    g.finish();
}

/// Deterministic coordinate cloud as a [`PointStore`].
fn coord_store(seed: u64, n: usize, d: usize) -> PointStore {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new((0..d).map(|_| rnd() * 100.0 - 50.0).collect()))
        .collect();
    PointStore::from_points(&pts)
}

const KERNEL_K: usize = 8;

/// One Gonzalez solve (k centers + the radius sweep) over the store with
/// the given kernel; returns the radius so the work cannot be elided.
fn gonzalez_store(store: &PointStore, ids: &[ukc_metric::PointId], kernel: Kernel) -> f64 {
    let oracle = StoreOracle::new(store, kernel);
    gonzalez(ids, KERNEL_K, &oracle, 0).radius
}

/// One fused nearest-center assignment sweep (`nearest_each`, the
/// register-tiled kernel's home turf) over `k` spread centers; returns
/// the max distance so the work cannot be elided.
fn assign_store(
    store: &PointStore,
    ids: &[ukc_metric::PointId],
    centers: &[ukc_metric::PointId],
    kernel: Kernel,
    out: &mut [(usize, f64)],
) -> f64 {
    let oracle = StoreOracle::new(store, kernel);
    oracle.nearest_each(ids, centers, out);
    out.iter().map(|&(_, d)| d).fold(0.0, f64::max)
}

/// The kernel variants of the comparison grid: every kernel over f64
/// storage, plus the tiled kernel over the opt-in f32 mirror.
fn kernel_variants() -> [(&'static str, Kernel, &'static str); 4] {
    [
        ("scalar", Kernel::Scalar, "f64"),
        ("blocked", Kernel::Blocked, "f64"),
        ("tiled", Kernel::Tiled, "f64"),
        ("tiled", Kernel::Tiled, "f32"),
    ]
}

/// Kernel throughput across the (workload, n, d) matrix of the
/// perf-tracking acceptance grid: `gonzalez` (sequential center passes,
/// memory-bandwidth-bound at large n) and `assign` (the fused n×k
/// mini-GEMM sweep where register tiling pays off).
///
/// Setting `BENCH_KERNEL_JSON=1` additionally runs a manual timing sweep
/// and rewrites the version-controlled `BENCH_kernel.json` at the
/// workspace root; without it the committed trajectory file is left
/// untouched (quick/filtered runs must not clobber it).
fn bench_kernel_comparison(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let record = std::env::var_os("BENCH_KERNEL_JSON").is_some();
    let mut g = c.benchmark_group("kernel_comparison");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));
    let mut results: Vec<Json> = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        if quick && n > 1_000 {
            continue; // smoke runs only cover the small tier
        }
        for &d in &[2usize, 8, 32] {
            let store = coord_store(42, n, d);
            let store_f32 = {
                let mut s = store.clone();
                s.try_enable_f32().expect("bench coords fit f32");
                s
            };
            let ids = store.ids();
            let centers: Vec<ukc_metric::PointId> = (0..KERNEL_K)
                .map(|i| ukc_metric::PointId(i * (n / KERNEL_K)))
                .collect();
            let mut assign_out = vec![(0usize, 0.0f64); n];
            // (workload, pair evaluations per run): Gonzalez is k passes
            // + the radius sweep; assign is one fused n×k sweep.
            for (workload, evals) in [
                ("gonzalez", (2 * KERNEL_K * n) as u64),
                ("assign", (KERNEL_K * n) as u64),
            ] {
                g.throughput(Throughput::Elements(evals));
                for (label, kernel, storage) in kernel_variants() {
                    let st = if storage == "f32" { &store_f32 } else { &store };
                    let id = format!("{workload}_n{n}_d{d}");
                    let tag = if storage == "f32" {
                        format!("{label}_f32")
                    } else {
                        label.to_string()
                    };
                    let run = |out: &mut [(usize, f64)]| -> f64 {
                        match workload {
                            "gonzalez" => gonzalez_store(black_box(st), &ids, kernel),
                            _ => assign_store(black_box(st), &ids, &centers, kernel, out),
                        }
                    };
                    g.bench_with_input(BenchmarkId::new(id, &tag), &kernel, |b, _| {
                        b.iter(|| run(&mut assign_out))
                    });
                    if record {
                        // Manual timing for the committed BENCH_kernel.json:
                        // min of 3 runs after one warm-up (1 under quick).
                        let reps = if quick { 1 } else { 3 };
                        let _ = run(&mut assign_out);
                        let mut best = f64::INFINITY;
                        for _ in 0..reps {
                            let t = Instant::now();
                            let _ = black_box(run(&mut assign_out));
                            best = best.min(t.elapsed().as_secs_f64());
                        }
                        results.push(Json::obj([
                            ("workload", Json::from(workload)),
                            ("n", Json::from(n)),
                            ("d", Json::from(d)),
                            ("k", Json::from(KERNEL_K)),
                            ("kernel", Json::from(label)),
                            ("storage", Json::from(storage)),
                            ("seconds", Json::from(best)),
                            ("pair_evals", Json::from(evals as f64)),
                            ("evals_per_sec", Json::from(evals as f64 / best)),
                        ]));
                    }
                }
            }
        }
    }
    g.finish();
    if record {
        // Record the trajectory point. Written next to the workspace root
        // so the numbers ride along in version control.
        let doc = Json::obj([
            ("bench", Json::from("kernel_comparison")),
            ("quick", Json::Bool(quick)),
            ("results", Json::arr(results)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
        if let Err(e) = std::fs::write(path, doc.pretty() + "\n") {
            eprintln!("warning: could not write BENCH_kernel.json: {e}");
        }
    }
}

criterion_group!(
    benches,
    bench_s1,
    bench_s2,
    bench_batch,
    bench_kernel_comparison
);
criterion_main!(benches);
