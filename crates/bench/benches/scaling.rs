//! Criterion version of the EXPERIMENTS.md scaling studies S1/S2: the
//! O(z) expected point and the O(nz + nk) pipeline, plus the
//! `kernel_comparison` group pitting the scalar distance kernel against
//! the blocked one on Gonzalez sweeps (the numbers behind
//! `BENCH_kernel.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;
use ukc_bench::workloads::euclidean;
use ukc_core::{solve_batch_threads, AssignmentRule, Problem, SolverConfig};
use ukc_json::Json;
use ukc_kcenter::gonzalez;
use ukc_metric::{Kernel, Point, PointStore, StoreOracle};
use ukc_uncertain::expected_point;

fn config() -> SolverConfig {
    SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .lower_bound(false)
        .build()
        .expect("static bench config")
}

fn bench_s1(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s1_expected_point");
    g.sample_size(30);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for z in [16usize, 64, 256, 1024, 4096] {
        let set = euclidean(1, z);
        g.throughput(Throughput::Elements(z as u64));
        g.bench_with_input(BenchmarkId::from_parameter(z), set.point(0), |b, up| {
            b.iter(|| expected_point(black_box(up)))
        });
    }
    g.finish();
}

fn bench_s2(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_s2_pipeline");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let cfg = config();
    for n in [128usize, 512, 2048] {
        let problem = Problem::euclidean(euclidean(n, 4), 8).expect("valid workload");
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(p).solve(&cfg).expect("bench config is valid"))
        });
    }
    g.finish();
}

/// Batch throughput: `solve_batch` fan-out vs the sequential loop over
/// the same 16 problems.
fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_batch_throughput");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let cfg = config();
    let problems: Vec<Problem<ukc_metric::Point>> = (0..16)
        .map(|i| Problem::euclidean(euclidean(256 + i, 4), 8).expect("valid workload"))
        .collect();
    g.throughput(Throughput::Elements(problems.len() as u64));
    g.bench_function("sequential_16x256", |b| {
        b.iter(|| solve_batch_threads(black_box(&problems), &cfg, 1))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| solve_batch_threads(black_box(&problems), &cfg, threads)),
        );
    }
    g.finish();
}

/// Deterministic coordinate cloud as a [`PointStore`].
fn coord_store(seed: u64, n: usize, d: usize) -> PointStore {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new((0..d).map(|_| rnd() * 100.0 - 50.0).collect()))
        .collect();
    PointStore::from_points(&pts)
}

const KERNEL_K: usize = 8;

/// One Gonzalez solve (k centers + the radius sweep) over the store with
/// the given kernel; returns the radius so the work cannot be elided.
fn gonzalez_store(store: &PointStore, ids: &[ukc_metric::PointId], kernel: Kernel) -> f64 {
    let oracle = StoreOracle::new(store, kernel);
    gonzalez(ids, KERNEL_K, &oracle, 0).radius
}

/// Scalar-vs-blocked Gonzalez throughput across the (n, d) matrix of the
/// perf-tracking acceptance grid.
///
/// Setting `BENCH_KERNEL_JSON=1` additionally runs a manual timing sweep
/// and rewrites the version-controlled `BENCH_kernel.json` at the
/// workspace root; without it the committed trajectory file is left
/// untouched (quick/filtered runs must not clobber it).
fn bench_kernel_comparison(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let record = std::env::var_os("BENCH_KERNEL_JSON").is_some();
    let mut g = c.benchmark_group("kernel_comparison");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));
    let mut results: Vec<Json> = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        if quick && n > 1_000 {
            continue; // smoke runs only cover the small tier
        }
        for &d in &[2usize, 8, 32] {
            let store = coord_store(42, n, d);
            let ids = store.ids();
            // pair evaluations per solve: k passes + the radius sweep
            let evals = (2 * KERNEL_K * n) as u64;
            g.throughput(Throughput::Elements(evals));
            for kernel in [Kernel::Scalar, Kernel::Blocked] {
                g.bench_with_input(
                    BenchmarkId::new(format!("n{n}_d{d}"), kernel.name()),
                    &kernel,
                    |b, &kernel| b.iter(|| gonzalez_store(black_box(&store), &ids, kernel)),
                );
                if record {
                    // Manual timing for the committed BENCH_kernel.json:
                    // min of 3 runs after one warm-up (1 under quick).
                    let reps = if quick { 1 } else { 3 };
                    let _ = gonzalez_store(&store, &ids, kernel);
                    let mut best = f64::INFINITY;
                    for _ in 0..reps {
                        let t = Instant::now();
                        let _ = black_box(gonzalez_store(&store, &ids, kernel));
                        best = best.min(t.elapsed().as_secs_f64());
                    }
                    results.push(Json::obj([
                        ("n", Json::from(n)),
                        ("d", Json::from(d)),
                        ("k", Json::from(KERNEL_K)),
                        ("kernel", Json::from(kernel.name())),
                        ("seconds", Json::from(best)),
                        ("pair_evals", Json::from(evals as f64)),
                        ("evals_per_sec", Json::from(evals as f64 / best)),
                    ]));
                }
            }
        }
    }
    g.finish();
    if record {
        // Record the trajectory point. Written next to the workspace root
        // so the numbers ride along in version control.
        let doc = Json::obj([
            ("bench", Json::from("kernel_comparison")),
            ("quick", Json::Bool(quick)),
            ("results", Json::arr(results)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
        if let Err(e) = std::fs::write(path, doc.pretty() + "\n") {
            eprintln!("warning: could not write BENCH_kernel.json: {e}");
        }
    }
}

criterion_group!(
    benches,
    bench_s1,
    bench_s2,
    bench_batch,
    bench_kernel_comparison
);
criterion_main!(benches);
