//! Thread-scaling of the pooled distance kernels: Gonzalez (the
//! dominant certain-solve stage) over a [`PointStore`] with a
//! pool-backed [`StoreOracle`], swept across lane counts.
//!
//! The numbers behind the committed `BENCH_parallel.json`: setting
//! `BENCH_PARALLEL_JSON=1` runs a manual timing sweep (over the tiled
//! kernel — the fastest sequential baseline, so lane speedups are
//! honest) and rewrites the file at the workspace root, recording
//! `host_cpus` alongside each sample — on a single-CPU host every lane
//! count time-slices one core, so speedups hover at 1×; such runs are
//! stamped `"degraded": true` and the interesting trajectory points
//! come from multi-core hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;
use ukc_json::Json;
use ukc_kcenter::gonzalez;
use ukc_metric::{Kernel, Point, PointId, PointStore, StoreOracle};
use ukc_pool::{Exec, Pool};

/// Deterministic coordinate cloud as a [`PointStore`].
fn coord_store(seed: u64, n: usize, d: usize) -> PointStore {
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new((0..d).map(|_| rnd() * 100.0 - 50.0).collect()))
        .collect();
    PointStore::from_points(&pts)
}

const SCALING_K: usize = 8;

/// The kernel whose thread-scaling the committed trajectory records:
/// the register-tiled mini-GEMM, the fastest sequential baseline (a
/// speedup over a slow baseline would flatter the lane counts).
const SCALING_KERNEL: Kernel = Kernel::Tiled;

/// One Gonzalez solve (k centers + the radius sweep) over the store with
/// the given execution context; returns the radius so the work cannot be
/// elided. The result is bit-identical for every lane count — this bench
/// measures time only.
fn gonzalez_exec(store: &PointStore, ids: &[PointId], exec: Exec<'_>) -> f64 {
    let oracle = StoreOracle::new(store, SCALING_KERNEL).with_exec(exec);
    gonzalez(ids, SCALING_K, &oracle, 0).radius
}

/// Lane counts to sweep: {1, 2, 4, ncpu}, deduplicated and sorted.
fn thread_grid() -> Vec<usize> {
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut grid = vec![1usize, 2, 4, ncpu];
    grid.sort_unstable();
    grid.dedup();
    grid
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let record = std::env::var_os("BENCH_PARALLEL_JSON").is_some();
    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));
    let mut results: Vec<Json> = Vec::new();
    for &n in &[10_000usize, 100_000] {
        if quick && n > 10_000 {
            continue; // smoke runs only cover the small tier
        }
        for &d in &[8usize, 32] {
            let store = coord_store(42, n, d);
            let ids = store.ids();
            // pair evaluations per solve: k passes + the radius sweep
            let evals = (2 * SCALING_K * n) as u64;
            g.throughput(Throughput::Elements(evals));
            let mut base_seconds = f64::NAN;
            for threads in thread_grid() {
                if quick && threads > 2 {
                    continue;
                }
                // A dedicated pool per lane count keeps the sweep
                // independent of UKC_THREADS and of the process pool.
                let pool = Pool::new(threads);
                let exec = Exec::pooled(&pool, threads);
                g.bench_with_input(
                    BenchmarkId::new(format!("n{n}_d{d}"), format!("t{threads}")),
                    &exec,
                    |b, &exec| b.iter(|| gonzalez_exec(black_box(&store), &ids, exec)),
                );
                if record {
                    // Manual timing for the committed BENCH_parallel.json:
                    // min of 3 runs after one warm-up (1 under quick).
                    let reps = if quick { 1 } else { 3 };
                    let _ = gonzalez_exec(&store, &ids, exec);
                    let mut best = f64::INFINITY;
                    for _ in 0..reps {
                        let t = Instant::now();
                        let _ = black_box(gonzalez_exec(&store, &ids, exec));
                        best = best.min(t.elapsed().as_secs_f64());
                    }
                    if threads == 1 {
                        base_seconds = best;
                    }
                    results.push(Json::obj([
                        ("n", Json::from(n)),
                        ("d", Json::from(d)),
                        ("k", Json::from(SCALING_K)),
                        ("kernel", Json::from(SCALING_KERNEL.name())),
                        ("threads", Json::from(threads)),
                        ("seconds", Json::from(best)),
                        ("pair_evals", Json::from(evals as f64)),
                        ("evals_per_sec", Json::from(evals as f64 / best)),
                        ("speedup_vs_t1", Json::from(base_seconds / best)),
                    ]));
                }
            }
        }
    }
    g.finish();
    if record {
        // Record the trajectory point. Written next to the workspace root
        // so the numbers ride along in version control. host_cpus makes a
        // 1-core container's flat speedups interpretable, and the
        // explicit "degraded" flag keeps such a run from masquerading as
        // a real thread-scaling measurement.
        let host_cpus = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        let degraded = host_cpus == 1;
        if degraded {
            eprintln!(
                "warning: BENCH_parallel.json recorded on a single-CPU host — \
                 every lane count time-slices one core, so speedups are \
                 meaningless; the file is stamped \"degraded\": true"
            );
        }
        let doc = Json::obj([
            ("bench", Json::from("parallel_scaling")),
            ("quick", Json::Bool(quick)),
            ("host_cpus", Json::from(host_cpus)),
            ("degraded", Json::Bool(degraded)),
            ("results", Json::arr(results)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
        if let Err(e) = std::fs::write(path, doc.pretty() + "\n") {
            eprintln!("warning: could not write BENCH_parallel.json: {e}");
        }
    }
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
