//! Table 1 rows 6 and 7: the unrestricted assigned version. The paper's
//! insight is that the restricted pipeline already approximates the
//! unrestricted optimum — so the bench compares the pipeline against the
//! exponential brute-force optimum it replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ukc_baselines::{brute_force_unrestricted, BruteForceLimits};
use ukc_bench::workloads::euclidean;
use ukc_core::{AssignmentRule, Problem, SolverConfig};
use ukc_metric::Euclidean;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_rows6_7_unrestricted");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let set = euclidean(5, 3);
    let mut pool = set.location_pool();
    pool.extend(set.iter().map(ukc_uncertain::expected_point));
    let problem = Problem::euclidean(set.clone(), 2).expect("valid workload");
    let config = SolverConfig::builder()
        .rule(AssignmentRule::ExpectedPoint)
        .lower_bound(false)
        .build()
        .expect("static bench config");
    g.bench_function("paper_pipeline_n5", |b| {
        b.iter(|| {
            black_box(&problem)
                .solve(&config)
                .expect("bench config is valid")
        })
    });
    g.bench_function("brute_force_optimum_n5", |b| {
        b.iter(|| {
            brute_force_unrestricted(
                black_box(&set),
                &pool,
                2,
                &Euclidean,
                BruteForceLimits::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
