//! Durability-layer throughput: how fast the write-ahead log can
//! acknowledge stream epochs, and what periodic snapshots cost.
//!
//! Three axes:
//!
//! * **fsync on/off** — the WAL's ack contract fsyncs every push, so
//!   the on/off gap is the price of durability itself (device sync
//!   latency), separated from framing/CRC/write overhead.
//! * **body size** — small vs chunk-sized push bodies, to show where
//!   the path shifts from sync-bound to bandwidth-bound.
//! * **snapshot interval** — the full [`DurableStore`] epoch path with
//!   a snapshot written every N epochs (0 = never), the same knob as
//!   `ukc serve --snapshot-interval`.
//!
//! Setting `BENCH_DURABLE_JSON=1` rewrites `BENCH_durable.json` at the
//! workspace root (see `docs/BENCHMARKS.md`), recording `host_cpus`
//! alongside the samples like the other committed artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;
use ukc_durable::snapshot::Snapshot;
use ukc_durable::wal::{StreamWal, WalRecord};
use ukc_durable::DurableStore;
use ukc_json::Json;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ukc-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A push body of roughly `bytes` length (the WAL stores wire bodies
/// verbatim, so content is irrelevant — only length matters).
fn body(bytes: usize) -> Vec<u8> {
    br#"{"dim": 2, "points": []}"#.iter().copied().cycle().take(bytes).collect()
}

/// Appends `epochs` push records to a fresh WAL; returns bytes written
/// so the work cannot be elided.
fn wal_run(dir: &PathBuf, epochs: u64, body: &[u8], sync: bool) -> u64 {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    let (mut wal, _, _) = StreamWal::open(dir).unwrap();
    for epoch in 1..=epochs {
        wal.append(
            &WalRecord::Push {
                seq: 1,
                epoch,
                body: body.to_vec(),
            },
            sync,
        )
        .unwrap();
    }
    if !sync {
        wal.sync().unwrap(); // one terminal sync keeps totals honest
    }
    wal.bytes()
}

/// The serving-layer epoch path: WAL append (always fsync'd, as the
/// ack contract demands) plus a snapshot write every `interval` epochs.
fn store_run(dir: &PathBuf, epochs: u64, body: &[u8], interval: u64, payload: &[u8]) -> u64 {
    let _ = std::fs::remove_dir_all(dir);
    let (store, _) = DurableStore::open(dir).unwrap();
    store.create_stream(1, b"{\"k\": 2}").unwrap();
    for epoch in 1..=epochs {
        store.append_push(1, epoch, body).unwrap();
        if interval > 0 && epoch % interval == 0 {
            store
                .write_snapshot(
                    1,
                    &Snapshot {
                        epochs: epoch,
                        digest: epoch.wrapping_mul(0x9e3779b97f4a7c15),
                        payload: payload.to_vec(),
                    },
                )
                .unwrap();
        }
    }
    store.stats().wal_bytes
}

fn bench_wal_throughput(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let record = std::env::var_os("BENCH_DURABLE_JSON").is_some();
    let epochs: u64 = if quick { 64 } else { 256 };
    let mut results: Vec<Json> = Vec::new();

    let mut g = c.benchmark_group("wal_append");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));
    for &bytes in &[256usize, 16 * 1024] {
        let body = body(bytes);
        for &sync in &[true, false] {
            if quick && !sync {
                continue; // smoke runs only cover the contractual path
            }
            let dir = bench_dir(&format!("append-{bytes}-{sync}"));
            g.throughput(Throughput::Elements(epochs));
            g.bench_with_input(
                BenchmarkId::new(
                    format!("body{bytes}"),
                    if sync { "fsync" } else { "nosync" },
                ),
                &sync,
                |b, &sync| b.iter(|| black_box(wal_run(&dir, epochs, &body, sync))),
            );
            if record {
                let reps = if quick { 1 } else { 3 };
                let _ = wal_run(&dir, epochs, &body, sync);
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    let t = Instant::now();
                    let _ = black_box(wal_run(&dir, epochs, &body, sync));
                    best = best.min(t.elapsed().as_secs_f64());
                }
                results.push(Json::obj([
                    ("mode", Json::from("wal_append")),
                    ("body_bytes", Json::from(bytes)),
                    ("fsync", Json::Bool(sync)),
                    ("epochs", Json::from(epochs as f64)),
                    ("seconds", Json::from(best)),
                    ("epochs_per_sec", Json::from(epochs as f64 / best)),
                    (
                        "bytes_per_sec",
                        Json::from((epochs as usize * bytes) as f64 / best),
                    ),
                ]));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    g.finish();

    let mut g = c.benchmark_group("snapshot_interval");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.measurement_time(std::time::Duration::from_millis(800));
    let push_body = body(4 * 1024);
    let payload = body(2 * 1024); // a realistic small-summary snapshot
    for &interval in &[0u64, 4, 16, 64] {
        if quick && !matches!(interval, 0 | 16) {
            continue;
        }
        let dir = bench_dir(&format!("interval-{interval}"));
        g.throughput(Throughput::Elements(epochs));
        g.bench_with_input(
            BenchmarkId::from_parameter(interval),
            &interval,
            |b, &interval| {
                b.iter(|| black_box(store_run(&dir, epochs, &push_body, interval, &payload)))
            },
        );
        if record {
            let reps = if quick { 1 } else { 3 };
            let _ = store_run(&dir, epochs, &push_body, interval, &payload);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t = Instant::now();
                let _ = black_box(store_run(&dir, epochs, &push_body, interval, &payload));
                best = best.min(t.elapsed().as_secs_f64());
            }
            results.push(Json::obj([
                ("mode", Json::from("store_epoch")),
                ("body_bytes", Json::from(push_body.len())),
                ("snapshot_interval", Json::from(interval as f64)),
                ("epochs", Json::from(epochs as f64)),
                ("seconds", Json::from(best)),
                ("epochs_per_sec", Json::from(epochs as f64 / best)),
            ]));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();

    if record {
        let doc = Json::obj([
            ("bench", Json::from("wal_throughput")),
            ("quick", Json::Bool(quick)),
            (
                "host_cpus",
                Json::from(
                    std::thread::available_parallelism()
                        .map(|v| v.get())
                        .unwrap_or(1),
                ),
            ),
            ("results", Json::arr(results)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durable.json");
        if let Err(e) = std::fs::write(path, doc.pretty() + "\n") {
            eprintln!("warning: could not write BENCH_durable.json: {e}");
        }
    }
}

criterion_group!(benches, bench_wal_throughput);
criterion_main!(benches);
