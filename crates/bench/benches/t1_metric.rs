//! Table 1 row 9: the general-metric pipeline (Theorems 2.6 / 2.7) on a
//! graph shortest-path metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use ukc_bench::workloads::graph;
use ukc_core::{AssignmentRule, CertainStrategy, Problem, SolverConfig};
use ukc_metric::Metric;

fn config(rule: AssignmentRule, strategy: CertainStrategy) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .strategy(strategy)
        .lower_bound(false)
        .build()
        .expect("static bench config")
}

fn metric_problem(n: usize, z: usize, k: usize) -> Problem<usize> {
    let (fm, set) = graph(n, z);
    let ids: Arc<[usize]> = Arc::from(fm.ids());
    let metric: Arc<dyn Metric<usize> + Send + Sync> = Arc::new(fm);
    Problem::in_metric_shared(set, k, metric, ids).expect("valid workload")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_row9_metric");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let oc = config(AssignmentRule::OneCenter, CertainStrategy::Gonzalez);
    let ed = config(AssignmentRule::ExpectedDistance, CertainStrategy::Gonzalez);
    for n in [16usize, 64, 256] {
        let problem = metric_problem(n, 4, 4);
        g.bench_with_input(BenchmarkId::new("OC_gonzalez", n), &problem, |b, p| {
            b.iter(|| black_box(p).solve(&oc).expect("bench config is valid"))
        });
        g.bench_with_input(BenchmarkId::new("ED_gonzalez", n), &problem, |b, p| {
            b.iter(|| black_box(p).solve(&ed).expect("bench config is valid"))
        });
    }
    let problem = metric_problem(16, 4, 4);
    let oc_exact = config(AssignmentRule::OneCenter, CertainStrategy::ExactDiscrete);
    g.bench_function("OC_exact_discrete_n16", |b| {
        b.iter(|| {
            black_box(&problem)
                .solve(&oc_exact)
                .expect("bench config is valid")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
