//! Table 1 row 9: the general-metric pipeline (Theorems 2.6 / 2.7) on a
//! graph shortest-path metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ukc_bench::workloads::graph;
use ukc_core::{solve_metric, MetricAssignmentRule, MetricCertainSolver};
use ukc_kcenter::ExactOptions;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_row9_metric");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [16usize, 64, 256] {
        let (fm, set) = graph(n, 4);
        let ids = fm.ids();
        g.bench_with_input(BenchmarkId::new("OC_gonzalez", n), &(&fm, &set), |b, (fm, s)| {
            b.iter(|| {
                solve_metric(
                    black_box(s),
                    4,
                    MetricAssignmentRule::OneCenter,
                    MetricCertainSolver::Gonzalez,
                    &ids,
                    *fm,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("ED_gonzalez", n), &(&fm, &set), |b, (fm, s)| {
            b.iter(|| {
                solve_metric(
                    black_box(s),
                    4,
                    MetricAssignmentRule::ExpectedDistance,
                    MetricCertainSolver::Gonzalez,
                    &ids,
                    *fm,
                )
            })
        });
    }
    let (fm, set) = graph(16, 4);
    let ids = fm.ids();
    g.bench_function("OC_exact_discrete_n16", |b| {
        b.iter(|| {
            solve_metric(
                black_box(&set),
                4,
                MetricAssignmentRule::OneCenter,
                MetricCertainSolver::ExactDiscrete(ExactOptions::default()),
                &ids,
                &fm,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
