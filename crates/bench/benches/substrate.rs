//! Substrate microbenches: the exact E[max] sweep (the workhorse of every
//! experiment), Gonzalez, minimum enclosing balls, Weiszfeld medians, and
//! Monte-Carlo vs exact cost evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{AssignmentRule, Problem, SolverConfig};
use ukc_geometry::{
    geometric_median, min_enclosing_ball, min_enclosing_ball_approx, WeiszfeldOptions,
};
use ukc_kcenter::gonzalez;
use ukc_metric::Euclidean;
use ukc_uncertain::{ecost_assigned, ecost_monte_carlo, expected_max};

fn bench_expected_max(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_expected_max");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [16usize, 128, 1024] {
        // n variables with 8 atoms each.
        let mut s: u64 = 5;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let vars: Vec<Vec<(f64, f64)>> = (0..n)
            .map(|_| {
                let ps: Vec<f64> = (0..8).map(|_| rnd() + 0.01).collect();
                let t: f64 = ps.iter().sum();
                ps.iter().map(|&p| (rnd() * 100.0, p / t)).collect()
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("exact_sweep", n), &vars, |b, v| {
            b.iter(|| expected_max(black_box(v)))
        });
    }
    g.finish();
}

fn bench_cost_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_cost_eval");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let set = euclidean(256, 4);
    let sol = Problem::euclidean(set.clone(), 4)
        .expect("valid workload")
        .solve(
            &SolverConfig::builder()
                .rule(AssignmentRule::ExpectedPoint)
                .lower_bound(false)
                .build()
                .expect("static bench config"),
        )
        .expect("bench config is valid");
    g.bench_function("exact_ecost_n256", |b| {
        b.iter(|| ecost_assigned(black_box(&set), &sol.centers, &sol.assignment, &Euclidean))
    });
    for samples in [1_000usize, 10_000] {
        g.bench_with_input(
            BenchmarkId::new("monte_carlo", samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    ecost_monte_carlo(
                        black_box(&set),
                        &sol.centers,
                        Some(&sol.assignment),
                        &Euclidean,
                        samples,
                        &mut rng,
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_geometry");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let set = euclidean(512, 1);
    let pts: Vec<ukc_metric::Point> = set.location_pool();
    g.bench_function("gonzalez_n512_k8", |b| {
        b.iter(|| gonzalez(black_box(&pts), 8, &Euclidean, 0))
    });
    g.bench_function("meb_welzl_n512_d2", |b| {
        b.iter(|| min_enclosing_ball(black_box(&pts)))
    });
    g.bench_function("meb_badoiu_clarkson_n512_eps0.05", |b| {
        b.iter(|| min_enclosing_ball_approx(black_box(&pts), 0.05))
    });
    let w = vec![1.0; pts.len()];
    g.bench_function("weiszfeld_n512_d2", |b| {
        b.iter(|| geometric_median(black_box(&pts), &w, WeiszfeldOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_expected_max, bench_cost_eval, bench_geometry);
criterion_main!(benches);
