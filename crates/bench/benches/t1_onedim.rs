//! Table 1 row 8: the exact 1-D solver, O(zn log zn + n log k log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ukc_bench::workloads::line;
use ukc_onedim::solve_one_d;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_row8_onedim");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [64usize, 256, 1024] {
        let set = line(n, 4);
        g.bench_with_input(BenchmarkId::new("solve_one_d_k8", n), &set, |b, s| {
            b.iter(|| solve_one_d(black_box(s), 8))
        });
    }
    // z sweep at fixed n.
    for z in [2usize, 8, 32] {
        let set = line(256, z);
        g.bench_with_input(BenchmarkId::new("solve_one_d_zsweep", z), &set, |b, s| {
            b.iter(|| solve_one_d(black_box(s), 8))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
