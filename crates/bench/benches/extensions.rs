//! Benches for the future-work extensions: the uncertain k-median
//! reduction, the k-means bias-variance pipeline, and streaming insertion
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{CertainStrategy, SolverConfig};
#[allow(deprecated)] // the streaming bench pins the legacy wrapper's historical workload
use ukc_extensions::{uncertain_kmeans, uncertain_kmedian, StreamingUncertainKCenter};
use ukc_metric::Euclidean;

#[allow(deprecated)] // see the import note
fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let ls_config = SolverConfig::builder()
        .strategy(CertainStrategy::GonzalezLocalSearch { rounds: 20 })
        .lower_bound(false)
        .build()
        .expect("static bench config");
    for n in [32usize, 128] {
        let set = euclidean(n, 4);
        let pool = set.location_pool();
        g.bench_with_input(BenchmarkId::new("kmedian_local_search", n), &set, |b, s| {
            b.iter(|| {
                uncertain_kmedian(black_box(s), &pool, 4, &Euclidean, &ls_config)
                    .expect("bench config is valid")
            })
        });
        // Direct call (not the config wrapper) to keep the measured
        // workload identical across releases: 4 restarts x 50 iters.
        g.bench_with_input(BenchmarkId::new("kmeans", n), &set, |b, s| {
            b.iter(|| uncertain_kmeans(black_box(s), 4, 1, 4, 50))
        });
    }
    let set = euclidean(1024, 4);
    g.bench_function("streaming_insert_1024", |b| {
        b.iter(|| {
            let mut s = StreamingUncertainKCenter::new(8);
            for up in set.iter() {
                s.insert(black_box(up.clone()));
            }
            s.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
