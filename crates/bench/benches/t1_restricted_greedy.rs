//! Table 1 rows 2 and 4: the O(nz + n log k) greedy pipeline (expected
//! points + Gonzalez + ED/EP assignment + exact cost report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{AssignmentRule, Problem, SolverConfig};

fn config(rule: AssignmentRule) -> SolverConfig {
    SolverConfig::builder()
        .rule(rule)
        .lower_bound(false)
        .build()
        .expect("static bench config")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_rows2_4_restricted_greedy");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let ed = config(AssignmentRule::ExpectedDistance);
    let ep = config(AssignmentRule::ExpectedPoint);
    for n in [64usize, 256, 1024] {
        let problem = Problem::euclidean(euclidean(n, 4), 4).expect("valid workload");
        g.bench_with_input(BenchmarkId::new("ED_rule", n), &problem, |b, p| {
            b.iter(|| black_box(p).solve(&ed).expect("bench config is valid"))
        });
        g.bench_with_input(BenchmarkId::new("EP_rule", n), &problem, |b, p| {
            b.iter(|| black_box(p).solve(&ep).expect("bench config is valid"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
