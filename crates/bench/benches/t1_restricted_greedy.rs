//! Table 1 rows 2 and 4: the O(nz + n log k) greedy pipeline (expected
//! points + Gonzalez + ED/EP assignment + exact cost report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::{solve_euclidean, AssignmentRule, CertainSolver};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_rows2_4_restricted_greedy");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [64usize, 256, 1024] {
        let set = euclidean(n, 4);
        g.bench_with_input(BenchmarkId::new("ED_rule", n), &set, |b, s| {
            b.iter(|| {
                solve_euclidean(
                    black_box(s),
                    4,
                    AssignmentRule::ExpectedDistance,
                    CertainSolver::Gonzalez,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("EP_rule", n), &set, |b, s| {
            b.iter(|| {
                solve_euclidean(
                    black_box(s),
                    4,
                    AssignmentRule::ExpectedPoint,
                    CertainSolver::Gonzalez,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
