//! Sustained-rate stream ingestion soak: concurrent pushers feeding the
//! bounded per-stream ingest queues while readers hammer
//! `GET /streams/{id}/solution` under a staleness budget.
//!
//! Criterion measures a fan-out push round (every stream receives one
//! chunk concurrently, through the full HTTP + ingest-queue + durability
//! path). Setting `BENCH_STREAM_JSON=1` additionally runs a manual soak
//! and rewrites the version-controlled `BENCH_stream.json` at the
//! workspace root (see `docs/BENCHMARKS.md`): sustained points/sec, push
//! latency percentiles, the accepted/rejected-429 split, and the
//! solve-vs-read counts that show the staleness budget collapsing a
//! high-rate read load onto a handful of solves.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use ukc_json::format::JsonInstance;
use ukc_json::Json;
use ukc_server::client::ClientConn;
use ukc_server::{serve, ServerConfig, ServerHandle};
use ukc_uncertain::generators::{clustered, ProbModel};

/// Uncertain points per pushed chunk.
const CHUNK_POINTS: usize = 64;

/// One pre-rendered push body, distinct per (stream, chunk) pair so the
/// digest always advances.
fn chunk_body(stream: usize, chunk: usize) -> String {
    let seed = 1 + (stream as u64) * 1_000 + chunk as u64;
    let set = clustered(seed, CHUNK_POINTS, 3, 2, 3, 6.0, 1.0, ProbModel::Random);
    JsonInstance::from_set(&set).to_json().compact()
}

fn start_server(config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let handle = serve(config).expect("bind ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// Create `streams` streams and prime each with one chunk so solution
/// reads are valid from the start. Returns the stream IDs.
fn create_streams(addr: SocketAddr, streams: usize) -> Vec<String> {
    let mut conn = ClientConn::connect(addr).expect("connect");
    (0..streams)
        .map(|s| {
            let created = conn
                .request("POST", "/streams", Some(r#"{"k": 3, "budget": 32}"#))
                .expect("create stream");
            assert_eq!(created.status, 201, "{}", created.body);
            let id = Json::parse(&created.body)
                .expect("create response")
                .get("id")
                .and_then(Json::as_str)
                .expect("id")
                .to_string();
            let primed = conn
                .request(
                    "POST",
                    &format!("/streams/{id}/push"),
                    Some(&chunk_body(s, 0)),
                )
                .expect("prime push");
            assert!(primed.is_success(), "{}", primed.body);
            id
        })
        .collect()
}

fn percentile_ms(sorted_secs: &[f64], pct: f64) -> f64 {
    if sorted_secs.is_empty() {
        return 0.0;
    }
    let idx = ((pct / 100.0) * (sorted_secs.len() - 1) as f64).round() as usize;
    sorted_secs[idx] * 1_000.0
}

fn read_metric(addr: SocketAddr, path: &[&str]) -> f64 {
    let mut conn = ClientConn::connect(addr).expect("connect");
    let r = conn.request("GET", "/metrics", None).expect("metrics");
    let doc = Json::parse(&r.body).expect("metrics json");
    let mut node = &doc;
    for key in path {
        node = node.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    node.as_f64().expect("numeric metric")
}

/// The manual soak behind the committed `BENCH_stream.json`: every
/// stream gets a dedicated pusher (retrying on `429 ingest_overloaded`)
/// and a dedicated reader polling the solution endpoint for the whole
/// push window.
fn soak(streams: usize, chunks: usize, queue_cap: usize, staleness_ms: u64) -> Json {
    let (handle, addr) = start_server(ServerConfig {
        ingest_queue_cap: queue_cap,
        solve_staleness_ms: staleness_ms,
        ..ServerConfig::default()
    });
    let ids = create_streams(addr, streams);

    let stop = AtomicBool::new(false);
    let rejected = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    let stale_reads = AtomicU64::new(0);
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let mut pushers = Vec::new();
        for (s, id) in ids.iter().enumerate() {
            let (rejected, stop) = (&rejected, &stop);
            pushers.push(scope.spawn(move || {
                let mut conn = ClientConn::connect(addr).expect("connect");
                let path = format!("/streams/{id}/push");
                let mut secs = Vec::with_capacity(chunks);
                for c in 0..chunks {
                    let body = chunk_body(s, c + 1);
                    loop {
                        let t = Instant::now();
                        let r = conn.request("POST", &path, Some(&body)).expect("push");
                        if r.status == 429 {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            continue;
                        }
                        assert!(r.is_success(), "{}", r.body);
                        secs.push(t.elapsed().as_secs_f64());
                        break;
                    }
                }
                stop.store(true, Ordering::Relaxed);
                secs
            }));
        }
        for id in &ids {
            let (reads, stale_reads, stop) = (&reads, &stale_reads, &stop);
            scope.spawn(move || {
                let mut conn = ClientConn::connect(addr).expect("connect");
                let path = format!("/streams/{id}/solution");
                while !stop.load(Ordering::Relaxed) {
                    let r = conn.request("GET", &path, None).expect("read");
                    assert!(r.is_success(), "{}", r.body);
                    reads.fetch_add(1, Ordering::Relaxed);
                    let doc = Json::parse(&r.body).expect("solution json");
                    if doc.get("stale").and_then(Json::as_bool) == Some(true) {
                        stale_reads.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        pushers
            .into_iter()
            .flat_map(|p| p.join().expect("pusher"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Zero lost epochs: every acked push (prime + soak chunks) is
    // visible in the drained stream.
    let mut conn = ClientConn::connect(addr).expect("connect");
    for id in &ids {
        let r = conn
            .request("GET", &format!("/streams/{id}"), None)
            .expect("stream meta");
        let doc = Json::parse(&r.body).expect("meta json");
        assert_eq!(
            doc.get("epochs").and_then(Json::as_f64),
            Some((chunks + 1) as f64),
            "stream {id} lost an acked epoch"
        );
    }

    let solves_ok = read_metric(addr, &["solves", "ok"]);
    let accepted = read_metric(addr, &["ingest", "accepted"]);
    let rejected_server = read_metric(addr, &["ingest", "rejected"]);
    let stale_served = read_metric(addr, &["ingest", "stale_served"]);
    handle.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_reads = reads.load(Ordering::Relaxed);
    Json::obj([
        ("streams", Json::from(streams)),
        ("chunks_per_stream", Json::from(chunks)),
        ("chunk_points", Json::from(CHUNK_POINTS)),
        ("ingest_queue_cap", Json::from(queue_cap)),
        ("solve_staleness_ms", Json::from(staleness_ms as f64)),
        ("elapsed_seconds", Json::from(elapsed)),
        (
            "points_per_sec",
            Json::from((streams * chunks * CHUNK_POINTS) as f64 / elapsed),
        ),
        ("push_p50_ms", Json::from(percentile_ms(&latencies, 50.0))),
        ("push_p99_ms", Json::from(percentile_ms(&latencies, 99.0))),
        ("pushes_accepted", Json::from(accepted)),
        ("pushes_rejected_429", Json::from(rejected_server)),
        (
            "client_retries_on_429",
            Json::from(rejected.load(Ordering::Relaxed) as f64),
        ),
        ("solution_reads", Json::from(total_reads as f64)),
        (
            "stale_reads",
            Json::from(stale_reads.load(Ordering::Relaxed) as f64),
        ),
        ("stale_served", Json::from(stale_served)),
        ("solves_ok", Json::from(solves_ok)),
        (
            "solves_per_read",
            Json::from(solves_ok / total_reads.max(1) as f64),
        ),
    ])
}

fn bench_stream_soak(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let record = std::env::var_os("BENCH_STREAM_JSON").is_some();

    // Criterion leg: one concurrent push round across the streams, the
    // steady-state unit of the soak.
    let streams = 2;
    let (handle, addr) = start_server(ServerConfig::default());
    let ids = create_streams(addr, streams);
    let bodies: Vec<String> = (0..streams).map(|s| chunk_body(s, 1)).collect();
    let mut group = c.benchmark_group("stream_soak_push");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Elements((streams * CHUNK_POINTS) as u64));
    group.bench_function("push_round", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for (id, body) in ids.iter().zip(&bodies) {
                    scope.spawn(move || {
                        let mut conn = ClientConn::connect(addr).expect("connect");
                        let r = conn
                            .request("POST", &format!("/streams/{id}/push"), Some(body))
                            .expect("push");
                        assert!(r.is_success(), "{}", r.body);
                    });
                }
            })
        })
    });
    group.finish();
    handle.shutdown();

    if record {
        let (streams, chunks) = if quick { (2, 10) } else { (4, 40) };
        let result = soak(streams, chunks, 64, 25);
        let doc = Json::obj([
            ("bench", Json::from("stream_soak")),
            ("quick", Json::Bool(quick)),
            (
                "host_cpus",
                Json::from(
                    std::thread::available_parallelism()
                        .map(|v| v.get())
                        .unwrap_or(1),
                ),
            ),
            ("results", Json::arr(vec![result])),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
        if let Err(e) = std::fs::write(path, doc.pretty() + "\n") {
            eprintln!("warning: could not write BENCH_stream.json: {e}");
        }
    }
}

criterion_group!(benches, bench_stream_soak);
criterion_main!(benches);
