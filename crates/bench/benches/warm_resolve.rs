//! Incremental-layer throughput: what a warm re-solve saves over a cold
//! solve after an append, and what the shared-store leave-one-out sweep
//! saves over `n` independent reduced solves.
//!
//! Two axes:
//!
//! * **append fraction** — the instance grows by 1% / 5% and is
//!   re-solved `--base`-style from the prior solution. The warm path
//!   skips the `Θ(n·k)` certain-solve stage and re-assigns only the
//!   appended rows, so both wall-clock and the distance-evaluation
//!   counters should drop by well over the append ratio.
//! * **leave-one-out** — [`ukc_core::solve_loo`] against the cost of
//!   `n` independent cold solves of the reduced instances (the naive
//!   jackknife), sharing one point store and one base solution.
//!
//! Setting `BENCH_WARM_JSON=1` rewrites `BENCH_warm.json` at the
//! workspace root (see `docs/BENCHMARKS.md`), recording the measured
//! eval counts and the warm/cold ratios alongside `host_cpus` like the
//! other committed artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use ukc_core::{solve_batch_threads, solve_loo, Problem, Solution, SolverConfig};
use ukc_json::Json;
use ukc_metric::Point;
use ukc_uncertain::generators::{clustered, ProbModel};
use ukc_uncertain::{UncertainPoint, UncertainSet};

/// A prefix/full pair drawn from ONE generator call, so the appended
/// suffix comes from the same cluster structure — exactly the append
/// chains the warm path exists for.
fn append_pair(n: usize, frac: f64, k: usize) -> (Problem<Point>, Problem<Point>) {
    let extra = ((n as f64 * frac).round() as usize).max(1);
    let full = clustered(42, n + extra, 2, 4, k, 8.0, 0.5, ProbModel::Random);
    let prefix: Vec<UncertainPoint<Point>> = full.points()[..n].to_vec();
    let prior = Problem::euclidean(UncertainSet::new(prefix), k).unwrap();
    let grown = Problem::euclidean(full, k).unwrap();
    (prior, grown)
}

fn bench_warm_resolve(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let record = std::env::var_os("BENCH_WARM_JSON").is_some();
    // The lower-bound certificate is an orthogonal stage both the cold
    // and the warm path recompute identically (it certifies the *new*
    // instance); it dominates wall-clock at bench sizes, so it is
    // disabled here to measure the solve pipeline itself.
    let config = SolverConfig::builder().lower_bound(false).build().unwrap();
    let n: usize = if quick { 4_000 } else { 20_000 };
    let k = 16;
    let mut results: Vec<Json> = Vec::new();

    let mut g = c.benchmark_group("warm_resolve");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for &frac in &[0.01f64, 0.05] {
        if quick && frac != 0.01 {
            continue;
        }
        let (prior_problem, grown) = append_pair(n, frac, k);
        let prior = prior_problem.solve(&config).unwrap();
        let warm = Solution::warm_start(&grown, &config, &prior).unwrap();
        let stats = warm.report.warm.as_ref().unwrap();
        assert!(
            stats.fallback.is_none(),
            "bench instance must take the warm fast path, fell back: {:?}",
            stats.fallback
        );
        let pct = (frac * 100.0).round() as u64;
        g.bench_with_input(BenchmarkId::new("cold", pct), &grown, |b, grown| {
            b.iter(|| black_box(grown.solve(&config).unwrap().ecost))
        });
        g.bench_with_input(BenchmarkId::new("warm", pct), &grown, |b, grown| {
            b.iter(|| black_box(Solution::warm_start(grown, &config, &prior).unwrap().ecost))
        });
        if record {
            let reps = if quick { 1 } else { 3 };
            let mut cold_secs = f64::INFINITY;
            let mut cold_evals = 0u64;
            for _ in 0..reps {
                let t = Instant::now();
                let sol = black_box(grown.solve(&config).unwrap());
                cold_secs = cold_secs.min(t.elapsed().as_secs_f64());
                cold_evals = sol.report.distance_evals.total();
            }
            let mut warm_secs = f64::INFINITY;
            let mut warm_evals = 0u64;
            for _ in 0..reps {
                let t = Instant::now();
                let sol = black_box(Solution::warm_start(&grown, &config, &prior).unwrap());
                warm_secs = warm_secs.min(t.elapsed().as_secs_f64());
                warm_evals = sol.report.distance_evals.total();
            }
            results.push(Json::obj([
                ("mode", Json::from("warm_resolve")),
                ("n", Json::from(n)),
                ("k", Json::from(k)),
                ("append_fraction", Json::from(frac)),
                ("cold_seconds", Json::from(cold_secs)),
                ("warm_seconds", Json::from(warm_secs)),
                ("cold_distance_evals", Json::from(cold_evals as f64)),
                ("warm_distance_evals", Json::from(warm_evals as f64)),
                (
                    "evals_ratio",
                    Json::from(cold_evals as f64 / warm_evals.max(1) as f64),
                ),
                ("speedup", Json::from(cold_secs / warm_secs)),
            ]));
        }
    }
    g.finish();

    // Leave-one-out: the shared sweep vs n independent reduced solves.
    let n_loo: usize = if quick { 100 } else { 400 };
    let k_loo = 4;
    let set = clustered(7, n_loo, 2, 4, k_loo, 8.0, 0.5, ProbModel::Random);
    let problem = Problem::euclidean(set.clone(), k_loo).unwrap();
    let mut g = c.benchmark_group("solve_loo");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.bench_function(BenchmarkId::from_parameter(n_loo), |b| {
        b.iter(|| black_box(solve_loo(&problem, &config).unwrap().distance_evals))
    });
    g.finish();
    if record {
        let loo = solve_loo(&problem, &config).unwrap();
        // The naive jackknife for comparison: n independent reduced
        // problems through the ordinary batch fan-out.
        let mut variant_problems = Vec::with_capacity(n_loo);
        for i in 0..n_loo {
            let points: Vec<UncertainPoint<Point>> = set
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, up)| up.clone())
                .collect();
            variant_problems.push(Problem::euclidean(UncertainSet::new(points), k_loo).unwrap());
        }
        let t = Instant::now();
        let naive: u64 = solve_batch_threads(&variant_problems, &config, 1)
            .into_iter()
            .map(|r| r.unwrap().report.distance_evals.total())
            .sum();
        let naive_secs = t.elapsed().as_secs_f64();
        results.push(Json::obj([
            ("mode", Json::from("solve_loo")),
            ("n", Json::from(n_loo)),
            ("k", Json::from(k_loo)),
            ("reused_variants", Json::from(loo.reused_variants)),
            ("resolved_variants", Json::from(loo.resolved_variants)),
            (
                "shared_distance_evals",
                Json::from(loo.distance_evals as f64),
            ),
            ("naive_distance_evals", Json::from(naive as f64)),
            ("naive_seconds", Json::from(naive_secs)),
            (
                "evals_ratio",
                Json::from(naive as f64 / loo.distance_evals.max(1) as f64),
            ),
        ]));

        let doc = Json::obj([
            ("bench", Json::from("warm_resolve")),
            ("quick", Json::Bool(quick)),
            (
                "host_cpus",
                Json::from(
                    std::thread::available_parallelism()
                        .map(|v| v.get())
                        .unwrap_or(1),
                ),
            ),
            ("results", Json::arr(results)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_warm.json");
        if let Err(e) = std::fs::write(path, doc.pretty() + "\n") {
            eprintln!("warning: could not write BENCH_warm.json: {e}");
        }
    }
}

criterion_group!(benches, bench_warm_resolve);
criterion_main!(benches);
