//! Streaming ingestion throughput: points/sec through
//! `ukc_stream::StreamSolver`, across summary budgets and chunk sizes.
//!
//! Each insertion costs O(z + budget) — the expected point plus one
//! batched distance sweep over the kept centers — so throughput should
//! degrade roughly linearly in the budget and be insensitive to the
//! chunking (chunks only bound the transient working set and the
//! expected-point fan-out granularity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ukc_bench::workloads::euclidean;
use ukc_core::SolverConfig;
use ukc_stream::StreamSolver;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_throughput");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let set = euclidean(10_000, 3);
    let k = 8;
    for budget in [k, 4 * k, 16 * k] {
        g.throughput(Throughput::Elements(set.n() as u64));
        g.bench_with_input(
            BenchmarkId::new("ingest_10k", format!("budget_{budget}")),
            &set,
            |b, s| {
                b.iter(|| {
                    let mut solver = StreamSolver::builder(k)
                        .config(SolverConfig::default())
                        .budget(budget)
                        .build()
                        .expect("valid stream config");
                    for chunk in s.points().chunks(1024) {
                        solver.push_chunk(black_box(chunk)).expect("valid chunk");
                    }
                    solver.digest()
                })
            },
        );
    }
    // Finalization on top of an ingested stream: the per-checkpoint cost
    // of asking a live stream for its current solution.
    let mut solver = StreamSolver::builder(k)
        .config(SolverConfig::default())
        .budget(16 * k)
        .build()
        .expect("valid stream config");
    for chunk in set.points().chunks(1024) {
        solver.push_chunk(chunk).expect("valid chunk");
    }
    g.bench_function("finalize_budget_128", |b| {
        b.iter(|| solver.solution().expect("non-empty").certain_radius)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
