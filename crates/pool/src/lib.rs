//! # ukc-pool — the shared execution layer
//!
//! One process-wide set of worker threads that every parallel stage in the
//! workspace draws from: intra-solve distance sweeps ([`ukc-metric`]'s
//! parallel kernels), batch fan-out (`solve_batch_threads`), and the
//! server scheduler's waves. Centralizing the workers means the layers
//! *cooperate* instead of oversubscribing: a wave of solves and the
//! parallel sweeps inside each solve share the same fixed worker set, so
//! total runnable threads never exceed the pool size.
//!
//! [`ukc-metric`]: https://example.invalid/uncertain-kcenter
//!
//! ## Determinism contract
//!
//! The pool executes **chunks**: a task is split into `0..chunks` units
//! whose boundaries are chosen by the *caller* as a pure function of the
//! input size — never of the worker count. Workers (and the submitting
//! thread, which always participates) claim chunk indices from an atomic
//! counter, so *which thread* runs a chunk is scheduling-dependent, but
//! *what each chunk computes* is not. The reduction helpers
//! ([`map_chunks`]) hand partial results back **in chunk-index order**,
//! so any fold over them is performed in a fixed order. Consequently every
//! routine built on this crate produces bit-identical floating-point
//! output whether it runs on 1 lane or 64 — the property
//! `tests/parallel_equivalence.rs` pins across the whole solver stack.
//!
//! ## Blocking and nesting
//!
//! [`Pool::run`] borrows its closure and blocks until every chunk has
//! executed, so tasks may freely capture stack data (a scoped pool, like
//! `std::thread::scope`, but over persistent workers). The submitting
//! thread claims chunks itself while it waits; a task therefore always
//! makes progress even when every worker is busy elsewhere, which makes
//! *nested* submission (a pooled batch solve whose inner sweeps are also
//! pooled) deadlock-free by construction.
//!
//! ## Sizing
//!
//! [`global()`] returns the process-wide pool, sized on first use by the
//! `UKC_THREADS` environment variable when set (minimum 1 — the pool then
//! has `UKC_THREADS - 1` workers plus the submitting lane), otherwise by
//! [`std::thread::available_parallelism`].

#![warn(missing_docs)]
// This crate contains the workspace's only `unsafe` code: the lifetime
// erasure in `Pool::run` (see the safety comment there). Everything
// downstream of it is safe Rust.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A borrowed chunk runner with its lifetime erased so persistent worker
/// threads can call it. Soundness is the [`Pool::run`] protocol: the
/// submitting thread does not return before `done == chunks`, and `done`
/// is only incremented *after* a chunk call returns, so the pointee is
/// live for every call (`&'static` here is a lie told only for the
/// duration of that protocol).
#[derive(Clone, Copy)]
struct TaskFn(&'static (dyn Fn(usize) + Sync));

/// Erases the borrow of `f` for the duration of the [`Pool::run`]
/// protocol (see [`TaskFn`]).
fn erase_fn<'a>(f: &'a (dyn Fn(usize) + Sync)) -> TaskFn {
    // SAFETY: callers (only `Pool::run`) block until every chunk call has
    // returned before letting the real lifetime `'a` end, so no call ever
    // observes a dangling reference.
    TaskFn(unsafe {
        std::mem::transmute::<&'a (dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    })
}

/// One submitted task: a chunk counter, a completion counter, and a
/// budget of workers still allowed to join (the submitting lane is not
/// budgeted — it always participates).
struct Task {
    func: TaskFn,
    chunks: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    worker_budget: AtomicUsize,
    panicked: AtomicBool,
}

/// State shared between the workers and submitters.
struct Shared {
    /// Active tasks, oldest first. Also the mutex both condvars pair with.
    queue: Mutex<Vec<Arc<Task>>>,
    /// Workers sleep here when no task wants them.
    work: Condvar,
    /// Submitters sleep here waiting for their task to drain.
    drained: Condvar,
    shutdown: AtomicBool,
    /// Lanes (workers + submitters) currently executing a chunk.
    busy: AtomicUsize,
    /// Tasks ever dispatched through the workers.
    tasks: AtomicU64,
    /// Chunks ever executed through [`Pool::run`]'s pooled path.
    chunks: AtomicU64,
}

/// A point-in-time snapshot of pool occupancy, for ops surfaces
/// (`/metrics` renders one).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads owned by the pool (the submitting lane is extra).
    pub workers: usize,
    /// Lanes currently executing a chunk (workers + submitters).
    pub busy: usize,
    /// Chunks claimed by no lane yet, summed over all active tasks.
    pub queued_chunks: usize,
    /// Tasks ever dispatched through the pooled path.
    pub tasks: u64,
    /// Chunks ever executed through the pooled path.
    pub chunks: u64,
}

/// A fixed set of worker threads executing chunked tasks; see the crate
/// docs for the determinism contract.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl Pool {
    /// A pool offering `threads` total lanes: `threads - 1` persistent
    /// workers plus the submitting thread. `threads <= 1` spawns no
    /// workers at all — every [`Pool::run`] then executes inline, which
    /// is the `threads = 1` sequential path.
    pub fn new(threads: usize) -> Self {
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            work: Condvar::new(),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ukc-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Pool { shared, handles }
    }

    /// The number of persistent worker threads (total lanes are one more:
    /// the submitting thread always participates).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Total lanes: workers plus the submitting thread.
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> PoolStats {
        let queued = {
            let queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue
                .iter()
                .map(|t| {
                    t.chunks
                        .saturating_sub(t.next.load(Ordering::Relaxed).min(t.chunks))
                })
                .sum()
        };
        PoolStats {
            workers: self.handles.len(),
            busy: self.shared.busy.load(Ordering::Relaxed),
            queued_chunks: queued,
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            chunks: self.shared.chunks.load(Ordering::Relaxed),
        }
    }

    /// Executes `f(0) .. f(chunks - 1)`, each exactly once, using at most
    /// `lanes` lanes (the submitting thread plus up to `lanes - 1`
    /// workers), and returns when all chunks have run.
    ///
    /// Chunk *boundaries* are the caller's; this method only decides which
    /// lane runs which chunk, so any `f` whose chunks write disjoint data
    /// (or whose partial results are folded in chunk order) is
    /// deterministic regardless of `lanes`. With `lanes <= 1`, no
    /// workers, or a single chunk, `f` runs inline on the caller in index
    /// order.
    ///
    /// # Panics
    /// Propagates (as a fresh panic) any panic raised by `f` on any lane,
    /// after all claimed chunks have finished.
    pub fn run(&self, chunks: usize, lanes: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.handles.is_empty() || lanes <= 1 || chunks == 1 {
            for i in 0..chunks {
                f(i);
            }
            return;
        }

        // `task` holds a lifetime-erased reference to `f` (see `erase_fn`
        // for the safety argument). This function does not return (or
        // unwind — caller-side panics are caught in `execute_chunks`)
        // before `done == chunks`, which in turn only happens after every
        // chunk call has returned, so the erased borrow outlives all uses.
        let task = Arc::new(Task {
            func: erase_fn(f),
            chunks,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            worker_budget: AtomicUsize::new((lanes - 1).min(self.handles.len())),
            panicked: AtomicBool::new(false),
        });
        self.shared.tasks.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.push(Arc::clone(&task));
            self.shared.work.notify_all();
        }

        // The submitting lane participates until no chunk is unclaimed.
        execute_chunks(&self.shared, &task);

        // Wait for the chunks other lanes claimed.
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            while task.done.load(Ordering::Acquire) < chunks {
                queue = self
                    .shared
                    .drained
                    .wait(queue)
                    .expect("pool queue poisoned");
            }
            queue.retain(|t| !Arc::ptr_eq(t, &task));
        }
        if task.panicked.load(Ordering::Relaxed) {
            panic!("ukc-pool: a parallel chunk panicked (see worker output above)");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _queue = self.shared.queue.lock().expect("pool queue poisoned");
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims and runs chunks of `task` until none are left. Used by both the
/// submitting lane and the workers; panics inside a chunk are recorded on
/// the task and re-raised by [`Pool::run`] on the submitting thread.
fn execute_chunks(shared: &Shared, task: &Task) {
    loop {
        let i = task.next.fetch_add(1, Ordering::Relaxed);
        if i >= task.chunks {
            return;
        }
        shared.busy.fetch_add(1, Ordering::Relaxed);
        // The erased borrow is live here: `done` for this chunk is only
        // incremented after the call returns (see `erase_fn`).
        let func = task.func.0;
        if catch_unwind(AssertUnwindSafe(|| func(i))).is_err() {
            task.panicked.store(true, Ordering::Relaxed);
        }
        shared.busy.fetch_sub(1, Ordering::Relaxed);
        shared.chunks.fetch_add(1, Ordering::Relaxed);
        if task.done.fetch_add(1, Ordering::AcqRel) + 1 == task.chunks {
            // Last chunk of the task: wake its submitter. Lock the queue
            // mutex so the wakeup cannot race the submitter's predicate
            // check.
            let _queue = shared.queue.lock().expect("pool queue poisoned");
            shared.drained.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Oldest task that still has unclaimed chunks and worker
                // budget left.
                let found = queue
                    .iter()
                    .find(|t| {
                        t.next.load(Ordering::Relaxed) < t.chunks
                            && t.worker_budget.load(Ordering::Relaxed) > 0
                    })
                    .cloned();
                match found {
                    Some(task) => {
                        task.worker_budget.fetch_sub(1, Ordering::Relaxed);
                        break task;
                    }
                    None => {
                        queue = shared.work.wait(queue).expect("pool queue poisoned");
                    }
                }
            }
        };
        execute_chunks(shared, &task);
    }
}

/// The pool size the process defaults to: `UKC_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("UKC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, created on first use with
/// [`default_threads()`] lanes. Every layer that parallelizes —
/// intra-solve kernels, batch fan-out, server waves — shares it.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// An execution context: sequential, or a pool plus a lane cap. The
/// currency handed down the solver stack — a `Copy` value, cheap to
/// thread through every stage.
#[derive(Clone, Copy, Debug)]
pub struct Exec<'a> {
    pool: Option<&'a Pool>,
    lanes: usize,
}

impl<'a> Exec<'a> {
    /// Run everything inline on the calling thread.
    pub const fn sequential() -> Self {
        Exec {
            pool: None,
            lanes: 1,
        }
    }

    /// Run on `pool` with at most `lanes` lanes (`lanes <= 1` degrades to
    /// [`Exec::sequential`]).
    pub fn pooled(pool: &'a Pool, lanes: usize) -> Self {
        if lanes <= 1 || pool.workers() == 0 {
            Exec::sequential()
        } else {
            Exec {
                pool: Some(pool),
                lanes,
            }
        }
    }

    /// `lanes` lanes on the [`global()`] pool (`lanes <= 1` is
    /// sequential, without touching — or lazily creating — the pool).
    pub fn auto(lanes: usize) -> Exec<'static> {
        if lanes <= 1 {
            Exec::sequential()
        } else {
            Exec::pooled(global(), lanes)
        }
    }

    /// The lane cap (1 when sequential).
    pub fn lanes(&self) -> usize {
        if self.pool.is_some() {
            self.lanes
        } else {
            1
        }
    }

    /// Whether chunks may run on pool workers.
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Executes `f(chunk_index)` for every chunk, pooled or inline. The
    /// chunk count must come from the input size alone (see the crate
    /// docs); inline execution runs chunks in index order.
    pub fn run(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        match self.pool {
            Some(pool) => pool.run(chunks, self.lanes, f),
            None => {
                for i in 0..chunks {
                    f(i);
                }
            }
        }
    }
}

/// Number of `chunk`-sized chunks covering `0..n` (the last may be
/// short).
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    assert!(chunk > 0, "chunk size must be positive");
    n.div_ceil(chunk)
}

fn chunk_range(n: usize, chunk: usize, i: usize) -> Range<usize> {
    let start = i * chunk;
    start..((start + chunk).min(n))
}

/// Runs `f` over every `chunk`-sized index range of `0..n`. The chunk
/// structure depends only on `(n, chunk)`, so results that are
/// elementwise (each index writes its own data through interior
/// mutability) are identical for every [`Exec`].
pub fn for_each_chunk(exec: Exec<'_>, n: usize, chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    let chunks = chunk_count(n, chunk);
    exec.run(chunks, &|i| f(chunk_range(n, chunk, i)));
}

/// Splits `out` into `chunk`-sized slices and runs
/// `f(start_index, slice)` on each — the elementwise-fill driver behind
/// the parallel distance kernels. Each slice is handed to exactly one
/// chunk, so `f` may mutate it freely; the fill is deterministic for any
/// [`Exec`] because element values depend only on their index.
pub fn for_each_slice<T: Send>(
    exec: Exec<'_>,
    out: &mut [T],
    chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk > 0, "chunk size must be positive");
    if !exec.is_parallel() {
        for (i, slice) in out.chunks_mut(chunk).enumerate() {
            f(i * chunk, slice);
        }
        return;
    }
    // Pre-split the output into per-chunk slots; each chunk claims its
    // own exactly once (the pool guarantees one call per index).
    let slots: Vec<Mutex<Option<&mut [T]>>> =
        out.chunks_mut(chunk).map(|s| Mutex::new(Some(s))).collect();
    exec.run(slots.len(), &|i| {
        let slice = slots[i]
            .lock()
            .expect("chunk slot poisoned")
            .take()
            .expect("each chunk is claimed exactly once");
        f(i * chunk, slice);
    });
}

/// Maps every `chunk`-sized index range of `0..n` through `f` and
/// returns the results **in chunk-index order** — the ordered-reduction
/// driver. Folding the returned vector front to back reproduces the
/// sequential reduction exactly, for any [`Exec`].
pub fn map_chunks<R: Send>(
    exec: Exec<'_>,
    n: usize,
    chunk: usize,
    f: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let chunks = chunk_count(n, chunk);
    if !exec.is_parallel() {
        return (0..chunks).map(|i| f(chunk_range(n, chunk, i))).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    exec.run(chunks, &|i| {
        let r = f(chunk_range(n, chunk, i));
        *slots[i].lock().expect("chunk slot poisoned") = Some(r);
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("chunk slot poisoned")
                .expect("every chunk produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 0);
        let hits = TestCounter::new(0);
        pool.run(10, 4, &|i| {
            hits.fetch_add(1 << i, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), (1 << 10) - 1);
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = Pool::new(4);
        for chunks in [1usize, 2, 3, 17, 100] {
            let counts: Vec<TestCounter> = (0..chunks).map(|_| TestCounter::new(0)).collect();
            pool.run(chunks, 4, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_chunks_is_ordered_for_any_exec() {
        let pool = Pool::new(3);
        let seq = map_chunks(Exec::sequential(), 1000, 64, |r| (r.start, r.end));
        let par = map_chunks(Exec::pooled(&pool, 3), 1000, 64, |r| (r.start, r.end));
        assert_eq!(seq, par);
        assert_eq!(seq[0], (0, 64));
        assert_eq!(*seq.last().unwrap(), (960, 1000));
    }

    #[test]
    fn for_each_slice_fills_disjointly() {
        let pool = Pool::new(4);
        let mut seq = vec![0u64; 513];
        for_each_slice(Exec::sequential(), &mut seq, 32, |start, slice| {
            for (j, v) in slice.iter_mut().enumerate() {
                *v = (start + j) as u64 * 3;
            }
        });
        let mut par = vec![0u64; 513];
        for_each_slice(Exec::pooled(&pool, 4), &mut par, 32, |start, slice| {
            for (j, v) in slice.iter_mut().enumerate() {
                *v = (start + j) as u64 * 3;
            }
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn nested_run_makes_progress() {
        // A pooled task whose chunks submit pooled sub-tasks must complete
        // (the submitting lane always participates, so no deadlock).
        let pool = Pool::new(3);
        let total = TestCounter::new(0);
        pool.run(4, 3, &|_| {
            pool.run(8, 3, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn lane_cap_is_respected_in_stats_shape() {
        let pool = Pool::new(4);
        // lanes = 2 allows at most one worker to join; correctness is
        // unaffected either way — just check the run completes and stats
        // monotonically record it.
        let before = pool.stats().chunks;
        pool.run(32, 2, &|_| {});
        let after = pool.stats();
        assert!(after.chunks >= before + 32);
        assert_eq!(after.workers, 3);
        assert_eq!(after.queued_chunks, 0);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, 2, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked task.
        let ok = TestCounter::new(0);
        pool.run(4, 2, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn exec_auto_sequential_below_two_lanes() {
        assert!(!Exec::auto(1).is_parallel());
        assert_eq!(Exec::auto(0).lanes(), 1);
        assert!(!Exec::sequential().is_parallel());
    }

    #[test]
    fn chunk_count_covers_everything() {
        assert_eq!(chunk_count(0, 8), 0);
        assert_eq!(chunk_count(1, 8), 1);
        assert_eq!(chunk_count(8, 8), 1);
        assert_eq!(chunk_count(9, 8), 2);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
