//! Property coverage for digest-prefix routing.
//!
//! Pins the two invariants the cluster leans on:
//!
//! 1. **Total, unambiguous ownership** — for any registry size, every
//!    digest maps to exactly one node, and `route` returns that node.
//! 2. **Minimal rebalancing** — removing a node reassigns *only* the
//!    removed range: a digest changes owner iff the removed node owned
//!    it, and then only to the reported heir.

use proptest::prelude::*;
use ukc_cluster::{prefix_of, NodeRegistry, PREFIX_SPACE};

fn registry_of(n: usize) -> NodeRegistry {
    NodeRegistry::new((0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)))
        .expect("non-empty registries always build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_digest_maps_to_exactly_one_node(
        digest in 0u64..u64::MAX,
        n in 1usize..64,
    ) {
        let registry = registry_of(n);
        let prefix = prefix_of(digest);
        let owners = registry
            .nodes()
            .iter()
            .filter(|node| node.owns(prefix))
            .count();
        prop_assert_eq!(owners, 1);
        prop_assert!(registry.route(digest).owns(prefix));
    }

    #[test]
    fn ranges_partition_the_prefix_space(n in 1usize..64) {
        let registry = registry_of(n);
        let nodes = registry.nodes();
        prop_assert_eq!(nodes[0].start, 0);
        prop_assert_eq!(nodes[nodes.len() - 1].end, PREFIX_SPACE);
        for pair in nodes.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
        let total: u64 = nodes.iter().map(|node| u64::from(node.width())).sum();
        prop_assert_eq!(total, u64::from(PREFIX_SPACE));
    }

    #[test]
    fn remove_reassigns_only_the_removed_range(
        digest in 0u64..u64::MAX,
        n in 2usize..64,
        victim_index in 0usize..64,
    ) {
        let mut registry = registry_of(n);
        let victim = registry.nodes()[victim_index % n].id;
        let owner_before = registry.route(digest).id;

        let (start, end, heir) = registry.remove(victim).expect("n >= 2");

        let owner_after = registry.route(digest).id;
        let prefix = prefix_of(digest);
        if owner_before == victim {
            // The only digests that move are the victim's, and they all
            // land on the single reported heir.
            prop_assert!(start <= prefix && prefix < end);
            prop_assert_eq!(owner_after, heir);
        } else {
            prop_assert_eq!(owner_after, owner_before);
        }
    }

    #[test]
    fn add_moves_digests_only_to_the_new_node(
        digest in 0u64..u64::MAX,
        n in 1usize..32,
    ) {
        let mut registry = registry_of(n);
        let owner_before = registry.route(digest).id;
        let added = registry.add("127.0.0.1:9999").expect("space not exhausted");
        let owner_after = registry.route(digest).id;
        // A digest either keeps its owner or moved to the new node —
        // add never shuffles digests between pre-existing nodes.
        prop_assert!(owner_after == owner_before || owner_after == added);
    }
}

/// The all-ones digest sits at the top of the last range (range
/// strategies above exclude `u64::MAX` itself).
#[test]
fn extreme_digests_have_owners() {
    for n in [1, 2, 3, 17, 63] {
        let registry = registry_of(n);
        for digest in [0, u64::MAX] {
            assert!(registry.route(digest).owns(prefix_of(digest)), "n={n}");
        }
    }
}
