//! A thin blocking HTTP client: the CLI's `ukc client`, the integration
//! tests, the throughput bench, and — most importantly — the cluster
//! coordinator's shard calls all go through this module, so the client
//! exercises the same wire format the server speaks (one request per
//! call; `Connection: close` unless a [`ClientConn`] keep-alive session
//! is used).
//!
//! [`ClientOptions`] adds the failure-domain knobs a coordinator needs:
//! a connect/read/write timeout (the OS default lets a dead peer hang a
//! request for minutes) and bounded retries with exponential backoff on
//! *connect* failure — connect failures are the one class that is safe
//! to retry blindly, because nothing reached the peer.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response: status code, headers, and body text.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// Response headers, in wire order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Transport tunables for one logical request.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Connect + read + write timeout per attempt. `None` (the default)
    /// leaves the OS defaults in place — today's CLI behavior.
    pub timeout: Option<Duration>,
    /// Extra attempts after a failed *connect* (0 = a single attempt).
    pub retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(100),
        }
    }
}

fn io_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Performs one request over a fresh connection with default options.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    request_with(addr, method, path, body, &ClientOptions::default())
}

/// Performs one request over a fresh connection, honoring `options`:
/// every socket operation is bounded by `options.timeout`, and a failed
/// connect is retried `options.retries` times with exponential backoff
/// (`backoff`, `2·backoff`, `4·backoff`, ...).
pub fn request_with(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
    options: &ClientOptions,
) -> std::io::Result<HttpResponse> {
    let stream = connect_with(addr, options)?;
    if let Some(timeout) = options.timeout {
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
    }
    send_request(&stream, method, path, body, false)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Connects with per-attempt timeout and bounded exponential-backoff
/// retries on connect failure.
fn connect_with(addr: impl ToSocketAddrs, options: &ClientOptions) -> std::io::Result<TcpStream> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if addrs.is_empty() {
        return Err(io_err("address resolved to nothing"));
    }
    let mut last_err = None;
    for attempt in 0..=options.retries {
        if attempt > 0 {
            // 100ms, 200ms, 400ms, ... — capped at 2^attempt-1 doublings.
            let backoff = options.backoff * (1u32 << (attempt - 1).min(16));
            std::thread::sleep(backoff);
        }
        for sa in &addrs {
            let attempt_result = match options.timeout {
                Some(timeout) => TcpStream::connect_timeout(sa, timeout),
                None => TcpStream::connect(sa),
            };
            match attempt_result {
                Ok(stream) => return Ok(stream),
                Err(e) => last_err = Some(e),
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io_err("connect failed")))
}

/// A keep-alive session: many requests over one connection (what the
/// throughput bench uses, so connection setup does not dominate).
pub struct ClientConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    /// Connects with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, &ClientOptions::default())
    }

    /// Connects honoring `options` (timeout + connect retries).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: &ClientOptions,
    ) -> std::io::Result<Self> {
        let stream = connect_with(addr, options)?;
        stream.set_nodelay(true)?;
        if let Some(timeout) = options.timeout {
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
        }
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ClientConn { stream, reader })
    }

    /// Performs one request on the open connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        send_request(&self.stream, method, path, body, true)?;
        read_response(&mut self.reader)
    }
}

fn send_request(
    mut stream: &TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: ukc\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    stream.flush()
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<HttpResponse> {
    let status_line = read_line(reader)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io_err(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    // Tolerate a stray trailing CRLF from read_to_end on close.
    while matches!(body.last(), Some(b'\r' | b'\n')) && content_length.is_none() {
        body.pop();
    }
    Ok(HttpResponse {
        status,
        headers,
        body: String::from_utf8(body).map_err(|_| io_err("non-utf8 response body"))?,
    })
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
        }
    }
    while matches!(line.last(), Some(b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| io_err("non-utf8 response header"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn timeout_bounds_a_dead_connect() {
        // A port from a listener we immediately drop: connecting fails
        // fast with refused (the backoff path, not the timeout path, but
        // it proves retries give up and report the last error).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let options = ClientOptions {
            timeout: Some(Duration::from_millis(200)),
            retries: 2,
            backoff: Duration::from_millis(1),
        };
        let start = std::time::Instant::now();
        let err = request_with(addr, "GET", "/healthz", None, &options).unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(5), "bounded: {err}");
    }

    #[test]
    fn retries_recover_once_the_listener_appears() {
        // Bind, then answer exactly one request after a short delay while
        // the client is already retrying against the reserved port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = conn.read(&mut buf);
            let body = "{}";
            write!(
                conn,
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Probe: yes\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .unwrap();
        });
        let options = ClientOptions {
            timeout: Some(Duration::from_secs(2)),
            retries: 3,
            backoff: Duration::from_millis(10),
        };
        let response = request_with(addr, "GET", "/healthz", None, &options).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{}");
        assert_eq!(response.header("x-probe"), Some("yes"));
        assert_eq!(response.header("X-PROBE"), Some("yes"));
        server.join().unwrap();
    }
}
