//! The node registry: which shard owns which digest-prefix range.
//!
//! Instances are content-addressed by a 64-bit canonical digest
//! (`ukc_core::digest_set`), so a cluster can shard them by digest
//! *prefix*: the top [`PREFIX_BITS`] bits of the digest index a
//! 2^16-slot prefix space, and every registered node owns one contiguous
//! half-open range `[start, end)` of it. The ranges always partition the
//! space, so **every digest maps to exactly one node** — the property
//! the routing proptests pin for every registry size.
//!
//! Rebalancing is deliberately minimal, in the consistent-hashing
//! spirit:
//!
//! * [`NodeRegistry::add`] splits the widest range in half and hands the
//!   upper half to the new node — only digests in that stolen half move.
//! * [`NodeRegistry::remove`] merges the removed node's range into its
//!   adjacent neighbor — **only the removed range is reassigned**; every
//!   digest owned by a surviving node keeps its owner.
//!
//! Liveness ([`NodeState`]) is tracked *separately* from ownership:
//! a `Down` node still owns its range, so routing stays deterministic
//! while the coordinator falls back to replicas for reads. Ownership only
//! changes through explicit `add`/`remove` lifecycle calls.

use ukc_json::format::cluster::JsonNode;

/// Number of leading digest bits that form the shard-routing prefix.
pub const PREFIX_BITS: u32 = 16;

/// Size of the prefix space (`2^PREFIX_BITS` slots).
pub const PREFIX_SPACE: u32 = 1 << PREFIX_BITS;

/// The routing prefix of a digest: its top [`PREFIX_BITS`] bits.
pub fn prefix_of(digest: u64) -> u32 {
    (digest >> (64 - PREFIX_BITS)) as u32
}

/// Liveness of one registered node, as last observed by the health
/// prober or by a forwarded request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// The node answered its last `/healthz` probe (or last forward).
    Alive,
    /// The node failed its last probe or forward; reads fall back to
    /// replicas until it answers again. It still owns its range.
    Down,
}

impl NodeState {
    /// The wire spelling (`"alive"` / `"down"`).
    pub fn as_str(self) -> &'static str {
        match self {
            NodeState::Alive => "alive",
            NodeState::Down => "down",
        }
    }
}

/// One registered shard node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Registry-assigned stable ID (never reused within one registry).
    pub id: usize,
    /// The node's base address, `host:port`.
    pub addr: String,
    /// First owned prefix (inclusive).
    pub start: u32,
    /// One past the last owned prefix (exclusive, `<=` [`PREFIX_SPACE`]).
    pub end: u32,
    /// Last observed liveness.
    pub state: NodeState,
}

impl Node {
    /// Whether this node's range contains `prefix`.
    pub fn owns(&self, prefix: u32) -> bool {
        self.start <= prefix && prefix < self.end
    }

    /// Width of the owned range in prefix slots.
    pub fn width(&self) -> u32 {
        self.end - self.start
    }

    /// The node's wire form.
    pub fn to_wire(&self) -> JsonNode {
        JsonNode {
            id: self.id,
            addr: self.addr.clone(),
            prefix_start: self.start,
            prefix_end: self.end,
            state: self.state.as_str().to_string(),
        }
    }
}

/// Registry lifecycle errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// A registry needs at least one node.
    Empty,
    /// The named node does not exist.
    UnknownNode(usize),
    /// Refusing to remove the only node — the cluster would own nothing.
    LastNode,
    /// Every range has width 1; the prefix space cannot be split further.
    SpaceExhausted,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Empty => write!(f, "a shard registry needs at least one node"),
            RegistryError::UnknownNode(id) => write!(f, "no node {id} in the registry"),
            RegistryError::LastNode => write!(f, "cannot remove the last node"),
            RegistryError::SpaceExhausted => {
                write!(f, "prefix space exhausted ({PREFIX_SPACE} nodes)")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry: nodes sorted by range start, always partitioning
/// `[0, PREFIX_SPACE)`.
#[derive(Clone, Debug)]
pub struct NodeRegistry {
    /// Sorted by `start`; invariant: `nodes[0].start == 0`,
    /// `nodes[last].end == PREFIX_SPACE`, each `end == next.start`.
    nodes: Vec<Node>,
    next_id: usize,
}

impl NodeRegistry {
    /// Builds a registry over `addrs`, splitting the prefix space evenly
    /// (node `i` of `n` owns `[i·S/n, (i+1)·S/n)`).
    pub fn new<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> Result<Self, RegistryError> {
        let addrs: Vec<String> = addrs.into_iter().map(Into::into).collect();
        if addrs.is_empty() {
            return Err(RegistryError::Empty);
        }
        let n = addrs.len() as u64;
        let space = u64::from(PREFIX_SPACE);
        let nodes = addrs
            .into_iter()
            .enumerate()
            .map(|(i, addr)| Node {
                id: i,
                addr,
                start: (i as u64 * space / n) as u32,
                end: ((i as u64 + 1) * space / n) as u32,
                state: NodeState::Alive,
            })
            .collect::<Vec<_>>();
        let next_id = nodes.len();
        let registry = NodeRegistry { nodes, next_id };
        registry.debug_check();
        Ok(registry)
    }

    /// All nodes in range order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the registry is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes currently believed alive.
    pub fn alive(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Alive)
            .count()
    }

    /// The node that owns `digest` (total: some node always owns it).
    pub fn route(&self, digest: u64) -> &Node {
        let prefix = prefix_of(digest);
        // partition_point finds the first node with start > prefix; its
        // predecessor owns the prefix (ranges are a sorted partition).
        let idx = self.nodes.partition_point(|n| n.start <= prefix) - 1;
        debug_assert!(self.nodes[idx].owns(prefix));
        &self.nodes[idx]
    }

    /// Looks a node up by ID.
    pub fn node(&self, id: usize) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Updates a node's observed liveness; returns whether it changed.
    pub fn set_state(&mut self, id: usize, state: NodeState) -> Result<bool, RegistryError> {
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == id)
            .ok_or(RegistryError::UnknownNode(id))?;
        let changed = node.state != state;
        node.state = state;
        Ok(changed)
    }

    /// Registers a new node: the widest existing range is split in half
    /// and the new node takes the upper half, so only digests in that
    /// stolen half change owner. Returns the new node's ID.
    pub fn add(&mut self, addr: impl Into<String>) -> Result<usize, RegistryError> {
        let widest = self
            .nodes
            .iter()
            .enumerate()
            .max_by_key(|(i, n)| (n.width(), usize::MAX - i)) // widest; ties -> lowest index
            .map(|(i, _)| i)
            .ok_or(RegistryError::Empty)?;
        if self.nodes[widest].width() < 2 {
            return Err(RegistryError::SpaceExhausted);
        }
        let mid = self.nodes[widest].start + self.nodes[widest].width() / 2;
        let end = self.nodes[widest].end;
        self.nodes[widest].end = mid;
        let id = self.next_id;
        self.next_id += 1;
        self.nodes.insert(
            widest + 1,
            Node {
                id,
                addr: addr.into(),
                start: mid,
                end,
                state: NodeState::Alive,
            },
        );
        self.debug_check();
        Ok(id)
    }

    /// Removes a node, merging its range into the adjacent neighbor (the
    /// successor in range order when one exists, else the predecessor).
    /// Only the removed range is reassigned — every other digest keeps
    /// its owner. Returns the reassigned `(start, end)` range and the ID
    /// of the node that absorbed it.
    pub fn remove(&mut self, id: usize) -> Result<(u32, u32, usize), RegistryError> {
        if self.nodes.len() == 1 {
            return if self.nodes[0].id == id {
                Err(RegistryError::LastNode)
            } else {
                Err(RegistryError::UnknownNode(id))
            };
        }
        let idx = self
            .nodes
            .iter()
            .position(|n| n.id == id)
            .ok_or(RegistryError::UnknownNode(id))?;
        let removed = self.nodes.remove(idx);
        let heir_idx = if idx < self.nodes.len() { idx } else { idx - 1 };
        let heir = &mut self.nodes[heir_idx];
        heir.start = heir.start.min(removed.start);
        heir.end = heir.end.max(removed.end);
        let heir_id = heir.id;
        self.debug_check();
        Ok((removed.start, removed.end, heir_id))
    }

    /// Ring-order read fallback: the first *alive* node after `owner_id`
    /// in range order, excluding the owner itself. `None` when the owner
    /// is the only node or nothing else is alive.
    pub fn successor_alive(&self, owner_id: usize) -> Option<&Node> {
        let idx = self.nodes.iter().position(|n| n.id == owner_id)?;
        (1..self.nodes.len())
            .map(|step| &self.nodes[(idx + step) % self.nodes.len()])
            .find(|n| n.state == NodeState::Alive)
    }

    /// Wire forms of every node, in range order.
    pub fn to_wire(&self) -> Vec<JsonNode> {
        self.nodes.iter().map(Node::to_wire).collect()
    }

    /// Asserts the partition invariant in debug builds.
    fn debug_check(&self) {
        debug_assert!(!self.nodes.is_empty());
        debug_assert_eq!(self.nodes[0].start, 0);
        debug_assert_eq!(self.nodes[self.nodes.len() - 1].end, PREFIX_SPACE);
        for pair in self.nodes.windows(2) {
            debug_assert_eq!(pair[0].end, pair[1].start);
            debug_assert!(pair[0].width() > 0);
        }
        debug_assert!(self.nodes.iter().all(|n| n.width() > 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn even_split_partitions_the_space() {
        for n in 1..=7 {
            let reg = NodeRegistry::new(addrs(n)).unwrap();
            assert_eq!(reg.len(), n);
            assert_eq!(reg.nodes()[0].start, 0);
            assert_eq!(reg.nodes()[n - 1].end, PREFIX_SPACE);
            let total: u32 = reg.nodes().iter().map(Node::width).sum();
            assert_eq!(total, PREFIX_SPACE);
        }
        assert_eq!(
            NodeRegistry::new(Vec::<String>::new()).unwrap_err(),
            RegistryError::Empty
        );
    }

    #[test]
    fn routing_is_total_and_prefix_based() {
        let reg = NodeRegistry::new(addrs(2)).unwrap();
        // Top bit clear -> first half -> node 0; set -> node 1.
        assert_eq!(reg.route(0).id, 0);
        assert_eq!(reg.route(u64::MAX / 2).id, 0);
        assert_eq!(reg.route(u64::MAX / 2 + 1).id, 1);
        assert_eq!(reg.route(u64::MAX).id, 1);
        // Low bits never matter.
        assert_eq!(reg.route(0x0000_ffff_ffff_ffff).id, 0);
        assert_eq!(reg.route(0x8000_0000_0000_0000).id, 1);
    }

    #[test]
    fn add_splits_the_widest_range_only() {
        let mut reg = NodeRegistry::new(addrs(2)).unwrap();
        let before: Vec<u64> = (0..64).map(|i| i * 0x0400_0000_0000_0000).collect();
        let owners_before: Vec<usize> = before.iter().map(|&d| reg.route(d).id).collect();
        let new_id = reg.add("127.0.0.1:9100").unwrap();
        assert_eq!(new_id, 2);
        for (&d, &owner) in before.iter().zip(&owners_before) {
            let now = reg.route(d).id;
            // A digest either kept its owner or moved to the new node.
            assert!(now == owner || now == new_id, "digest {d:#x}");
        }
        let total: u32 = reg.nodes().iter().map(Node::width).sum();
        assert_eq!(total, PREFIX_SPACE);
    }

    #[test]
    fn remove_merges_into_the_neighbor() {
        let mut reg = NodeRegistry::new(addrs(3)).unwrap();
        let victim = reg.nodes()[1].clone();
        let (start, end, heir) = reg.remove(victim.id).unwrap();
        assert_eq!((start, end), (victim.start, victim.end));
        // The successor in range order absorbed the range.
        assert_eq!(heir, 2);
        assert_eq!(reg.len(), 2);
        let total: u32 = reg.nodes().iter().map(Node::width).sum();
        assert_eq!(total, PREFIX_SPACE);
        // Removing the tail node merges backwards instead.
        let tail = reg.nodes()[reg.len() - 1].id;
        let (_, _, heir) = reg.remove(tail).unwrap();
        assert_eq!(heir, reg.nodes()[0].id);
        assert_eq!(reg.nodes()[0].width(), PREFIX_SPACE);
        // The last node is irremovable.
        let last = reg.nodes()[0].id;
        assert_eq!(reg.remove(last).unwrap_err(), RegistryError::LastNode);
    }

    #[test]
    fn states_and_successors() {
        let mut reg = NodeRegistry::new(addrs(3)).unwrap();
        assert_eq!(reg.alive(), 3);
        assert!(reg.set_state(1, NodeState::Down).unwrap());
        assert!(!reg.set_state(1, NodeState::Down).unwrap()); // unchanged
        assert_eq!(reg.alive(), 2);
        assert_eq!(reg.successor_alive(1).unwrap().id, 2);
        // The successor skips downed nodes and wraps.
        reg.set_state(2, NodeState::Down).unwrap();
        assert_eq!(reg.successor_alive(1).unwrap().id, 0);
        assert!(reg.successor_alive(0).is_none());
        assert!(reg.set_state(99, NodeState::Alive).is_err());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut reg = NodeRegistry::new(addrs(2)).unwrap();
        reg.remove(1).unwrap();
        let id = reg.add("127.0.0.1:9200").unwrap();
        assert_eq!(id, 2);
        reg.remove(id).unwrap();
        assert_eq!(reg.add("127.0.0.1:9300").unwrap(), 3);
    }
}
