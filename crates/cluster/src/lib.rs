//! # ukc-cluster — digest-sharded multi-node serving
//!
//! The building blocks the server's coordinator mode assembles into a
//! scatter/gather cluster, kept dependency-free (std + `ukc_json` only)
//! so they can be tested without sockets:
//!
//! 1. **[`registry`]** — the [`registry::NodeRegistry`]: every shard
//!    node owns one contiguous range of the 2^16-slot digest-prefix
//!    space. Ranges always partition the space (every digest maps to
//!    exactly one node), `add` splits the widest range, and `remove`
//!    reassigns *only* the removed range to its neighbor. Liveness
//!    ([`registry::NodeState`]) is tracked separately from ownership, so
//!    routing stays deterministic while a node is down.
//! 2. **[`hot`]** — the [`hot::HotSet`] replication policy: read counts
//!    per digest (the same signal as the server's LRU solution cache);
//!    crossing the threshold asks the coordinator to copy the instance
//!    to a second shard, and recorded replicas serve reads when the
//!    owner is down.
//! 3. **[`client`]** — the workspace's blocking HTTP client (previously
//!    `ukc_server::client`, re-exported from there unchanged), extended
//!    with [`client::ClientOptions`]: per-attempt timeouts and bounded
//!    exponential-backoff retries on connect failure, which is what
//!    keeps one dead shard from hanging the coordinator.
//!
//! Wire forms for registry/status documents live in
//! [`ukc_json::format::cluster`] so the server, the CLI, and this crate
//! all speak the same schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod hot;
pub mod registry;

pub use hot::HotSet;
pub use registry::{prefix_of, Node, NodeRegistry, NodeState, RegistryError, PREFIX_SPACE};
