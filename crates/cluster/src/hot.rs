//! Hot-instance tracking: which digests are read often enough to deserve
//! a replica, and where the replicas live.
//!
//! The policy mirrors the server's LRU solution cache: read traffic is
//! the signal. The coordinator counts digest-routed reads (instance
//! fetches and solves); when a digest's count reaches the configured
//! threshold it is declared *hot* exactly once — the caller then copies
//! the instance to a second shard and records the replica here. Reads of
//! a digest whose owner is down fall back to its recorded replicas; only
//! a digest with **no** live replica yields the typed `shard_unavailable`
//! failure.

use std::collections::HashMap;

/// Hit counts and replica locations, keyed by instance digest.
#[derive(Debug)]
pub struct HotSet {
    threshold: u64,
    hits: HashMap<u64, u64>,
    /// digest -> replica node IDs (the owner is implicit via routing and
    /// never listed here).
    replicas: HashMap<u64, Vec<usize>>,
}

impl HotSet {
    /// A tracker that declares a digest hot at `threshold` reads.
    /// `threshold == 0` disables replication entirely.
    pub fn new(threshold: u64) -> Self {
        HotSet {
            threshold,
            hits: HashMap::new(),
            replicas: HashMap::new(),
        }
    }

    /// Counts one read. Returns `true` exactly when this read makes the
    /// digest hot for the first time (count reached the threshold and no
    /// replica is recorded yet) — the caller should replicate now.
    pub fn record_read(&mut self, digest: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let count = self.hits.entry(digest).or_insert(0);
        *count += 1;
        *count >= self.threshold && !self.replicas.contains_key(&digest)
    }

    /// Records a replica of `digest` on `node_id`.
    pub fn add_replica(&mut self, digest: u64, node_id: usize) {
        let nodes = self.replicas.entry(digest).or_default();
        if !nodes.contains(&node_id) {
            nodes.push(node_id);
        }
    }

    /// The replica nodes recorded for `digest` (empty when none).
    pub fn replicas(&self, digest: u64) -> &[usize] {
        self.replicas.get(&digest).map_or(&[], Vec::as_slice)
    }

    /// Drops all bookkeeping for a deleted digest, returning the replica
    /// nodes that held it (so the caller can delete those copies too).
    pub fn forget(&mut self, digest: u64) -> Vec<usize> {
        self.hits.remove(&digest);
        self.replicas.remove(&digest).unwrap_or_default()
    }

    /// Drops a removed node from every replica list (its copies are
    /// gone with it).
    pub fn forget_node(&mut self, node_id: usize) {
        for nodes in self.replicas.values_mut() {
            nodes.retain(|&n| n != node_id);
        }
        self.replicas.retain(|_, nodes| !nodes.is_empty());
    }

    /// Number of digests currently holding at least one replica.
    pub fn replicated(&self) -> usize {
        self.replicas.len()
    }

    /// Number of digests with read counts on record.
    pub fn tracked(&self) -> usize {
        self.hits.len()
    }

    /// The configured hot threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosses_the_threshold_exactly_once() {
        let mut hot = HotSet::new(3);
        assert!(!hot.record_read(7));
        assert!(!hot.record_read(7));
        assert!(hot.record_read(7)); // third read: replicate now
                                     // Until a replica is recorded, further reads keep asking.
        assert!(hot.record_read(7));
        hot.add_replica(7, 1);
        assert!(!hot.record_read(7));
        assert_eq!(hot.replicas(7), &[1]);
        assert_eq!(hot.replicas(8), &[] as &[usize]);
        assert_eq!(hot.replicated(), 1);
    }

    #[test]
    fn zero_threshold_disables() {
        let mut hot = HotSet::new(0);
        for _ in 0..10 {
            assert!(!hot.record_read(1));
        }
        assert_eq!(hot.tracked(), 0);
    }

    #[test]
    fn forget_digest_and_node() {
        let mut hot = HotSet::new(1);
        assert!(hot.record_read(1));
        hot.add_replica(1, 2);
        hot.add_replica(1, 3);
        hot.add_replica(1, 2); // dedupes
        assert_eq!(hot.replicas(1), &[2, 3]);
        hot.forget_node(2);
        assert_eq!(hot.replicas(1), &[3]);
        assert_eq!(hot.forget(1), vec![3]);
        assert_eq!(hot.replicated(), 0);
        assert_eq!(hot.forget(1), Vec::<usize>::new());
    }
}
