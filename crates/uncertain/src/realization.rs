//! Realizations of an uncertain set: enumeration and sampling.

use crate::set::UncertainSet;
use rand::Rng;

/// Iterator over every realization `R ∈ Ω` of an uncertain set, yielding
/// `(location indices, prob(R))`.
///
/// The iteration order is odometer order over the per-point location
/// indices. Only use on small sets — `|Ω| = Π zᵢ` — the cost and solver
/// code paths never enumerate; this exists for tests and the brute-force
/// baselines.
pub struct RealizationIter<'a, P> {
    set: &'a UncertainSet<P>,
    idx: Vec<usize>,
    done: bool,
}

impl<'a, P> RealizationIter<'a, P> {
    /// Creates the iterator.
    pub fn new(set: &'a UncertainSet<P>) -> Self {
        Self {
            set,
            idx: vec![0; set.n()],
            done: false,
        }
    }
}

impl<'a, P> Iterator for RealizationIter<'a, P> {
    type Item = (Vec<usize>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let current = self.idx.clone();
        let prob: f64 = self
            .idx
            .iter()
            .enumerate()
            .map(|(i, &j)| self.set[i].probs()[j])
            .product();
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == self.idx.len() {
                self.done = true;
                break;
            }
            self.idx[i] += 1;
            if self.idx[i] < self.set[i].z() {
                break;
            }
            self.idx[i] = 0;
            i += 1;
        }
        Some((current, prob))
    }
}

/// Samples one realization (per-point location indices) from the product
/// distribution using inverse-CDF sampling per point.
pub fn sample_realization<P, R: Rng>(set: &UncertainSet<P>, rng: &mut R) -> Vec<usize> {
    set.iter()
        .map(|up| {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            for (j, &p) in up.probs().iter().enumerate() {
                acc += p;
                if u < acc {
                    return j;
                }
            }
            up.z() - 1 // numeric fallback: u extremely close to 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::UncertainPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_set() -> UncertainSet<f64> {
        UncertainSet::new(vec![
            UncertainPoint::new(vec![0.0, 1.0], vec![0.25, 0.75]).unwrap(),
            UncertainPoint::new(vec![5.0, 6.0, 7.0], vec![0.5, 0.3, 0.2]).unwrap(),
        ])
    }

    #[test]
    fn enumeration_covers_omega_with_total_probability_one() {
        let s = small_set();
        let all: Vec<(Vec<usize>, f64)> = RealizationIter::new(&s).collect();
        assert_eq!(all.len(), 6);
        let total: f64 = all.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Distinct index vectors.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i].0, all[j].0);
            }
        }
    }

    #[test]
    fn enumeration_probabilities_are_products() {
        let s = small_set();
        for (idx, p) in RealizationIter::new(&s) {
            let expect = s[0].probs()[idx[0]] * s[1].probs()[idx[1]];
            assert!((p - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn sampling_matches_marginals() {
        let s = small_set();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let mut count0 = [0usize; 2];
        let mut count1 = [0usize; 3];
        for _ in 0..trials {
            let r = sample_realization(&s, &mut rng);
            count0[r[0]] += 1;
            count1[r[1]] += 1;
        }
        let f = |c: usize| c as f64 / trials as f64;
        assert!((f(count0[0]) - 0.25).abs() < 0.01);
        assert!((f(count1[0]) - 0.5).abs() < 0.01);
        assert!((f(count1[2]) - 0.2).abs() < 0.01);
    }

    #[test]
    fn sampling_certain_points_is_deterministic() {
        let s = UncertainSet::new(vec![
            UncertainPoint::certain(1.0f64),
            UncertainPoint::certain(2.0),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(sample_realization(&s, &mut rng), vec![0, 0]);
        }
    }
}
