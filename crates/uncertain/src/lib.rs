//! # ukc-uncertain — the uncertain-point model
//!
//! The probability substrate of the reproduction. An *uncertain point*
//! ([`UncertainPoint`]) is an independent discrete distribution over a
//! finite set of locations; a collection of them ([`UncertainSet`]) induces
//! the product probability space Ω of *realizations* the paper's expected
//! costs are defined over:
//!
//! ```text
//! Ecost(C)     = Σ_{R∈Ω} prob(R) · max_i d(P̂_i, C)
//! EcostA(C, A) = Σ_{R∈Ω} prob(R) · max_i d(P̂_i, A(P_i))
//! ```
//!
//! Although Ω has `Π zᵢ` elements, the per-point distance variables are
//! independent, so both costs are computable *exactly* in `O(N log N)`
//! (N = total number of locations) by the product-CDF sweep of
//! [`expected_max()`]. That exactness is what lets the experiments certify
//! the paper's approximation factors instead of sampling them.
//!
//! Modules:
//! * [`point`] / [`set`] — the model types with validating constructors.
//! * [`mod@expected_max`] — exact `E[max]` of independent discrete variables.
//! * [`cost`] — exact, enumerated, and Monte-Carlo expected costs for the
//!   assigned and unassigned problem versions.
//! * [`reps`] — the paper's representative constructions: expected point
//!   `P̄` (Lemma 3.1), 1-center `P̃`, and the mode-point baseline.
//! * [`realization`] — realization enumeration and seeded sampling.
//! * [`generators`] — seeded workload generators for every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod expected_max;
pub mod generators;
pub mod point;
pub mod realization;
pub mod reps;
pub mod set;

pub use cost::{
    cost_cdf_assigned, cost_cdf_unassigned, cost_quantile_assigned, cost_quantile_unassigned,
    ecost_assigned, ecost_assigned_enumerate, ecost_assigned_exec, ecost_monte_carlo,
    ecost_unassigned, ecost_unassigned_enumerate, ecost_unassigned_exec, MonteCarloEstimate,
};
pub use expected_max::{
    expected_max, max_cdf, max_quantile, try_expected_max, try_max_cdf, try_max_quantile,
    AtomsError,
};
pub use point::{UncertainPoint, UncertainPointError};
pub use realization::{sample_realization, RealizationIter};
pub use reps::{
    expected_distance, expected_point, expected_spreads, expected_spreads_exec, mode_location,
    one_center_discrete, one_center_euclidean,
};
pub use set::UncertainSet;
