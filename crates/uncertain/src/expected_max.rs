//! Exact expectation of the maximum of independent discrete variables.
//!
//! Given independent random variables `X₁..X_n`, each a finite list of
//! `(value, probability)` atoms, the paper's expected costs are
//! `E[max_i X_i]`. Enumerating the product space is exponential, but the
//! CDF of the max factorizes: `Pr[max ≤ v] = Π_i F_i(v)`, which changes
//! only at the N atom values. Sorting the atoms and sweeping once while
//! maintaining the running product gives the exact expectation in
//! `O(N log N)`:
//!
//! ```text
//! E[max] = Σ_t v_t · (G(v_t) − G(v_{t−1})),   G(v) = Π_i F_i(v).
//! ```
//!
//! The running product is maintained in log space with a zero-factor
//! counter (every `F_i` starts at 0, so the product is structurally 0 until
//! each variable has at least one atom at or below the sweep value); log
//! space both avoids underflow for large `n` and keeps the update drift
//! additive, and the log-sum is rebuilt from scratch every 4096 updates.

/// What is wrong with an atom list handed to [`try_expected_max`] /
/// [`try_max_cdf`] / [`try_max_quantile`].
///
/// The panicking entry points ([`expected_max`] and friends) raise exactly
/// these conditions as messages; callers reachable from untrusted input
/// (extension entry points, servers) should prefer the `try_` variants and
/// dispatch on the variant instead of the panic string.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AtomsError {
    /// The variable list is empty.
    NoVariables,
    /// A variable has no atoms.
    EmptyVariable {
        /// Index of the offending variable.
        index: usize,
    },
    /// An atom value is NaN or infinite.
    NonFiniteValue {
        /// Index of the offending variable.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An atom probability is negative or non-finite.
    BadProbability {
        /// Index of the offending variable.
        index: usize,
        /// The offending probability.
        value: f64,
    },
    /// A variable's probabilities do not sum to 1 within `1e-6`.
    BadSum {
        /// Index of the offending variable.
        index: usize,
        /// The actual sum.
        sum: f64,
    },
    /// The requested quantile is outside `(0, 1]`.
    BadQuantile {
        /// The rejected quantile.
        q: f64,
    },
}

impl std::fmt::Display for AtomsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AtomsError::NoVariables => write!(f, "requires at least one variable"),
            AtomsError::EmptyVariable { index } => write!(f, "variable {index} has no atoms"),
            AtomsError::NonFiniteValue { index, value } => {
                write!(f, "variable {index} has non-finite value {value}")
            }
            AtomsError::BadProbability { index, value } => {
                write!(f, "variable {index} has bad probability {value}")
            }
            AtomsError::BadSum { index, sum } => {
                write!(f, "variable {index} probabilities sum to {sum}")
            }
            AtomsError::BadQuantile { q } => {
                write!(f, "quantile must be in (0, 1], got {q}")
            }
        }
    }
}

impl std::error::Error for AtomsError {}

/// Validates one variable's atom list, returning its probability sum.
fn validate_var(index: usize, var: &[(f64, f64)]) -> Result<f64, AtomsError> {
    if var.is_empty() {
        return Err(AtomsError::EmptyVariable { index });
    }
    let mut sum = 0.0;
    for &(v, p) in var {
        if !v.is_finite() {
            return Err(AtomsError::NonFiniteValue { index, value: v });
        }
        if !(p >= 0.0 && p.is_finite()) {
            return Err(AtomsError::BadProbability { index, value: p });
        }
        sum += p;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(AtomsError::BadSum { index, sum });
    }
    Ok(sum)
}

/// Exact `E[max_i X_i]` for independent discrete `X_i`.
///
/// `vars[i]` lists the atoms `(value, prob)` of `X_i`; each variable's
/// probabilities must sum to 1 within `1e-6` (checked). Values may repeat
/// and need not be sorted. Atoms with probability 0 are ignored.
///
/// ```
/// use ukc_uncertain::expected_max;
/// // Two fair coins taking values {0, 1}: E[max] = 3/4.
/// let coin = vec![(0.0, 0.5), (1.0, 0.5)];
/// let e = expected_max(&[coin.clone(), coin]);
/// assert!((e - 0.75).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics when `vars` is empty, some variable has no atoms, a value is
/// non-finite, a probability is negative, or probabilities do not sum to 1
/// — see [`try_expected_max`] for the non-panicking form.
pub fn expected_max(vars: &[Vec<(f64, f64)>]) -> f64 {
    try_expected_max(vars).unwrap_or_else(|e| panic!("expected_max {e}"))
}

/// [`expected_max`] with malformed atom lists reported as a typed
/// [`AtomsError`] instead of a panic.
pub fn try_expected_max(vars: &[Vec<(f64, f64)>]) -> Result<f64, AtomsError> {
    if vars.is_empty() {
        return Err(AtomsError::NoVariables);
    }
    let n = vars.len();
    let mut atoms: Vec<(f64, usize, f64)> = Vec::new();
    for (i, var) in vars.iter().enumerate() {
        validate_var(i, var)?;
        for &(v, p) in var {
            if p > 0.0 {
                atoms.push((v, i, p));
            }
        }
    }
    atoms.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("validated finite values"));

    // Per-variable running CDF. The product Π Fᵢ(v) underflows f64 for
    // large n (e.g. 1000 factors of 0.1), so it is maintained in log space:
    // log_product = Σ ln cᵢ over the non-zero CDFs, plus a count of the
    // variables whose CDF is still exactly zero. The additive log updates
    // drift slowly; a periodic rebuild cancels it.
    let mut cdf = vec![0.0f64; n];
    let mut log_product = 0.0f64;
    let mut zeros = n;
    let mut prev_g = 0.0f64;
    let mut expectation = 0.0f64;
    let mut updates_since_rebuild = 0usize;

    let mut t = 0;
    while t < atoms.len() {
        let v = atoms[t].0;
        // Apply every atom with this exact value (ties must be grouped so
        // G jumps once per distinct value).
        while t < atoms.len() && atoms[t].0 == v {
            let (_, i, p) = atoms[t];
            let old = cdf[i];
            let new = old + p;
            if old == 0.0 {
                zeros -= 1;
                log_product += new.ln();
            } else {
                log_product += new.ln() - old.ln();
            }
            cdf[i] = new;
            updates_since_rebuild += 1;
            t += 1;
        }
        if updates_since_rebuild >= 4096 {
            // Rebuild the log-sum to cancel additive drift.
            log_product = cdf.iter().filter(|&&c| c > 0.0).map(|c| c.ln()).sum();
            updates_since_rebuild = 0;
        }
        let g = if zeros == 0 {
            log_product.exp().min(1.0)
        } else {
            0.0
        };
        let delta = g - prev_g;
        if delta > 0.0 {
            expectation += v * delta;
        }
        prev_g = g;
    }
    debug_assert!(zeros == 0, "every variable must reach total probability 1");
    Ok(expectation)
}

/// Exact `Pr[max_i X_i ≤ t]` for independent discrete `X_i`: the product
/// of the per-variable CDFs at `t`.
///
/// Input conventions as in [`expected_max`]. Computed in log space, so it
/// stays meaningful for thousands of variables.
///
/// # Panics
/// Panics on invalid inputs, as [`expected_max`] — see [`try_max_cdf`]
/// for the non-panicking form.
pub fn max_cdf(vars: &[Vec<(f64, f64)>], t: f64) -> f64 {
    try_max_cdf(vars, t).unwrap_or_else(|e| panic!("max_cdf {e}"))
}

/// [`max_cdf`] with malformed atom lists reported as a typed
/// [`AtomsError`] instead of a panic.
pub fn try_max_cdf(vars: &[Vec<(f64, f64)>], t: f64) -> Result<f64, AtomsError> {
    if vars.is_empty() {
        return Err(AtomsError::NoVariables);
    }
    let mut log_sum = 0.0f64;
    for (i, var) in vars.iter().enumerate() {
        validate_var(i, var)?;
        let cdf: f64 = var.iter().filter(|(v, _)| *v <= t).map(|(_, p)| p).sum();
        if cdf <= 0.0 {
            return Ok(0.0);
        }
        log_sum += cdf.min(1.0).ln();
    }
    Ok(log_sum.exp().min(1.0))
}

/// Exact `q`-quantile of `max_i X_i`: the smallest atom value `t` with
/// `Pr[max ≤ t] ≥ q`. This is the *value-at-risk* of the k-center cost —
/// "with probability ≥ q, no point exceeds distance `t`" — a robustness
/// summary the expectation alone cannot give.
///
/// Returns the largest atom value when `q = 1` (the worst case is always
/// one of the atoms).
///
/// # Panics
/// Panics when `q ∉ (0, 1]` or inputs are invalid per [`expected_max`] —
/// see [`try_max_quantile`] for the non-panicking form.
pub fn max_quantile(vars: &[Vec<(f64, f64)>], q: f64) -> f64 {
    try_max_quantile(vars, q).unwrap_or_else(|e| panic!("max_quantile {e}"))
}

/// [`max_quantile`] with bad quantiles and malformed atom lists reported
/// as a typed [`AtomsError`] instead of a panic.
pub fn try_max_quantile(vars: &[Vec<(f64, f64)>], q: f64) -> Result<f64, AtomsError> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(AtomsError::BadQuantile { q });
    }
    if vars.is_empty() {
        return Err(AtomsError::NoVariables);
    }
    for (i, var) in vars.iter().enumerate() {
        validate_var(i, var)?;
    }
    let mut values: Vec<f64> = vars
        .iter()
        .flat_map(|var| var.iter().filter(|(_, p)| *p > 0.0).map(|(v, _)| *v))
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("validated finite values"));
    values.dedup();
    // Pr[max <= t] is a step function jumping only at atom values; binary
    // search the smallest value reaching q. Validation already ran, so the
    // inner CDF evaluations cannot fail.
    let cdf_at = |t: f64| try_max_cdf(vars, t).expect("inputs validated above");
    let mut lo = 0usize;
    let mut hi = values.len() - 1;
    if cdf_at(values[hi]) < q {
        // Only possible through rounding; the top value has CDF 1.
        return Ok(values[hi]);
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if cdf_at(values[mid]) >= q {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(values[hi])
}

/// Reference implementation by full product-space enumeration; exponential,
/// for tests only.
///
/// # Panics
/// Panics when the product space exceeds `10^7` realizations, or inputs are
/// invalid per [`expected_max`].
pub fn expected_max_enumerate(vars: &[Vec<(f64, f64)>]) -> f64 {
    assert!(!vars.is_empty(), "requires at least one variable");
    let count: u128 = vars
        .iter()
        .fold(1u128, |a, v| a.saturating_mul(v.len() as u128));
    assert!(count <= 10_000_000, "product space too large to enumerate");
    let mut idx = vec![0usize; vars.len()];
    let mut expectation = 0.0;
    loop {
        let mut prob = 1.0;
        let mut max = f64::NEG_INFINITY;
        for (i, var) in vars.iter().enumerate() {
            let (v, p) = var[idx[i]];
            prob *= p;
            max = max.max(v);
        }
        expectation += prob * max;
        // Odometer.
        let mut i = 0;
        loop {
            if i == vars.len() {
                return expectation;
            }
            idx[i] += 1;
            if idx[i] < vars[i].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_variable_is_plain_expectation() {
        let vars = vec![vec![(1.0, 0.25), (3.0, 0.75)]];
        assert!((expected_max(&vars) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_variables() {
        let vars = vec![vec![(2.0, 1.0)], vec![(5.0, 1.0)], vec![(3.0, 1.0)]];
        assert!((expected_max(&vars) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn two_coin_flips() {
        // X, Y each uniform on {0, 1}: E[max] = 3/4.
        let vars = vec![vec![(0.0, 0.5), (1.0, 0.5)], vec![(0.0, 0.5), (1.0, 0.5)]];
        assert!((expected_max(&vars) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn matches_enumeration_on_random_instances() {
        let mut s: u64 = 0xDEADBEEF;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..50 {
            let n = 1 + trial % 5;
            let vars: Vec<Vec<(f64, f64)>> = (0..n)
                .map(|_| {
                    let z = 1 + (rnd() * 4.0) as usize;
                    let mut ps: Vec<f64> = (0..z).map(|_| rnd() + 0.01).collect();
                    let total: f64 = ps.iter().sum();
                    for p in &mut ps {
                        *p /= total;
                    }
                    ps.iter().map(|&p| (rnd() * 100.0 - 50.0, p)).collect()
                })
                .collect();
            let fast = expected_max(&vars);
            let slow = expected_max_enumerate(&vars);
            assert!(
                (fast - slow).abs() < 1e-9,
                "trial {trial}: fast {fast} slow {slow}"
            );
        }
    }

    #[test]
    fn ties_across_variables() {
        // Both variables can take the same value; grouping must be exact.
        let vars = vec![vec![(1.0, 0.5), (2.0, 0.5)], vec![(1.0, 0.5), (2.0, 0.5)]];
        // E[max] = 2 * (1 - 1/4) + 1 * 1/4 = 1.75.
        assert!((expected_max(&vars) - 1.75).abs() < 1e-12);
        assert!((expected_max_enumerate(&vars) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_atoms_ignored() {
        let vars = vec![vec![(100.0, 0.0), (1.0, 1.0)]];
        assert!((expected_max(&vars) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_values_supported() {
        let vars = vec![vec![(-5.0, 0.5), (-1.0, 0.5)], vec![(-3.0, 1.0)]];
        // max is -1 w.p. 0.5, -3 w.p. 0.5.
        assert!((expected_max(&vars) - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_stochastic_dominance() {
        // Shifting one variable up cannot decrease E[max].
        let base = vec![vec![(0.0, 0.5), (2.0, 0.5)], vec![(1.0, 1.0)]];
        let shifted = vec![vec![(0.5, 0.5), (2.5, 0.5)], vec![(1.0, 1.0)]];
        assert!(expected_max(&shifted) >= expected_max(&base) - 1e-12);
    }

    #[test]
    fn expectation_bounds() {
        // max_i E[X_i] <= E[max] <= sum of positive parts bound: just check
        // the lower bound on a random instance.
        let vars = vec![vec![(0.0, 0.3), (10.0, 0.7)], vec![(5.0, 0.5), (6.0, 0.5)]];
        let e = expected_max(&vars);
        let max_mean = f64::max(0.0 * 0.3 + 10.0 * 0.7, 5.0 * 0.5 + 6.0 * 0.5);
        assert!(e >= max_mean - 1e-12);
        assert!(e <= 10.0 + 1e-12);
    }

    #[test]
    fn large_instance_is_stable() {
        // 1000 variables, 8 atoms each; compare against a coarse Monte-Carlo
        // style bound: E[max] must lie within [max mean, max value].
        let mut s: u64 = 7;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let vars: Vec<Vec<(f64, f64)>> = (0..1000)
            .map(|_| {
                let z = 8;
                let ps: Vec<f64> = (0..z).map(|_| rnd() + 0.01).collect();
                let total: f64 = ps.iter().sum();
                ps.iter().map(|&p| (rnd(), p / total)).collect()
            })
            .collect();
        let e = expected_max(&vars);
        assert!(
            e > 0.9,
            "with 8000 uniform atoms the max should be near 1, got {e}"
        );
        assert!(e <= 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_distribution_panics() {
        let _ = expected_max(&[vec![(1.0, 0.5)]]);
    }

    #[test]
    #[should_panic(expected = "no atoms")]
    fn empty_variable_panics() {
        let _ = expected_max(&[vec![]]);
    }
}
