//! The uncertain point type.

use std::fmt;

/// Absolute tolerance on `Σ pᵢⱼ = 1` accepted by the constructor; inputs
/// within the tolerance are renormalized exactly.
pub const PROB_SUM_TOL: f64 = 1e-6;

/// Errors produced while constructing an [`UncertainPoint`].
#[derive(Clone, Debug, PartialEq)]
pub enum UncertainPointError {
    /// No locations supplied.
    Empty,
    /// Locations and probabilities have different lengths.
    LengthMismatch {
        /// Number of locations.
        locations: usize,
        /// Number of probabilities.
        probs: usize,
    },
    /// A probability is negative or non-finite.
    BadProbability {
        /// Index of the offending probability.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Probabilities do not sum to 1 within [`PROB_SUM_TOL`].
    BadSum {
        /// The actual sum.
        sum: f64,
    },
}

impl fmt::Display for UncertainPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UncertainPointError::Empty => write!(f, "uncertain point needs at least one location"),
            UncertainPointError::LengthMismatch { locations, probs } => {
                write!(f, "{locations} locations but {probs} probabilities")
            }
            UncertainPointError::BadProbability { index, value } => {
                write!(f, "probability {index} is invalid: {value}")
            }
            UncertainPointError::BadSum { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
        }
    }
}

impl std::error::Error for UncertainPointError {}

/// A point whose location is an independent discrete random variable:
/// location `locations[j]` occurs with probability `probs[j]`.
///
/// This is the paper's `P_i` with distribution `D_i` over `z_i` possible
/// locations. The location type `P` is generic: [`ukc_metric::Point`] for
/// Euclidean experiments, `usize` ids for finite metric spaces.
#[derive(Clone, Debug, PartialEq)]
pub struct UncertainPoint<P> {
    locations: Vec<P>,
    probs: Vec<f64>,
}

impl<P> UncertainPoint<P> {
    /// Creates an uncertain point, validating the distribution.
    ///
    /// Probabilities must be non-negative, finite and sum to 1 within
    /// [`PROB_SUM_TOL`]; they are renormalized to sum exactly to 1.
    pub fn new(locations: Vec<P>, probs: Vec<f64>) -> Result<Self, UncertainPointError> {
        if locations.is_empty() {
            return Err(UncertainPointError::Empty);
        }
        if locations.len() != probs.len() {
            return Err(UncertainPointError::LengthMismatch {
                locations: locations.len(),
                probs: probs.len(),
            });
        }
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(UncertainPointError::BadProbability { index: i, value: p });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > PROB_SUM_TOL {
            return Err(UncertainPointError::BadSum { sum });
        }
        let probs = probs.into_iter().map(|p| p / sum).collect();
        Ok(Self { locations, probs })
    }

    /// Creates an uncertain point from an **already-normalized**
    /// distribution, validating but *not* renormalizing.
    ///
    /// [`UncertainPoint::new`]'s renormalizing division is not
    /// bit-idempotent: a normalized distribution's float sum can land an
    /// ulp off 1, and dividing by it again shifts every probability.
    /// Round-tripping a point through `probs()` → `new()` therefore may
    /// not reproduce it bit-for-bit. This constructor is the exact
    /// round-trip leg: it accepts what `probs()` returned (same
    /// validation gates, including the [`PROB_SUM_TOL`] sum check) and
    /// keeps the bits verbatim. Use it when rebuilding a point whose
    /// distribution was already normalized by a prior `new()` — e.g.
    /// recovering persisted state — never for raw external input.
    pub fn from_normalized(
        locations: Vec<P>,
        probs: Vec<f64>,
    ) -> Result<Self, UncertainPointError> {
        if locations.is_empty() {
            return Err(UncertainPointError::Empty);
        }
        if locations.len() != probs.len() {
            return Err(UncertainPointError::LengthMismatch {
                locations: locations.len(),
                probs: probs.len(),
            });
        }
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(UncertainPointError::BadProbability { index: i, value: p });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > PROB_SUM_TOL {
            return Err(UncertainPointError::BadSum { sum });
        }
        Ok(Self { locations, probs })
    }

    /// A certain point: a single location with probability 1.
    pub fn certain(location: P) -> Self {
        Self {
            locations: vec![location],
            probs: vec![1.0],
        }
    }

    /// A uniform distribution over the given locations.
    pub fn uniform(locations: Vec<P>) -> Result<Self, UncertainPointError> {
        if locations.is_empty() {
            return Err(UncertainPointError::Empty);
        }
        let z = locations.len();
        let probs = vec![1.0 / z as f64; z];
        Ok(Self { locations, probs })
    }

    /// Number of possible locations (`z_i`).
    #[inline]
    pub fn z(&self) -> usize {
        self.locations.len()
    }

    /// The possible locations.
    #[inline]
    pub fn locations(&self) -> &[P] {
        &self.locations
    }

    /// The location probabilities (always sum to 1 exactly after
    /// construction-time renormalization).
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Iterates over `(location, probability)` pairs.
    pub fn support(&self) -> impl Iterator<Item = (&P, f64)> {
        self.locations.iter().zip(self.probs.iter().copied())
    }

    /// `true` when the point has a single possible location.
    pub fn is_certain(&self) -> bool {
        self.locations.len() == 1
    }

    /// Maps the locations through `f`, keeping the distribution.
    pub fn map_locations<Q>(&self, f: impl FnMut(&P) -> Q) -> UncertainPoint<Q> {
        UncertainPoint {
            locations: self.locations.iter().map(f).collect(),
            probs: self.probs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let up = UncertainPoint::new(vec![1.0f64, 2.0], vec![0.25, 0.75]).unwrap();
        assert_eq!(up.z(), 2);
        assert_eq!(up.locations(), &[1.0, 2.0]);
        assert_eq!(up.probs(), &[0.25, 0.75]);
        assert!(!up.is_certain());
    }

    #[test]
    fn renormalizes_within_tolerance() {
        let up = UncertainPoint::new(vec![1.0f64, 2.0], vec![0.5, 0.5 + 5e-7]).unwrap();
        let sum: f64 = up.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_distributions() {
        assert_eq!(
            UncertainPoint::<f64>::new(vec![], vec![]),
            Err(UncertainPointError::Empty)
        );
        assert!(matches!(
            UncertainPoint::new(vec![1.0f64], vec![0.5, 0.5]),
            Err(UncertainPointError::LengthMismatch { .. })
        ));
        assert!(matches!(
            UncertainPoint::new(vec![1.0f64, 2.0], vec![-0.1, 1.1]),
            Err(UncertainPointError::BadProbability { index: 0, .. })
        ));
        assert!(matches!(
            UncertainPoint::new(vec![1.0f64, 2.0], vec![0.5, 0.2]),
            Err(UncertainPointError::BadSum { .. })
        ));
        assert!(matches!(
            UncertainPoint::new(vec![1.0f64], vec![f64::NAN]),
            Err(UncertainPointError::BadProbability { .. })
        ));
    }

    #[test]
    fn from_normalized_keeps_bits_verbatim() {
        // Within tolerance but not exactly 1: `new` renormalizes,
        // `from_normalized` must not.
        let probs = vec![0.5, 0.5 + 5e-7];
        let renorm = UncertainPoint::new(vec![1.0f64, 2.0], probs.clone()).unwrap();
        assert_ne!(renorm.probs(), &probs[..]);
        let verbatim = UncertainPoint::from_normalized(vec![1.0f64, 2.0], probs.clone()).unwrap();
        assert_eq!(verbatim.probs(), &probs[..]);
    }

    #[test]
    fn from_normalized_validates_like_new() {
        assert_eq!(
            UncertainPoint::<f64>::from_normalized(vec![], vec![]),
            Err(UncertainPointError::Empty)
        );
        assert!(matches!(
            UncertainPoint::from_normalized(vec![1.0f64], vec![0.5, 0.5]),
            Err(UncertainPointError::LengthMismatch { .. })
        ));
        assert!(matches!(
            UncertainPoint::from_normalized(vec![1.0f64, 2.0], vec![-0.1, 1.1]),
            Err(UncertainPointError::BadProbability { index: 0, .. })
        ));
        assert!(matches!(
            UncertainPoint::from_normalized(vec![1.0f64, 2.0], vec![0.5, 0.2]),
            Err(UncertainPointError::BadSum { .. })
        ));
    }

    #[test]
    fn certain_and_uniform() {
        let c = UncertainPoint::certain(7usize);
        assert!(c.is_certain());
        assert_eq!(c.probs(), &[1.0]);

        let u = UncertainPoint::uniform(vec![1usize, 2, 3, 4]).unwrap();
        assert_eq!(u.probs(), &[0.25, 0.25, 0.25, 0.25]);
        assert!(UncertainPoint::<usize>::uniform(vec![]).is_err());
    }

    #[test]
    fn support_iterates_pairs() {
        let up = UncertainPoint::new(vec!['a', 'b'], vec![0.3, 0.7]).unwrap();
        let pairs: Vec<(char, f64)> = up.support().map(|(l, p)| (*l, p)).collect();
        assert_eq!(pairs, vec![('a', 0.3), ('b', 0.7)]);
    }

    #[test]
    fn map_locations_preserves_probs() {
        let up = UncertainPoint::new(vec![1i32, 2], vec![0.4, 0.6]).unwrap();
        let mapped = up.map_locations(|&x| x * 10);
        assert_eq!(mapped.locations(), &[10, 20]);
        assert_eq!(mapped.probs(), up.probs());
    }
}
