//! Seeded workload generators.
//!
//! The paper has no empirical section, so the reproduction certifies its
//! bounds over randomized workload families chosen to stress different
//! aspects of the algorithms:
//!
//! * [`clustered`] — points whose distributions scatter around `k` ground
//!   truth cluster sites: the motivating "sensor sightings" workload.
//! * [`uniform_box`] — unstructured noise, the hardest case for any
//!   representative construction.
//! * [`ring`] — centers of mass far from the data manifold; designed to
//!   punish the expected-point representative.
//! * [`two_scale`] — each point is tight with probability `1 − q` but
//!   teleports far away with probability `q`: maximizes the gap between
//!   `E[max]` and `max E[...]`, the regime where uncertain k-center differs
//!   most from its deterministic projection.
//! * [`line_instance`] — 1-D instances for the row-8 experiments.
//! * [`on_finite_metric`] — uncertain points over the ids of a finite
//!   metric space (graph/tree closures) for the row-9 experiments.
//!
//! All generators are deterministic in their seed.

use crate::point::UncertainPoint;
use crate::set::UncertainSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ukc_metric::Point;

/// How location probabilities are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbModel {
    /// All `z` locations equally likely.
    Uniform,
    /// Probabilities proportional to iid uniform draws.
    Random,
    /// Geometric decay (ratio 1/2) across locations: one dominant location
    /// with a heavy tail of unlikely ones.
    HeavyTail,
}

/// Draws a probability vector of length `z` under the model.
pub fn draw_probs<R: Rng>(model: ProbModel, z: usize, rng: &mut R) -> Vec<f64> {
    assert!(z > 0, "need at least one location");
    let raw: Vec<f64> = match model {
        ProbModel::Uniform => vec![1.0; z],
        ProbModel::Random => (0..z).map(|_| rng.gen::<f64>() + 1e-3).collect(),
        ProbModel::HeavyTail => (0..z).map(|j| 0.5f64.powi(j as i32)).collect(),
    };
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|p| p / total).collect()
}

fn gaussian_ish<R: Rng>(rng: &mut R) -> f64 {
    // Irwin–Hall sum of 12 uniforms, shifted: mean 0, variance 1. Avoids
    // Box–Muller's trig without changing the workloads' character.
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

fn point_near<R: Rng>(center: &[f64], spread: f64, rng: &mut R) -> Point {
    Point::new(
        center
            .iter()
            .map(|&c| c + spread * gaussian_ish(rng))
            .collect(),
    )
}

/// Clustered workload: `n` uncertain points, each owned by one of
/// `n_clusters` sites placed uniformly in `[0, 100]^dim`; the point's `z`
/// locations scatter with std-dev `loc_spread` around a nominal position
/// drawn with std-dev `cluster_radius` around its site.
#[allow(clippy::too_many_arguments)] // workload knobs are individually meaningful
pub fn clustered(
    seed: u64,
    n: usize,
    z: usize,
    dim: usize,
    n_clusters: usize,
    cluster_radius: f64,
    loc_spread: f64,
    probs: ProbModel,
) -> UncertainSet<Point> {
    assert!(n > 0 && z > 0 && dim > 0 && n_clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let sites: Vec<Vec<f64>> = (0..n_clusters)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 100.0).collect())
        .collect();
    let points = (0..n)
        .map(|i| {
            let site = &sites[i % n_clusters];
            let nominal = point_near(site, cluster_radius, &mut rng);
            let locations: Vec<Point> = (0..z)
                .map(|_| point_near(nominal.coords(), loc_spread, &mut rng))
                .collect();
            let p = draw_probs(probs, z, &mut rng);
            UncertainPoint::new(locations, p).expect("generated distribution is valid")
        })
        .collect();
    UncertainSet::new(points)
}

/// Unstructured workload: nominal positions uniform in `[0, box_size]^dim`,
/// locations scattered with std-dev `loc_spread`.
#[allow(clippy::too_many_arguments)]
pub fn uniform_box(
    seed: u64,
    n: usize,
    z: usize,
    dim: usize,
    box_size: f64,
    loc_spread: f64,
    probs: ProbModel,
) -> UncertainSet<Point> {
    assert!(n > 0 && z > 0 && dim > 0 && box_size > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let nominal: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * box_size).collect();
            let locations: Vec<Point> = (0..z)
                .map(|_| point_near(&nominal, loc_spread, &mut rng))
                .collect();
            let p = draw_probs(probs, z, &mut rng);
            UncertainPoint::new(locations, p).expect("generated distribution is valid")
        })
        .collect();
    UncertainSet::new(points)
}

/// Ring workload (2-D): each point's locations are spread *along* a circle
/// of the given radius, so weighted centroids fall inside the ring, off the
/// data manifold — adversarial for the expected-point representative.
#[allow(clippy::too_many_arguments)]
pub fn ring(
    seed: u64,
    n: usize,
    z: usize,
    radius: f64,
    angular_spread: f64,
    probs: ProbModel,
) -> UncertainSet<Point> {
    assert!(n > 0 && z > 0 && radius > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let theta0 = rng.gen::<f64>() * std::f64::consts::TAU;
            let locations: Vec<Point> = (0..z)
                .map(|_| {
                    let t = theta0 + angular_spread * gaussian_ish(&mut rng);
                    Point::new(vec![radius * t.cos(), radius * t.sin()])
                })
                .collect();
            let p = draw_probs(probs, z, &mut rng);
            UncertainPoint::new(locations, p).expect("generated distribution is valid")
        })
        .collect();
    UncertainSet::new(points)
}

/// Two-scale adversarial workload: with probability `1 − far_prob` the
/// point realizes within `near_spread` of its nominal position; with
/// probability `far_prob` it teleports to a location `far_dist` away.
/// The teleport mass is split evenly over one far location per point.
#[allow(clippy::too_many_arguments)]
pub fn two_scale(
    seed: u64,
    n: usize,
    z: usize,
    dim: usize,
    near_spread: f64,
    far_dist: f64,
    far_prob: f64,
) -> UncertainSet<Point> {
    assert!(n > 0 && z >= 2 && dim > 0);
    assert!((0.0..1.0).contains(&far_prob), "far_prob must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let nominal: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * 100.0).collect();
            let mut locations: Vec<Point> = (0..z - 1)
                .map(|_| point_near(&nominal, near_spread, &mut rng))
                .collect();
            // One far location along a random axis direction.
            let axis = rng.gen_range(0..dim);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let mut far = nominal.clone();
            far[axis] += sign * far_dist;
            locations.push(Point::new(far));
            let near_p = (1.0 - far_prob) / (z - 1) as f64;
            let mut p = vec![near_p; z - 1];
            p.push(far_prob);
            UncertainPoint::new(locations, p).expect("generated distribution is valid")
        })
        .collect();
    UncertainSet::new(points)
}

/// One-dimensional workload for the row-8 experiments: nominal positions
/// uniform on `[0, span]`, locations scattered by `loc_spread`.
#[allow(clippy::too_many_arguments)]
pub fn line_instance(
    seed: u64,
    n: usize,
    z: usize,
    span: f64,
    loc_spread: f64,
    probs: ProbModel,
) -> UncertainSet<Point> {
    uniform_box(seed, n, z, 1, span, loc_spread, probs)
}

/// Uncertain points over the ids `0..n_ids` of a finite metric space: each
/// point draws `z` distinct ids uniformly (with replacement if
/// `z > n_ids`).
pub fn on_finite_metric(
    seed: u64,
    n_ids: usize,
    n: usize,
    z: usize,
    probs: ProbModel,
) -> UncertainSet<usize> {
    assert!(n_ids > 0 && n > 0 && z > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let mut ids: Vec<usize> = Vec::with_capacity(z);
            if z <= n_ids {
                // Sample distinct ids by partial Fisher–Yates.
                let mut pool: Vec<usize> = (0..n_ids).collect();
                for j in 0..z {
                    let pick = rng.gen_range(j..n_ids);
                    pool.swap(j, pick);
                    ids.push(pool[j]);
                }
            } else {
                for _ in 0..z {
                    ids.push(rng.gen_range(0..n_ids));
                }
            }
            let p = draw_probs(probs, z, &mut rng);
            UncertainPoint::new(ids, p).expect("generated distribution is valid")
        })
        .collect();
    UncertainSet::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_in_seed() {
        let a = clustered(5, 10, 3, 2, 2, 5.0, 1.0, ProbModel::Random);
        let b = clustered(5, 10, 3, 2, 2, 5.0, 1.0, ProbModel::Random);
        assert_eq!(a, b);
        let c = clustered(6, 10, 3, 2, 2, 5.0, 1.0, ProbModel::Random);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_are_respected() {
        let s = clustered(1, 12, 4, 3, 2, 5.0, 1.0, ProbModel::Uniform);
        assert_eq!(s.n(), 12);
        assert_eq!(s.max_z(), 4);
        for up in &s {
            assert_eq!(up.z(), 4);
            for loc in up.locations() {
                assert_eq!(loc.dim(), 3);
            }
            let sum: f64 = up.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prob_models_differ() {
        let mut rng = StdRng::seed_from_u64(9);
        let u = draw_probs(ProbModel::Uniform, 4, &mut rng);
        assert_eq!(u, vec![0.25; 4]);
        let h = draw_probs(ProbModel::HeavyTail, 4, &mut rng);
        assert!(h[0] > h[1] && h[1] > h[2] && h[2] > h[3]);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let r = draw_probs(ProbModel::Random, 4, &mut rng);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_scale_has_far_location() {
        let s = two_scale(3, 5, 4, 2, 0.5, 1000.0, 0.1);
        for up in &s {
            // Last location is the far one.
            let far = &up.locations()[3];
            let near = &up.locations()[0];
            assert!(far.dist(near) > 500.0);
            assert!((up.probs()[3] - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn ring_points_on_circle() {
        let s = ring(2, 8, 3, 10.0, 0.1, ProbModel::Uniform);
        for up in &s {
            for loc in up.locations() {
                assert!((loc.norm() - 10.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn line_instance_is_one_dimensional() {
        let s = line_instance(7, 6, 3, 50.0, 2.0, ProbModel::Random);
        for up in &s {
            for loc in up.locations() {
                assert_eq!(loc.dim(), 1);
            }
        }
    }

    #[test]
    fn finite_metric_ids_in_range_and_distinct() {
        let s = on_finite_metric(11, 20, 8, 5, ProbModel::Random);
        for up in &s {
            for &id in up.locations() {
                assert!(id < 20);
            }
            // z <= n_ids, so ids must be distinct.
            let mut ids = up.locations().to_vec();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5);
        }
    }

    #[test]
    fn finite_metric_with_replacement_when_z_large() {
        let s = on_finite_metric(13, 3, 4, 6, ProbModel::Uniform);
        for up in &s {
            assert_eq!(up.z(), 6);
            for &id in up.locations() {
                assert!(id < 3);
            }
        }
    }
}
