//! Expected k-center costs: exact, enumerated, and Monte-Carlo.
//!
//! For fixed centers (and, in the assigned versions, a fixed assignment)
//! the per-point distance variables are independent, so the paper's
//! expected costs are `E[max]` of independent discrete variables and the
//! sweep of [`crate::expected_max()`] computes them exactly. The enumerated
//! and Monte-Carlo versions exist to cross-validate that exactness and to
//! support the sampling baseline.

use crate::expected_max::{expected_max, expected_max_enumerate};
use crate::realization::sample_realization;
use crate::set::UncertainSet;
use rand::Rng;
use ukc_metric::{DistanceOracle, PAR_CHUNK, PAR_MIN_POINTS};
use ukc_pool::Exec;

/// Builds the per-point distance variables for the *assigned* cost: point
/// `i`'s variable takes value `d(Pᵢⱼ, centers[assignment[i]])` with
/// probability `pᵢⱼ`.
fn assigned_vars<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
) -> Vec<Vec<(f64, f64)>> {
    assert_eq!(
        assignment.len(),
        set.n(),
        "assignment must name a center for every point"
    );
    let mut dists = vec![0.0f64; set.max_z()];
    set.iter()
        .zip(assignment.iter())
        .map(|(up, &a)| {
            assert!(a < centers.len(), "assignment index out of range");
            // One batched sweep per point: distances from every location
            // to the assigned center, then zip in the probabilities.
            metric.dists_to_one(up.locations(), &centers[a], &mut dists);
            dists[..up.z()]
                .iter()
                .zip(up.probs().iter())
                .map(|(&d, &p)| (d, p))
                .collect()
        })
        .collect()
}

/// Builds the per-point distance variables for the *unassigned* cost:
/// point `i`'s variable takes value `d(Pᵢⱼ, C) = min_c d(Pᵢⱼ, c)`.
fn unassigned_vars<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
) -> Vec<Vec<(f64, f64)>> {
    assert!(!centers.is_empty(), "need at least one center");
    let mut min_dist = vec![0.0f64; set.max_z()];
    set.iter()
        .map(|up| {
            // Center-major batched sweeps: min over centers per location.
            // Identical values and evaluation count (z·k) as the
            // location-major `dist_to_set` loop — min is order-free.
            min_dist[..up.z()].fill(f64::INFINITY);
            for c in centers {
                metric.dists_to_set_min(up.locations(), c, &mut min_dist);
            }
            min_dist[..up.z()]
                .iter()
                .zip(up.probs().iter())
                .map(|(&d, &p)| (d, p))
                .collect()
        })
        .collect()
}

/// Parallel [`assigned_vars`]: the per-point distance variables are
/// independent, so points are built in [`PAR_CHUNK`]-sized blocks on pool
/// lanes (each with its own scratch buffer). Every variable's arithmetic
/// is identical to the sequential sweep's, so the vector — and the
/// [`expected_max`] over it — is bit-identical for every [`Exec`].
fn assigned_vars_exec<P: Sync, M: DistanceOracle<P> + Sync>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
    exec: Exec<'_>,
) -> Vec<Vec<(f64, f64)>> {
    if !exec.is_parallel() || set.n() < PAR_MIN_POINTS {
        return assigned_vars(set, centers, assignment, metric);
    }
    assert_eq!(
        assignment.len(),
        set.n(),
        "assignment must name a center for every point"
    );
    let mut vars: Vec<Vec<(f64, f64)>> = vec![Vec::new(); set.n()];
    ukc_pool::for_each_slice(exec, &mut vars, PAR_CHUNK, |start, slice| {
        let mut dists = vec![0.0f64; set.max_z()];
        for (j, slot) in slice.iter_mut().enumerate() {
            let up = &set[start + j];
            let a = assignment[start + j];
            assert!(a < centers.len(), "assignment index out of range");
            metric.dists_to_one(up.locations(), &centers[a], &mut dists);
            *slot = dists[..up.z()]
                .iter()
                .zip(up.probs().iter())
                .map(|(&d, &p)| (d, p))
                .collect();
        }
    });
    vars
}

/// Parallel [`unassigned_vars`], block-parallel over points like
/// [`assigned_vars_exec`].
fn unassigned_vars_exec<P: Sync, M: DistanceOracle<P> + Sync>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
    exec: Exec<'_>,
) -> Vec<Vec<(f64, f64)>> {
    if !exec.is_parallel() || set.n() < PAR_MIN_POINTS {
        return unassigned_vars(set, centers, metric);
    }
    assert!(!centers.is_empty(), "need at least one center");
    let mut vars: Vec<Vec<(f64, f64)>> = vec![Vec::new(); set.n()];
    ukc_pool::for_each_slice(exec, &mut vars, PAR_CHUNK, |start, slice| {
        let mut min_dist = vec![0.0f64; set.max_z()];
        for (j, slot) in slice.iter_mut().enumerate() {
            let up = &set[start + j];
            min_dist[..up.z()].fill(f64::INFINITY);
            for c in centers {
                metric.dists_to_set_min(up.locations(), c, &mut min_dist);
            }
            *slot = min_dist[..up.z()]
                .iter()
                .zip(up.probs().iter())
                .map(|(&d, &p)| (d, p))
                .collect();
        }
    });
    vars
}

/// Exact `EcostA(c₁..c_k)` for a fixed assignment:
/// `Σ_R prob(R)·max_i d(P̂ᵢ, A(Pᵢ))`, in O(N log N).
pub fn ecost_assigned<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
) -> f64 {
    expected_max(&assigned_vars(set, centers, assignment, metric))
}

/// [`ecost_assigned`] with an execution context: the per-point variable
/// sweep runs block-parallel on the pool, the `E[max]` fold stays
/// sequential. Bit-identical to [`ecost_assigned`] for every `exec`.
pub fn ecost_assigned_exec<P: Sync, M: DistanceOracle<P> + Sync>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
    exec: Exec<'_>,
) -> f64 {
    expected_max(&assigned_vars_exec(set, centers, assignment, metric, exec))
}

/// Exact unassigned `Ecost(c₁..c_k) = Σ_R prob(R)·max_i d(P̂ᵢ, C)`.
pub fn ecost_unassigned<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
) -> f64 {
    expected_max(&unassigned_vars(set, centers, metric))
}

/// [`ecost_unassigned`] with an execution context (see
/// [`ecost_assigned_exec`]).
pub fn ecost_unassigned_exec<P: Sync, M: DistanceOracle<P> + Sync>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
    exec: Exec<'_>,
) -> f64 {
    expected_max(&unassigned_vars_exec(set, centers, metric, exec))
}

/// Assigned cost by full realization enumeration (tests/baselines only).
///
/// # Panics
/// Panics when `|Ω| > 10^7`.
pub fn ecost_assigned_enumerate<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
) -> f64 {
    expected_max_enumerate(&assigned_vars(set, centers, assignment, metric))
}

/// Unassigned cost by full realization enumeration (tests/baselines only).
///
/// # Panics
/// Panics when `|Ω| > 10^7`.
pub fn ecost_unassigned_enumerate<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
) -> f64 {
    expected_max_enumerate(&unassigned_vars(set, centers, metric))
}

/// Exact `Pr[cost ≤ t]` of an assigned solution: the probability that no
/// point's realized distance to its assigned center exceeds `t`.
pub fn cost_cdf_assigned<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
    t: f64,
) -> f64 {
    crate::expected_max::max_cdf(&assigned_vars(set, centers, assignment, metric), t)
}

/// Exact `q`-quantile (value-at-risk) of an assigned solution's cost: the
/// smallest radius `t` such that with probability at least `q` every point
/// realizes within `t` of its assigned center.
///
/// Complements [`ecost_assigned`]: the expectation summarizes the average
/// realization, the quantile summarizes the tail — uncertain database
/// applications routinely need both.
pub fn cost_quantile_assigned<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: &[usize],
    metric: &M,
    q: f64,
) -> f64 {
    crate::expected_max::max_quantile(&assigned_vars(set, centers, assignment, metric), q)
}

/// Exact `Pr[cost ≤ t]` of an unassigned solution (each realization served
/// by its nearest center).
pub fn cost_cdf_unassigned<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
    t: f64,
) -> f64 {
    crate::expected_max::max_cdf(&unassigned_vars(set, centers, metric), t)
}

/// Exact `q`-quantile of an unassigned solution's cost.
pub fn cost_quantile_unassigned<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: &[P],
    metric: &M,
    q: f64,
) -> f64 {
    crate::expected_max::max_quantile(&unassigned_vars(set, centers, metric), q)
}

/// A Monte-Carlo estimate with its standard error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloEstimate {
    /// Sample mean of the cost.
    pub mean: f64,
    /// Standard error of the mean (`σ̂/√samples`).
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

/// Monte-Carlo estimate of the expected cost. With `assignment = Some(A)`
/// estimates the assigned cost, otherwise the unassigned cost.
///
/// # Panics
/// Panics when `samples == 0` or the assignment is malformed.
pub fn ecost_monte_carlo<P, M: DistanceOracle<P>, R: Rng>(
    set: &UncertainSet<P>,
    centers: &[P],
    assignment: Option<&[usize]>,
    metric: &M,
    samples: usize,
    rng: &mut R,
) -> MonteCarloEstimate {
    assert!(samples > 0, "need at least one sample");
    if let Some(a) = assignment {
        assert_eq!(a.len(), set.n(), "assignment length mismatch");
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..samples {
        let r = sample_realization(set, rng);
        let mut max = 0.0f64;
        for (i, &j) in r.iter().enumerate() {
            let loc = &set[i].locations()[j];
            let d = match assignment {
                Some(a) => metric.dist(loc, &centers[a[i]]),
                None => metric.dist_to_set(loc, centers),
            };
            max = max.max(d);
        }
        sum += max;
        sum_sq += max * max;
    }
    let n = samples as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    MonteCarloEstimate {
        mean,
        std_error: (var / n).sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::UncertainPoint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ukc_metric::{Euclidean, Metric, Point};

    fn set2d() -> UncertainSet<Point> {
        UncertainSet::new(vec![
            UncertainPoint::new(
                vec![Point::new(vec![0.0, 0.0]), Point::new(vec![1.0, 0.0])],
                vec![0.5, 0.5],
            )
            .unwrap(),
            UncertainPoint::new(
                vec![Point::new(vec![5.0, 0.0]), Point::new(vec![6.0, 1.0])],
                vec![0.25, 0.75],
            )
            .unwrap(),
        ])
    }

    #[test]
    fn exact_matches_enumeration_assigned() {
        let s = set2d();
        let centers = vec![Point::new(vec![0.5, 0.0]), Point::new(vec![5.5, 0.5])];
        let assignment = vec![0usize, 1];
        let fast = ecost_assigned(&s, &centers, &assignment, &Euclidean);
        let slow = ecost_assigned_enumerate(&s, &centers, &assignment, &Euclidean);
        assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
    }

    #[test]
    fn exact_matches_enumeration_unassigned() {
        let s = set2d();
        let centers = vec![Point::new(vec![0.5, 0.0]), Point::new(vec![5.5, 0.5])];
        let fast = ecost_unassigned(&s, &centers, &Euclidean);
        let slow = ecost_unassigned_enumerate(&s, &centers, &Euclidean);
        assert!((fast - slow).abs() < 1e-12);
    }

    #[test]
    fn unassigned_never_exceeds_assigned() {
        // The unassigned cost picks the best center per realization point,
        // so it lower-bounds every fixed assignment.
        let s = set2d();
        let centers = vec![Point::new(vec![0.5, 0.0]), Point::new(vec![5.5, 0.5])];
        let un = ecost_unassigned(&s, &centers, &Euclidean);
        for assignment in [[0usize, 0], [0, 1], [1, 0], [1, 1]] {
            let a = ecost_assigned(&s, &centers, &assignment, &Euclidean);
            assert!(un <= a + 1e-12, "assignment {assignment:?}");
        }
    }

    #[test]
    fn certain_points_reduce_to_deterministic_cost() {
        let s = UncertainSet::new(vec![
            UncertainPoint::certain(Point::scalar(0.0)),
            UncertainPoint::certain(Point::scalar(10.0)),
        ]);
        let centers = vec![Point::scalar(1.0)];
        let e = ecost_unassigned(&s, &centers, &Euclidean);
        assert!((e - 9.0).abs() < 1e-12);
        let ea = ecost_assigned(&s, &centers, &[0, 0], &Euclidean);
        assert!((ea - 9.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let s = set2d();
        let centers = vec![Point::new(vec![0.5, 0.0]), Point::new(vec![5.5, 0.5])];
        let exact = ecost_unassigned(&s, &centers, &Euclidean);
        let mut rng = StdRng::seed_from_u64(7);
        let mc = ecost_monte_carlo(&s, &centers, None, &Euclidean, 100_000, &mut rng);
        assert!(
            (mc.mean - exact).abs() < 5.0 * mc.std_error + 1e-3,
            "mc {} vs exact {exact} (se {})",
            mc.mean,
            mc.std_error
        );
    }

    #[test]
    fn monte_carlo_assigned_converges() {
        let s = set2d();
        let centers = vec![Point::new(vec![0.5, 0.0]), Point::new(vec![5.5, 0.5])];
        let assignment = vec![0usize, 1];
        let exact = ecost_assigned(&s, &centers, &assignment, &Euclidean);
        let mut rng = StdRng::seed_from_u64(11);
        let mc = ecost_monte_carlo(
            &s,
            &centers,
            Some(&assignment),
            &Euclidean,
            100_000,
            &mut rng,
        );
        assert!((mc.mean - exact).abs() < 5.0 * mc.std_error + 1e-3);
    }

    #[test]
    fn hand_computed_example() {
        // One point on a line, locations 0 (p=0.5) and 2 (p=0.5), center 0:
        // Ecost = 0.5*0 + 0.5*2 = 1.
        let s = UncertainSet::new(vec![UncertainPoint::new(
            vec![Point::scalar(0.0), Point::scalar(2.0)],
            vec![0.5, 0.5],
        )
        .unwrap()]);
        let c = vec![Point::scalar(0.0)];
        assert!((ecost_unassigned(&s, &c, &Euclidean) - 1.0).abs() < 1e-12);

        // Two iid points, same setup: max is 2 unless both realize at 0:
        // E = 0.75*2 = 1.5.
        let s2 = UncertainSet::new(vec![s[0].clone(), s[0].clone()]);
        assert!((ecost_unassigned(&s2, &c, &Euclidean) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_and_cdf_consistency() {
        let s = set2d();
        let centers = vec![Point::new(vec![0.5, 0.0]), Point::new(vec![5.5, 0.5])];
        let assignment = vec![0usize, 1];
        // CDF at the 1.0-quantile must be 1; CDF is monotone in t.
        let worst = cost_quantile_assigned(&s, &centers, &assignment, &Euclidean, 1.0);
        assert!(
            (cost_cdf_assigned(&s, &centers, &assignment, &Euclidean, worst) - 1.0).abs() < 1e-12
        );
        let med = cost_quantile_assigned(&s, &centers, &assignment, &Euclidean, 0.5);
        assert!(med <= worst + 1e-12);
        assert!(cost_cdf_assigned(&s, &centers, &assignment, &Euclidean, med) >= 0.5);
        // Just below the median the CDF must be < 0.5 (med is the smallest
        // atom reaching it).
        assert!(cost_cdf_assigned(&s, &centers, &assignment, &Euclidean, med - 1e-9) < 0.5);
        // The expectation lies between the 0+ quantile and the worst case.
        let e = ecost_assigned(&s, &centers, &assignment, &Euclidean);
        assert!(e <= worst + 1e-12);
    }

    #[test]
    fn cdf_matches_enumeration() {
        let s = set2d();
        let centers = vec![Point::new(vec![0.5, 0.0]), Point::new(vec![5.5, 0.5])];
        for t in [0.5f64, 1.0, 2.0, 5.0] {
            let fast = cost_cdf_unassigned(&s, &centers, &Euclidean, t);
            // Enumerate: sum prob of realizations whose max distance <= t.
            let mut slow = 0.0;
            for (idx, prob) in crate::realization::RealizationIter::new(&s) {
                let max = idx
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| Euclidean.dist_to_set(&s[i].locations()[j], &centers))
                    .fold(0.0f64, f64::max);
                if max <= t {
                    slow += prob;
                }
            }
            assert!((fast - slow).abs() < 1e-12, "t={t}: {fast} vs {slow}");
        }
    }

    #[test]
    #[should_panic(expected = "assignment index out of range")]
    fn bad_assignment_panics() {
        let s = set2d();
        let centers = vec![Point::new(vec![0.0, 0.0])];
        let _ = ecost_assigned(&s, &centers, &[0, 5], &Euclidean);
    }
}
