//! Collections of uncertain points.

use crate::point::UncertainPoint;
use ukc_metric::{Point, PointId, PointStore};

/// An indexed collection of independent uncertain points — the input of
/// every uncertain k-center instance.
#[derive(Clone, Debug, PartialEq)]
pub struct UncertainSet<P> {
    points: Vec<UncertainPoint<P>>,
}

impl<P> UncertainSet<P> {
    /// Wraps a non-empty vector of uncertain points.
    ///
    /// # Panics
    /// Panics on an empty vector; an instance needs at least one point.
    pub fn new(points: Vec<UncertainPoint<P>>) -> Self {
        assert!(
            !points.is_empty(),
            "UncertainSet requires at least one point"
        );
        Self { points }
    }

    /// Wraps a vector of uncertain points, returning `None` when it is
    /// empty (the non-panicking counterpart of [`UncertainSet::new`]).
    pub fn try_new(points: Vec<UncertainPoint<P>>) -> Option<Self> {
        if points.is_empty() {
            None
        } else {
            Some(Self { points })
        }
    }

    /// Number of uncertain points (`n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// The points.
    #[inline]
    pub fn points(&self) -> &[UncertainPoint<P>] {
        &self.points
    }

    /// The i-th point.
    #[inline]
    pub fn point(&self, i: usize) -> &UncertainPoint<P> {
        &self.points[i]
    }

    /// The largest support size (`z = max zᵢ`).
    pub fn max_z(&self) -> usize {
        self.points.iter().map(|p| p.z()).max().unwrap_or(0)
    }

    /// Total number of locations across all points (`N = Σ zᵢ`).
    pub fn total_locations(&self) -> usize {
        self.points.iter().map(|p| p.z()).sum()
    }

    /// Number of realizations `|Ω| = Π zᵢ`, saturating at `u128::MAX`.
    pub fn realization_count(&self) -> u128 {
        self.points
            .iter()
            .fold(1u128, |acc, p| acc.saturating_mul(p.z() as u128))
    }

    /// Flattens every location of every point, tagged with its owner index
    /// and probability: the *location pool* used as candidate centers in
    /// discrete solvers.
    pub fn all_locations(&self) -> Vec<(usize, &P, f64)> {
        let mut out = Vec::with_capacity(self.total_locations());
        for (i, up) in self.points.iter().enumerate() {
            for (loc, p) in up.support() {
                out.push((i, loc, p));
            }
        }
        out
    }

    /// Clones every location into a flat pool (no owner tags).
    pub fn location_pool(&self) -> Vec<P>
    where
        P: Clone,
    {
        let mut out = Vec::with_capacity(self.total_locations());
        for up in &self.points {
            out.extend(up.locations().iter().cloned());
        }
        out
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, UncertainPoint<P>> {
        self.points.iter()
    }
}

impl UncertainSet<Point> {
    /// Copies every realization coordinate into one contiguous
    /// [`PointStore`] and mirrors the set in id space.
    ///
    /// Locations are pushed point-major in support order, so the id-space
    /// set's `location_pool()` enumerates the same ids in the same order
    /// as [`UncertainSet::location_pool`] enumerates points — discrete
    /// solvers can use either interchangeably. The store can keep growing
    /// afterwards (representatives, candidate centers) without
    /// invalidating the ids already handed out.
    ///
    /// # Panics
    /// Panics when locations have mismatched dimensions (malformed input;
    /// [`crate::UncertainPoint`] is dimension-agnostic by design, the
    /// store is not).
    pub fn indexed_store(&self) -> (PointStore, UncertainSet<PointId>) {
        let dim = self.points[0].locations()[0].dim();
        let mut store = PointStore::with_capacity(dim, self.total_locations());
        let ids = UncertainSet {
            points: self
                .points
                .iter()
                .map(|up| up.map_locations(|loc| store.push_point(loc)))
                .collect(),
        };
        (store, ids)
    }
}

impl<P> std::ops::Index<usize> for UncertainSet<P> {
    type Output = UncertainPoint<P>;

    fn index(&self, i: usize) -> &UncertainPoint<P> {
        &self.points[i]
    }
}

impl<'a, P> IntoIterator for &'a UncertainSet<P> {
    type Item = &'a UncertainPoint<P>;
    type IntoIter = std::slice::Iter<'a, UncertainPoint<P>>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UncertainSet<f64> {
        UncertainSet::new(vec![
            UncertainPoint::new(vec![0.0, 1.0], vec![0.5, 0.5]).unwrap(),
            UncertainPoint::new(vec![5.0, 6.0, 7.0], vec![0.2, 0.3, 0.5]).unwrap(),
            UncertainPoint::certain(10.0),
        ])
    }

    #[test]
    fn counting() {
        let s = sample();
        assert_eq!(s.n(), 3);
        assert_eq!(s.max_z(), 3);
        assert_eq!(s.total_locations(), 6);
        assert_eq!(s.realization_count(), 6);
    }

    #[test]
    fn all_locations_tags_owners() {
        let s = sample();
        let locs = s.all_locations();
        assert_eq!(locs.len(), 6);
        assert_eq!(locs[0], (0, &0.0, 0.5));
        assert_eq!(locs[2], (1, &5.0, 0.2));
        assert_eq!(locs[5], (2, &10.0, 1.0));
    }

    #[test]
    fn location_pool_flattens() {
        let s = sample();
        assert_eq!(s.location_pool(), vec![0.0, 1.0, 5.0, 6.0, 7.0, 10.0]);
    }

    #[test]
    fn realization_count_saturates() {
        let big = UncertainSet::new(
            (0..200)
                .map(|_| UncertainPoint::uniform([0.0f64; 10].to_vec()).unwrap())
                .collect(),
        );
        // 10^200 saturates u128.
        assert_eq!(big.realization_count(), u128::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_set_panics() {
        let _: UncertainSet<f64> = UncertainSet::new(vec![]);
    }

    #[test]
    fn indexing_and_iteration() {
        let s = sample();
        assert_eq!(s[2].locations(), &[10.0]);
        assert_eq!(s.iter().count(), 3);
        assert_eq!((&s).into_iter().count(), 3);
    }
}
