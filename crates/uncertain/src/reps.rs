//! Representative constructions — the heart of the paper's approach.
//!
//! Every algorithm in the paper replaces each uncertain point `Pᵢ` by a
//! *certain* representative and solves deterministic k-center on the
//! representatives:
//!
//! * [`expected_point`] — `P̄ᵢ = Σⱼ pᵢⱼ·Pᵢⱼ`, O(zᵢ); Euclidean only (the
//!   construction uses vector addition, and Lemma 3.1's proof uses the
//!   norm's convexity).
//! * [`one_center_euclidean`] / [`one_center_discrete`] — `P̃ᵢ`, the
//!   1-center of the *single* uncertain point `Pᵢ`. For a single point the
//!   expected cost is `E d(P̂ᵢ, c)`, so `P̃ᵢ` is the expected-distance
//!   minimizer: a Fermat–Weber point (computed by Weiszfeld in Euclidean
//!   space) or a discrete 1-median over a candidate pool in a general
//!   metric space.
//! * [`mode_location`] — the most likely location, used only as a baseline.

use crate::point::UncertainPoint;
use crate::set::UncertainSet;
use ukc_geometry::median::{geometric_median, WeiszfeldOptions};
use ukc_metric::{DistanceOracle, Point, PAR_CHUNK, PAR_MIN_POINTS};
use ukc_pool::Exec;

/// The expected distance `E d(P, q) = Σⱼ pⱼ·d(Pⱼ, q)` from an uncertain
/// point to a fixed location.
pub fn expected_distance<P, M: DistanceOracle<P>>(
    up: &UncertainPoint<P>,
    q: &P,
    metric: &M,
) -> f64 {
    up.support().map(|(loc, p)| p * metric.dist(loc, q)).sum()
}

/// The paper's expected point `P̄ = Σⱼ pⱼ·Pⱼ` (probability-weighted
/// centroid), computable in O(z) — the construction behind Theorems 2.1,
/// 2.2, 2.4 and 2.5.
///
/// # Panics
/// Panics if locations have mismatched dimensions (malformed input).
pub fn expected_point(up: &UncertainPoint<Point>) -> Point {
    Point::weighted_centroid(up.locations(), up.probs())
        .expect("UncertainPoint invariants guarantee a valid centroid")
}

/// The 1-center `P̃` of a single uncertain point in Euclidean space: the
/// weighted Fermat–Weber point of its locations, via Weiszfeld.
pub fn one_center_euclidean(up: &UncertainPoint<Point>) -> Point {
    geometric_median(up.locations(), up.probs(), WeiszfeldOptions::default())
        .expect("UncertainPoint invariants guarantee a valid median")
}

/// The 1-center `P̃` of a single uncertain point in a general metric space,
/// minimized over an explicit candidate pool: returns the index into
/// `candidates` and the achieved expected distance.
///
/// In a finite metric space where centers are drawn from the location pool,
/// passing that pool here yields the exact `P̃`; passing only the point's
/// own locations yields a 2-approximate 1-median (by the triangle
/// inequality), degrading the downstream constants gracefully — both uses
/// appear in the experiments.
///
/// # Panics
/// Panics when `candidates` is empty.
pub fn one_center_discrete<P, M: DistanceOracle<P>>(
    up: &UncertainPoint<P>,
    candidates: &[P],
    metric: &M,
) -> (usize, f64) {
    assert!(!candidates.is_empty(), "need at least one candidate");
    // One batched location sweep per candidate, reusing a scratch buffer;
    // the probability-weighted sum keeps the location order, so values
    // match the per-pair loop exactly.
    let mut dists = vec![0.0f64; up.z()];
    candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            metric.dists_to_one(up.locations(), c, &mut dists);
            let e: f64 = dists.iter().zip(up.probs()).map(|(&d, &p)| p * d).sum();
            (i, e)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
        .expect("non-empty candidates")
}

/// One point's expected spread through the batched oracle sweep: the
/// probability-weighted sum of location distances in support order,
/// identical in value and evaluation count (`z`) to
/// [`expected_distance`].
fn spread_of<P, M: DistanceOracle<P>>(
    up: &UncertainPoint<P>,
    rep: &P,
    metric: &M,
    dists: &mut [f64],
) -> f64 {
    metric.dists_to_one(up.locations(), rep, dists);
    dists[..up.z()]
        .iter()
        .zip(up.probs())
        .map(|(&d, &p)| p * d)
        .sum()
}

/// The per-point *expected spreads* `wᵢ = E d(Pᵢ, repᵢ)` — the additive
/// center weights of the weighted (Apollonius) uncertain solve strategy.
///
/// A certain point sitting exactly on its representative has spread 0, so
/// an all-certain instance carries all-zero weights and the weighted
/// pipeline degenerates to the plain one. Evaluates exactly one distance
/// per realization location (`Σᵢ zᵢ` total), through the batched
/// [`DistanceOracle::dists_to_one`] sweep.
///
/// # Panics
/// Panics when `reps.len() != set.n()`.
pub fn expected_spreads<P, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    reps: &[P],
    metric: &M,
) -> Vec<f64> {
    assert_eq!(reps.len(), set.n(), "one representative per point required");
    let mut dists = vec![0.0f64; set.max_z()];
    set.iter()
        .zip(reps)
        .map(|(up, rep)| spread_of(up, rep, metric, &mut dists))
        .collect()
}

/// [`expected_spreads`] with an execution context: points are swept in
/// block-parallel chunks on the pool (each lane with its own scratch
/// buffer). Per-point arithmetic is identical to the sequential sweep's,
/// so the spreads — and the evaluation count — are bit-identical for
/// every `exec`.
///
/// # Panics
/// Panics when `reps.len() != set.n()`.
pub fn expected_spreads_exec<P: Sync, M: DistanceOracle<P> + Sync>(
    set: &UncertainSet<P>,
    reps: &[P],
    metric: &M,
    exec: Exec<'_>,
) -> Vec<f64> {
    if !exec.is_parallel() || set.n() < PAR_MIN_POINTS {
        return expected_spreads(set, reps, metric);
    }
    assert_eq!(reps.len(), set.n(), "one representative per point required");
    let mut out = vec![0.0f64; set.n()];
    ukc_pool::for_each_slice(exec, &mut out, PAR_CHUNK, |start, slice| {
        let mut dists = vec![0.0f64; set.max_z()];
        for (j, o) in slice.iter_mut().enumerate() {
            *o = spread_of(&set[start + j], &reps[start + j], metric, &mut dists);
        }
    });
    out
}

/// The most likely location (ties broken toward the first), the baseline
/// representative for ablation A2.
pub fn mode_location<P>(up: &UncertainPoint<P>) -> &P {
    let mut idx = 0;
    for (j, &p) in up.probs().iter().enumerate().skip(1) {
        if p > up.probs()[idx] {
            idx = j;
        }
    }
    &up.locations()[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_metric::Euclidean;

    fn up2d() -> UncertainPoint<Point> {
        UncertainPoint::new(
            vec![
                Point::new(vec![0.0, 0.0]),
                Point::new(vec![4.0, 0.0]),
                Point::new(vec![0.0, 4.0]),
            ],
            vec![0.5, 0.25, 0.25],
        )
        .unwrap()
    }

    #[test]
    fn expected_point_is_weighted_centroid() {
        let p = expected_point(&up2d());
        assert_eq!(p.coords(), &[1.0, 1.0]);
    }

    #[test]
    fn expected_distance_hand_computed() {
        let up = up2d();
        let q = Point::new(vec![0.0, 0.0]);
        let e = expected_distance(&up, &q, &Euclidean);
        assert!((e - (0.5 * 0.0 + 0.25 * 4.0 + 0.25 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn one_center_euclidean_minimizes_expected_distance() {
        let up = up2d();
        let c = one_center_euclidean(&up);
        let ec = expected_distance(&up, &c, &Euclidean);
        // Compare against a grid.
        for i in 0..=40 {
            for j in 0..=40 {
                let g = Point::new(vec![i as f64 * 0.1, j as f64 * 0.1]);
                assert!(
                    ec <= expected_distance(&up, &g, &Euclidean) + 1e-6,
                    "beaten at {g:?}"
                );
            }
        }
    }

    #[test]
    fn lemma_3_1_expected_point_lower_bounds_expected_distance() {
        // Lemma 3.1: d(P̄, Q) <= E d(P, Q) for all Q — the key inequality
        // behind every Euclidean theorem. Spot-check on a grid.
        let up = up2d();
        let pbar = expected_point(&up);
        for i in -10..=10 {
            for j in -10..=10 {
                let q = Point::new(vec![i as f64 * 0.7, j as f64 * 0.7]);
                let lhs = pbar.dist(&q);
                let rhs = expected_distance(&up, &q, &Euclidean);
                assert!(lhs <= rhs + 1e-12, "violated at {q:?}: {lhs} > {rhs}");
            }
        }
    }

    #[test]
    fn one_center_discrete_picks_argmin() {
        let up = up2d();
        let candidates = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![4.0, 4.0]),
        ];
        let (idx, val) = one_center_discrete(&up, &candidates, &Euclidean);
        // Verify it is the minimum.
        for (i, c) in candidates.iter().enumerate() {
            let e = expected_distance(&up, c, &Euclidean);
            assert!(val <= e + 1e-12, "candidate {i} beats the winner");
        }
        assert!(idx < candidates.len());
    }

    #[test]
    fn discrete_on_own_locations_is_2_approx_of_continuous() {
        // Folklore: the best input point is a 2-approximate 1-median.
        let up = up2d();
        let cont = one_center_euclidean(&up);
        let cont_val = expected_distance(&up, &cont, &Euclidean);
        let (_, disc_val) = one_center_discrete(&up, up.locations(), &Euclidean);
        assert!(disc_val <= 2.0 * cont_val + 1e-9);
        assert!(cont_val <= disc_val + 1e-9);
    }

    #[test]
    fn mode_location_picks_heaviest() {
        let up = up2d();
        assert_eq!(mode_location(&up).coords(), &[0.0, 0.0]);
        let tie = UncertainPoint::new(vec![1.0f64, 2.0], vec![0.5, 0.5]).unwrap();
        assert_eq!(*mode_location(&tie), 1.0);
    }

    #[test]
    fn expected_spreads_hand_computed_and_zero_for_certain() {
        let set = UncertainSet::new(vec![
            up2d(),
            UncertainPoint::certain(Point::new(vec![7.0, 7.0])),
        ]);
        let reps: Vec<Point> = set.iter().map(expected_point).collect();
        let spreads = expected_spreads(&set, &reps, &Euclidean);
        // Point 0: rep is (1,1); E d = 0.5*sqrt(2) + 0.25*sqrt(10) + 0.25*sqrt(10).
        let expect = 0.5 * 2.0f64.sqrt() + 0.5 * 10.0f64.sqrt();
        assert!((spreads[0] - expect).abs() < 1e-12);
        // A certain point sits on its representative: zero spread.
        assert_eq!(spreads[1], 0.0);
        // The exec variant matches bitwise (sequential fallback path here).
        let par = expected_spreads_exec(&set, &reps, &Euclidean, ukc_pool::Exec::sequential());
        assert_eq!(spreads, par);
    }

    #[test]
    fn certain_point_representatives_coincide() {
        let up = UncertainPoint::certain(Point::new(vec![3.0, -1.0]));
        assert_eq!(expected_point(&up).coords(), &[3.0, -1.0]);
        assert!(one_center_euclidean(&up).dist(&expected_point(&up)) < 1e-9);
        assert_eq!(mode_location(&up).coords(), &[3.0, -1.0]);
    }
}
