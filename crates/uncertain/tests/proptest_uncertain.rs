//! Property tests for the uncertain-point model and cost machinery.

use proptest::prelude::*;
use ukc_metric::{Euclidean, Manhattan, Metric, Point};
use ukc_uncertain::expected_max::expected_max_enumerate;
use ukc_uncertain::generators::{draw_probs, ProbModel};
use ukc_uncertain::{
    ecost_assigned, ecost_assigned_enumerate, ecost_unassigned, ecost_unassigned_enumerate,
    expected_distance, expected_max, expected_point, one_center_euclidean, UncertainPoint,
    UncertainSet,
};

fn uncertain_point() -> impl Strategy<Value = UncertainPoint<Point>> {
    prop::collection::vec(((-50.0f64..50.0, -50.0f64..50.0), 0.05f64..1.0), 1..=4).prop_map(
        |pairs| {
            let total: f64 = pairs.iter().map(|(_, w)| w).sum();
            let locs: Vec<Point> = pairs
                .iter()
                .map(|((x, y), _)| Point::new(vec![*x, *y]))
                .collect();
            let probs: Vec<f64> = pairs.iter().map(|(_, w)| w / total).collect();
            UncertainPoint::new(locs, probs).expect("normalized")
        },
    )
}

fn uncertain_set() -> impl Strategy<Value = UncertainSet<Point>> {
    prop::collection::vec(uncertain_point(), 1..=4).prop_map(UncertainSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Costs agree with full Ω enumeration for both problem versions.
    #[test]
    fn costs_match_enumeration(set in uncertain_set()) {
        let centers = vec![Point::new(vec![-20.0, 0.0]), Point::new(vec![20.0, 5.0])];
        let assignment: Vec<usize> = (0..set.n()).map(|i| i % 2).collect();
        let fast_a = ecost_assigned(&set, &centers, &assignment, &Euclidean);
        let slow_a = ecost_assigned_enumerate(&set, &centers, &assignment, &Euclidean);
        prop_assert!((fast_a - slow_a).abs() < 1e-9);
        let fast_u = ecost_unassigned(&set, &centers, &Euclidean);
        let slow_u = ecost_unassigned_enumerate(&set, &centers, &Euclidean);
        prop_assert!((fast_u - slow_u).abs() < 1e-9);
        prop_assert!(fast_u <= fast_a + 1e-9);
    }

    /// `E[max]` is monotone under adding a variable.
    #[test]
    fn expected_max_monotone_in_variables(
        vars_raw in prop::collection::vec(
            prop::collection::vec((0.0f64..100.0, 0.05f64..1.0), 1..=3), 2..=4),
    ) {
        let vars: Vec<Vec<(f64, f64)>> = vars_raw
            .into_iter()
            .map(|pairs| {
                let total: f64 = pairs.iter().map(|(_, w)| w).sum();
                pairs.into_iter().map(|(v, w)| (v, w / total)).collect()
            })
            .collect();
        let all = expected_max(&vars);
        let fewer = expected_max(&vars[..vars.len() - 1]);
        // Distances are non-negative here, so adding a variable can only
        // raise the max.
        prop_assert!(all >= fewer - 1e-9);
        // And agrees with enumeration.
        prop_assert!((all - expected_max_enumerate(&vars)).abs() < 1e-9);
    }

    /// Lemma 3.1 holds in any normed space, not just L2: check L1 too.
    #[test]
    fn lemma_3_1_in_l1(up in uncertain_point(), qx in -60.0f64..60.0, qy in -60.0f64..60.0) {
        let q = Point::new(vec![qx, qy]);
        let pbar = expected_point(&up);
        prop_assert!(Manhattan.dist(&pbar, &q) <= expected_distance(&up, &q, &Manhattan) + 1e-9);
        prop_assert!(Euclidean.dist(&pbar, &q) <= expected_distance(&up, &q, &Euclidean) + 1e-9);
    }

    /// The Weiszfeld 1-center never loses to the expected point on the
    /// expected-distance objective (P̃ minimizes it by definition).
    #[test]
    fn one_center_beats_expected_point_on_expected_distance(up in uncertain_point()) {
        let p_tilde = one_center_euclidean(&up);
        let p_bar = expected_point(&up);
        let at_tilde = expected_distance(&up, &p_tilde, &Euclidean);
        let at_bar = expected_distance(&up, &p_bar, &Euclidean);
        prop_assert!(at_tilde <= at_bar + 1e-6);
    }

    /// Expected distance is 1-Lipschitz in the query: moving Q by δ moves
    /// E d(P, Q) by at most δ (triangle inequality through the
    /// expectation).
    #[test]
    fn expected_distance_lipschitz(up in uncertain_point(), q1x in -60.0f64..60.0, q2x in -60.0f64..60.0) {
        let q1 = Point::new(vec![q1x, 0.0]);
        let q2 = Point::new(vec![q2x, 0.0]);
        let e1 = expected_distance(&up, &q1, &Euclidean);
        let e2 = expected_distance(&up, &q2, &Euclidean);
        prop_assert!((e1 - e2).abs() <= q1.dist(&q2) + 1e-9);
    }

    /// Generated probability vectors are valid distributions.
    #[test]
    fn draw_probs_is_distribution(z in 1usize..=16, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for model in [ProbModel::Uniform, ProbModel::Random, ProbModel::HeavyTail] {
            let p = draw_probs(model, z, &mut rng);
            prop_assert_eq!(p.len(), z);
            prop_assert!(p.iter().all(|&x| x >= 0.0));
            let s: f64 = p.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    /// Scaling every location by t scales every cost by t (homogeneity).
    #[test]
    fn cost_is_homogeneous(set in uncertain_set(), t in 0.1f64..5.0) {
        let centers = vec![Point::new(vec![3.0, -2.0])];
        let assignment = vec![0usize; set.n()];
        let base = ecost_assigned(&set, &centers, &assignment, &Euclidean);
        let scaled_set = UncertainSet::new(
            set.iter()
                .map(|up| up.map_locations(|p| p.scale(t)))
                .collect(),
        );
        let scaled_centers = vec![centers[0].scale(t)];
        let scaled = ecost_assigned(&scaled_set, &scaled_centers, &assignment, &Euclidean);
        prop_assert!((scaled - t * base).abs() < 1e-6 * (1.0 + scaled.abs()));
    }

    /// Translating everything leaves costs unchanged.
    #[test]
    fn cost_is_translation_invariant(set in uncertain_set(), dx in -30.0f64..30.0, dy in -30.0f64..30.0) {
        let shift = Point::new(vec![dx, dy]);
        let centers = vec![Point::new(vec![1.0, 1.0])];
        let assignment = vec![0usize; set.n()];
        let base = ecost_assigned(&set, &centers, &assignment, &Euclidean);
        let moved_set = UncertainSet::new(
            set.iter()
                .map(|up| up.map_locations(|p| p.add_scaled(1.0, &shift)))
                .collect(),
        );
        let moved_centers = vec![centers[0].add_scaled(1.0, &shift)];
        let moved = ecost_assigned(&moved_set, &moved_centers, &assignment, &Euclidean);
        prop_assert!((moved - base).abs() < 1e-8);
    }
}
