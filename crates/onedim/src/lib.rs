//! # ukc-onedim — exact one-dimensional uncertain k-center
//!
//! Table 1 row 8 of the paper rests on Wang & Zhang \[26\], who solve the
//! one-dimensional uncertain k-center problem under the expected-distance
//! assignment *exactly*: minimize
//!
//! ```text
//! med_cost(c₁..c_k) = max_i  min_j  E d(Pᵢ, cⱼ)
//! ```
//!
//! over center locations on the real line. Each expected-distance function
//! `Eᵢ(x) = Σⱼ pᵢⱼ·|Pᵢⱼ − x|` is convex piecewise-linear
//! ([`ukc_geometry::ConvexPiecewiseLinear`]), so the decision problem
//! "`med_cost ≤ r`?" reduces to stabbing the intervals
//! `{x : Eᵢ(x) ≤ r}` with `k` points — solvable greedily after sorting by
//! right endpoint. The optimum `r*` is found by bisection on `r` to 1e-12
//! relative precision (the substitution for \[26\]'s parametric search is
//! documented in DESIGN.md §3.5; at f64 scale the results are
//! indistinguishable).
//!
//! Combined with the paper's Theorem 2.3, the solver yields a
//! 3-approximation for the *unrestricted* assigned version in `ℝ¹` —
//! certified empirically by experiment E8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod solver;

pub use solver::{feasible_with_k, solve_one_d, OneDimSolution};
