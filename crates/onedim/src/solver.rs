//! The 1-D uncertain k-center solver.

use ukc_geometry::ConvexPiecewiseLinear;
use ukc_metric::{Euclidean, Point};
use ukc_uncertain::{ecost_assigned, UncertainSet};

/// The output of [`solve_one_d`].
#[derive(Clone, Debug)]
pub struct OneDimSolution {
    /// Optimal center locations on the line, sorted ascending.
    pub centers: Vec<f64>,
    /// `assignment[i]` = index into `centers` minimizing point `i`'s
    /// expected distance (the ED assignment).
    pub assignment: Vec<usize>,
    /// The optimal objective `max_i min_j E d(Pᵢ, cⱼ)`.
    pub med_cost: f64,
    /// The exact expected cost `EcostED = E[max_i d(P̂ᵢ, c_{A(i)})]` of the
    /// returned solution under the ED assignment — the quantity Theorem 2.3
    /// bounds against the unrestricted optimum.
    pub ecost_ed: f64,
}

/// Builds the convex expected-distance functions of a 1-D instance.
fn expected_distance_functions(set: &UncertainSet<Point>) -> Vec<ConvexPiecewiseLinear> {
    set.iter()
        .map(|up| {
            let anchors: Vec<f64> = up
                .locations()
                .iter()
                .map(|p| {
                    assert_eq!(p.dim(), 1, "solve_one_d requires 1-D points");
                    p.x()
                })
                .collect();
            ConvexPiecewiseLinear::from_weighted_abs(&anchors, up.probs(), 0.0)
                .expect("UncertainPoint invariants guarantee a valid function")
        })
        .collect()
}

/// Decision procedure: can `k` centers achieve `med_cost ≤ r`? Returns the
/// greedily-chosen stabbing points when feasible.
///
/// Greedy interval stabbing: sort the level-set intervals by right
/// endpoint; whenever an interval is not yet stabbed, place a center at its
/// right endpoint. This uses the minimum possible number of stabbing
/// points, so the answer is exact.
pub fn feasible_with_k(funcs: &[ConvexPiecewiseLinear], r: f64, k: usize) -> Option<Vec<f64>> {
    let mut intervals: Vec<(f64, f64)> = Vec::with_capacity(funcs.len());
    for f in funcs {
        intervals.push(f.level_set(r)?); // empty level set: infeasible
    }
    intervals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite endpoints"));
    let mut centers: Vec<f64> = Vec::new();
    for &(lo, hi) in &intervals {
        if let Some(&last) = centers.last() {
            if last >= lo {
                continue; // already stabbed
            }
        }
        centers.push(hi);
        if centers.len() > k {
            return None;
        }
    }
    Some(centers)
}

/// Exact 1-D uncertain k-center under the expected-distance objective
/// (Wang & Zhang-style; paper Table 1 row 8).
///
/// Runs in `O(zn log zn)` to build and sort the convex functions plus
/// `O(n log n)` per decision and ~100 bisection steps.
///
/// ```
/// use ukc_metric::Point;
/// use ukc_onedim::solve_one_d;
/// use ukc_uncertain::{UncertainPoint, UncertainSet};
///
/// // Two uncertain readings far apart on a line.
/// let set = UncertainSet::new(vec![
///     UncertainPoint::new(vec![Point::scalar(0.0), Point::scalar(2.0)], vec![0.5, 0.5]).unwrap(),
///     UncertainPoint::new(vec![Point::scalar(100.0), Point::scalar(102.0)], vec![0.5, 0.5]).unwrap(),
/// ]);
/// let sol = solve_one_d(&set, 2);
/// assert!((sol.med_cost - 1.0).abs() < 1e-9);   // each point pays its own spread
/// assert_ne!(sol.assignment[0], sol.assignment[1]);
/// ```
///
/// # Panics
/// Panics when `k == 0` or any point is not one-dimensional.
pub fn solve_one_d(set: &UncertainSet<Point>, k: usize) -> OneDimSolution {
    assert!(k > 0, "k must be at least 1");
    let funcs = expected_distance_functions(set);

    // Lower bound: every point pays at least its own 1-median value.
    let lo0 = funcs.iter().map(|f| f.min().1).fold(0.0f64, f64::max);
    // Upper bound: one center at the grand weighted median.
    let (all_anchors, all_weights): (Vec<f64>, Vec<f64>) = {
        let mut a = Vec::new();
        let mut w = Vec::new();
        for up in set {
            for (loc, p) in up.support() {
                a.push(loc.x());
                w.push(p);
            }
        }
        (a, w)
    };
    let grand_median =
        ukc_geometry::weighted_median_1d(&all_anchors, &all_weights).expect("non-empty instance");
    let hi0 = funcs
        .iter()
        .map(|f| f.eval(grand_median))
        .fold(0.0f64, f64::max)
        .max(lo0);

    // Degenerate: the lower bound itself is feasible.
    let (mut lo, mut hi) = (lo0, hi0);
    if feasible_with_k(&funcs, lo, k).is_some() {
        hi = lo;
    }
    for _ in 0..100 {
        if hi - lo <= 1e-12 * hi.abs().max(1.0) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if feasible_with_k(&funcs, mid, k).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let centers = feasible_with_k(&funcs, hi, k).expect("hi is feasible by invariant");

    // ED assignment w.r.t. the expected-distance functions.
    let assignment: Vec<usize> = funcs
        .iter()
        .map(|f| {
            let mut best = 0usize;
            let mut best_v = f64::INFINITY;
            for (j, &c) in centers.iter().enumerate() {
                let v = f.eval(c);
                if v < best_v {
                    best_v = v;
                    best = j;
                }
            }
            best
        })
        .collect();
    let med_cost = funcs
        .iter()
        .zip(assignment.iter())
        .map(|(f, &j)| f.eval(centers[j]))
        .fold(0.0f64, f64::max);
    let center_points: Vec<Point> = centers.iter().map(|&c| Point::scalar(c)).collect();
    let ecost_ed = ecost_assigned(set, &center_points, &assignment, &Euclidean);
    OneDimSolution {
        centers,
        assignment,
        med_cost,
        ecost_ed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_uncertain::generators::{line_instance, ProbModel};
    use ukc_uncertain::UncertainPoint;

    fn up1(locs: &[f64], probs: &[f64]) -> UncertainPoint<Point> {
        UncertainPoint::new(
            locs.iter().map(|&x| Point::scalar(x)).collect(),
            probs.to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn single_certain_point() {
        let set = UncertainSet::new(vec![up1(&[5.0], &[1.0])]);
        let sol = solve_one_d(&set, 1);
        assert!(sol.med_cost.abs() < 1e-9);
        assert!((sol.centers[0] - 5.0).abs() < 1e-9);
        assert!(sol.ecost_ed.abs() < 1e-9);
    }

    #[test]
    fn single_uncertain_point_center_at_weighted_median() {
        let set = UncertainSet::new(vec![up1(&[0.0, 10.0], &[0.5, 0.5])]);
        let sol = solve_one_d(&set, 1);
        // Any x in [0,10] gives E d = 5; med_cost must be 5.
        assert!((sol.med_cost - 5.0).abs() < 1e-9);
        assert!(sol.centers[0] >= -1e-9 && sol.centers[0] <= 10.0 + 1e-9);
    }

    #[test]
    fn two_separated_points_one_center_each() {
        let set = UncertainSet::new(vec![
            up1(&[0.0, 2.0], &[0.5, 0.5]),
            up1(&[100.0, 102.0], &[0.5, 0.5]),
        ]);
        let sol = solve_one_d(&set, 2);
        // Each point gets its own center at its median: cost 1 each.
        assert!((sol.med_cost - 1.0).abs() < 1e-9);
        assert_eq!(sol.assignment.len(), 2);
        assert_ne!(sol.assignment[0], sol.assignment[1]);
    }

    #[test]
    fn med_cost_never_exceeds_ecost() {
        // max_i E[X_i] <= E[max_i X_i] always.
        for seed in 0..6u64 {
            let set = line_instance(seed, 8, 3, 50.0, 2.0, ProbModel::Random);
            let sol = solve_one_d(&set, 2);
            assert!(
                sol.med_cost <= sol.ecost_ed + 1e-9,
                "seed {seed}: med {} ecost {}",
                sol.med_cost,
                sol.ecost_ed
            );
        }
    }

    #[test]
    fn matches_grid_brute_force() {
        // Brute-force med_cost over a fine center grid on small instances;
        // the solver must match (within grid resolution).
        for seed in 0..4u64 {
            let set = line_instance(seed, 4, 3, 10.0, 1.0, ProbModel::Random);
            let funcs = expected_distance_functions(&set);
            let k = 2;
            let sol = solve_one_d(&set, k);
            // Grid search over pairs of centers.
            let grid: Vec<f64> = (0..=240).map(|i| -2.0 + i as f64 * 0.05).collect();
            let mut best = f64::INFINITY;
            for (a_i, &a) in grid.iter().enumerate() {
                for &b in &grid[a_i..] {
                    let cost = funcs
                        .iter()
                        .map(|f| f.eval(a).min(f.eval(b)))
                        .fold(0.0f64, f64::max);
                    best = best.min(cost);
                }
            }
            assert!(
                sol.med_cost <= best + 0.05,
                "seed {seed}: solver {} grid {best}",
                sol.med_cost
            );
            // And the solver cannot beat the true optimum by more than
            // numeric slack — grid is an upper bound on opt, so only check
            // one direction plus feasibility consistency.
            assert!(feasible_with_k(&funcs, sol.med_cost + 1e-9, k).is_some());
            assert!(
                feasible_with_k(&funcs, sol.med_cost * 0.98 - 1e-6, k).is_none()
                    || sol.med_cost < 1e-6
            );
        }
    }

    #[test]
    fn more_centers_never_hurt() {
        let set = line_instance(11, 10, 4, 60.0, 3.0, ProbModel::HeavyTail);
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let sol = solve_one_d(&set, k);
            assert!(
                sol.med_cost <= prev + 1e-9,
                "k={k}: {} > prev {prev}",
                sol.med_cost
            );
            prev = sol.med_cost;
        }
    }

    #[test]
    fn greedy_stabbing_is_minimal() {
        // Feasibility with k = needed must succeed, with k = needed-1 fail.
        let set = UncertainSet::new(vec![
            up1(&[0.0], &[1.0]),
            up1(&[10.0], &[1.0]),
            up1(&[20.0], &[1.0]),
        ]);
        let funcs = expected_distance_functions(&set);
        // r = 1: three separate intervals.
        assert!(feasible_with_k(&funcs, 1.0, 3).is_some());
        assert!(feasible_with_k(&funcs, 1.0, 2).is_none());
        // r = 5: intervals [−5,5], [5,15], [15,25] chain-overlap; two
        // points (5, 15... wait 5 stabs first two? [−5,5] and [5,15] share
        // 5): k=2 suffices.
        assert!(feasible_with_k(&funcs, 5.0, 2).is_some());
    }

    #[test]
    fn assignment_is_ed_optimal() {
        let set = line_instance(3, 6, 3, 40.0, 2.0, ProbModel::Random);
        let sol = solve_one_d(&set, 3);
        let funcs = expected_distance_functions(&set);
        for (i, f) in funcs.iter().enumerate() {
            let assigned = f.eval(sol.centers[sol.assignment[i]]);
            for &c in &sol.centers {
                assert!(assigned <= f.eval(c) + 1e-9, "point {i} misassigned");
            }
        }
    }

    #[test]
    #[should_panic(expected = "1-D points")]
    fn rejects_higher_dimension() {
        let up = UncertainPoint::certain(Point::new(vec![0.0, 1.0]));
        let set = UncertainSet::new(vec![up]);
        let _ = solve_one_d(&set, 1);
    }
}
