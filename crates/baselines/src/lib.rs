//! # ukc-baselines — comparison points for the paper's algorithms
//!
//! The paper compares approximation *factors* against prior work
//! (Cormode–McGregor \[7\], Guha–Munagala \[14\]) rather than
//! implementations. To give the reproduction's experiments both sides of
//! the bracket we provide:
//!
//! * [`heuristics`] — representative-replacement heuristics *without*
//!   guarantees: most-likely-location (mode), all-locations (ignore the
//!   probabilities entirely), and realization-sampling (Cormode–McGregor
//!   flavored: run deterministic k-center on sampled realizations).
//!   These upper-bound what "reasonable but naive" achieves.
//! * [`brute`] — exact optima for small instances: restricted-assigned
//!   optimum under a fixed rule, and the unrestricted optimum over
//!   centers × assignments. These are the denominators that make the
//!   experiments' ratios meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod heuristics;

pub use brute::{
    brute_force_restricted, brute_force_unrestricted, BruteForceLimits, BruteSolution,
};
pub use heuristics::{all_locations_baseline, mode_baseline, sample_union_baseline};
