//! Exact optima for small instances.
//!
//! The experiments' approximation ratios need true optima as denominators
//! wherever the instance is small enough. Two brute-force solvers:
//!
//! * [`brute_force_restricted`] — for a fixed assignment rule, enumerate
//!   all k-subsets of a candidate center pool; the rule determines the
//!   assignment, the exact expected cost scores it.
//! * [`brute_force_unrestricted`] — enumerate k-subsets *and* all `kⁿ`
//!   assignments, with a per-point lower-bound pruning pass that makes
//!   tiny instances (n ≤ 8, k ≤ 3) affordable.
//!
//! Both restrict centers to a discrete candidate pool. For Euclidean
//! instances pass an enriched pool (locations ∪ expected points ∪ grid) —
//! the experiments do — and treat the result as the *discrete* optimum;
//! DESIGN.md §3.4 explains why ratios measured against it remain sound
//! (the discrete optimum upper-bounds the continuous one, so ratios are
//! *under*-estimated by at most the pool density; the per-point
//! lower-bound of `ukc_core::bounds` is used alongside to sandwich).

use ukc_core::assignments::{assign_ed, assign_ep, assign_oc, AssignmentRule};
use ukc_metric::{DistanceOracle, Point};
use ukc_uncertain::{ecost_assigned, expected_distance, one_center_discrete, UncertainSet};

/// Effort limits for the brute-force solvers.
#[derive(Clone, Copy, Debug)]
pub struct BruteForceLimits {
    /// Maximum number of k-subsets of the candidate pool to enumerate.
    pub max_center_sets: u64,
    /// Maximum number of assignments per center set (unrestricted only).
    pub max_assignments: u64,
}

impl Default for BruteForceLimits {
    fn default() -> Self {
        Self {
            max_center_sets: 2_000_000,
            max_assignments: 2_000_000,
        }
    }
}

/// A brute-force optimum.
#[derive(Clone, Debug)]
pub struct BruteSolution<P> {
    /// Optimal centers (subset of the candidate pool).
    pub centers: Vec<P>,
    /// Optimal assignment.
    pub assignment: Vec<usize>,
    /// The optimal expected cost.
    pub ecost: f64,
}

/// Iterates k-subsets of `0..m` lexicographically, invoking `f` on each.
/// Returns `false` when the subset budget is exhausted.
fn for_each_subset(m: usize, k: usize, budget: u64, mut f: impl FnMut(&[usize])) -> bool {
    if k > m {
        return true;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    let mut used: u64 = 0;
    loop {
        used += 1;
        if used > budget {
            return false;
        }
        f(&idx);
        // Next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if idx[i] != i + m - k {
                idx[i] += 1;
                for j in (i + 1)..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Exact optimum of the *restricted assigned* version under `rule`, with
/// centers drawn from `candidates`.
///
/// Returns `None` when the subset budget is exhausted (instance too
/// large). For the `EP`/`OC` rules the representatives needed by the rule
/// are recomputed per call from the set (expected points via the Euclidean
/// structure, 1-centers via the candidate pool).
pub fn brute_force_restricted<M: DistanceOracle<Point>>(
    set: &UncertainSet<Point>,
    candidates: &[Point],
    k: usize,
    rule: AssignmentRule,
    metric: &M,
    limits: BruteForceLimits,
) -> Option<BruteSolution<Point>> {
    assert!(k > 0, "k must be at least 1");
    assert!(!candidates.is_empty(), "need a candidate pool");
    let k = k.min(candidates.len());
    let oc_reps: Option<Vec<Point>> = match rule {
        AssignmentRule::OneCenter => Some(
            set.iter()
                .map(|up| {
                    let (idx, _) = one_center_discrete(up, candidates, metric);
                    candidates[idx].clone()
                })
                .collect(),
        ),
        _ => None,
    };
    let mut best: Option<BruteSolution<Point>> = None;
    let complete = for_each_subset(candidates.len(), k, limits.max_center_sets, |idx| {
        let centers: Vec<Point> = idx.iter().map(|&i| candidates[i].clone()).collect();
        let assignment = match rule {
            AssignmentRule::ExpectedDistance => assign_ed(set, &centers, metric),
            AssignmentRule::ExpectedPoint => assign_ep(set, &centers, metric),
            AssignmentRule::OneCenter => assign_oc(
                set,
                &centers,
                oc_reps.as_ref().expect("computed above"),
                metric,
            ),
        };
        let ecost = ecost_assigned(set, &centers, &assignment, metric);
        if best.as_ref().is_none_or(|b| ecost < b.ecost) {
            best = Some(BruteSolution {
                centers,
                assignment,
                ecost,
            });
        }
    });
    if complete {
        best
    } else {
        None
    }
}

/// Exact optimum of the *unrestricted assigned* version: minimize over
/// center k-subsets of `candidates` *and* all assignments.
///
/// Pruning: for fixed centers, any assignment's cost is at least
/// `max_i min_c E d(Pᵢ, c)` (Lemma 3.2); center sets whose bound already
/// exceeds the incumbent are skipped without assignment enumeration.
///
/// Returns `None` when either budget is exhausted.
pub fn brute_force_unrestricted<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    candidates: &[P],
    k: usize,
    metric: &M,
    limits: BruteForceLimits,
) -> Option<BruteSolution<P>> {
    assert!(k > 0, "k must be at least 1");
    assert!(!candidates.is_empty(), "need a candidate pool");
    let k = k.min(candidates.len());
    let n = set.n();
    let assignments_per_set = (k as u64).checked_pow(n as u32)?;
    if assignments_per_set > limits.max_assignments {
        return None;
    }
    let mut best: Option<BruteSolution<P>> = None;
    let complete = for_each_subset(candidates.len(), k, limits.max_center_sets, |idx| {
        let centers: Vec<P> = idx.iter().map(|&i| candidates[i].clone()).collect();
        // Lemma 3.2 pruning bound.
        let bound = set
            .iter()
            .map(|up| {
                centers
                    .iter()
                    .map(|c| expected_distance(up, c, metric))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0f64, f64::max);
        if let Some(b) = &best {
            if bound >= b.ecost {
                return;
            }
        }
        // Enumerate assignments (odometer over base k).
        let mut a = vec![0usize; n];
        loop {
            let ecost = ecost_assigned(set, &centers, &a, metric);
            if best.as_ref().is_none_or(|b| ecost < b.ecost) {
                best = Some(BruteSolution {
                    centers: centers.clone(),
                    assignment: a.clone(),
                    ecost,
                });
            }
            let mut i = 0;
            loop {
                if i == n {
                    return;
                }
                a[i] += 1;
                if a[i] < k {
                    break;
                }
                a[i] = 0;
                i += 1;
            }
        }
    });
    if complete {
        best
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_core::{Problem, SolverConfig};
    use ukc_metric::Euclidean;
    use ukc_uncertain::generators::{clustered, uniform_box, ProbModel};
    use ukc_uncertain::UncertainPoint;

    fn enriched_pool(set: &UncertainSet<Point>) -> Vec<Point> {
        let mut pool = set.location_pool();
        pool.extend(set.iter().map(ukc_uncertain::expected_point));
        pool
    }

    #[test]
    fn restricted_brute_below_algorithm() {
        for seed in 0..4u64 {
            let set = clustered(seed, 5, 2, 2, 2, 4.0, 1.0, ProbModel::Random);
            let pool = enriched_pool(&set);
            for rule in [
                AssignmentRule::ExpectedDistance,
                AssignmentRule::ExpectedPoint,
            ] {
                let brute = brute_force_restricted(
                    &set,
                    &pool,
                    2,
                    rule,
                    &Euclidean,
                    BruteForceLimits::default(),
                )
                .expect("within budget");
                let alg = Problem::euclidean(set.clone(), 2)
                    .expect("valid instance")
                    .solve(
                        &SolverConfig::builder()
                            .rule(rule)
                            .lower_bound(false)
                            .build()
                            .expect("static test config"),
                    )
                    .expect("euclidean pipeline accepts every rule");
                // The brute optimum over the pool need not beat the
                // algorithm (whose centers are continuous reps), but with
                // the expected points in the pool it must come close; it
                // must never beat the certified lower bound.
                let lb = ukc_core::lower_bound_euclidean(&set, 2);
                assert!(brute.ecost >= lb - 1e-9, "seed {seed}");
                // And the unrestricted optimum can't exceed the ED brute.
                let unres = brute_force_unrestricted(
                    &set,
                    &pool,
                    2,
                    &Euclidean,
                    BruteForceLimits::default(),
                )
                .expect("within budget");
                assert!(unres.ecost <= brute.ecost + 1e-9, "seed {seed}");
                // Algorithm with pool-augmented... just sanity: alg cost is
                // finite and >= lb.
                assert!(alg.ecost >= lb - 1e-9);
            }
        }
    }

    #[test]
    fn unrestricted_beats_every_fixed_rule() {
        let set = uniform_box(7, 4, 2, 2, 10.0, 1.5, ProbModel::Random);
        let pool = enriched_pool(&set);
        let unres =
            brute_force_unrestricted(&set, &pool, 2, &Euclidean, BruteForceLimits::default())
                .unwrap();
        for rule in [
            AssignmentRule::ExpectedDistance,
            AssignmentRule::ExpectedPoint,
        ] {
            let res = brute_force_restricted(
                &set,
                &pool,
                2,
                rule,
                &Euclidean,
                BruteForceLimits::default(),
            )
            .unwrap();
            assert!(unres.ecost <= res.ecost + 1e-9, "rule {rule:?}");
        }
    }

    #[test]
    fn trivial_instance_exact_zero() {
        let set = UncertainSet::new(vec![
            UncertainPoint::certain(Point::scalar(0.0)),
            UncertainPoint::certain(Point::scalar(5.0)),
        ]);
        let pool = set.location_pool();
        let sol = brute_force_unrestricted(&set, &pool, 2, &Euclidean, BruteForceLimits::default())
            .unwrap();
        assert!(sol.ecost.abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let set = uniform_box(3, 10, 2, 2, 10.0, 1.0, ProbModel::Uniform);
        let pool = enriched_pool(&set);
        let limits = BruteForceLimits {
            max_center_sets: 2,
            max_assignments: 1_000_000,
        };
        assert!(brute_force_restricted(
            &set,
            &pool,
            2,
            AssignmentRule::ExpectedDistance,
            &Euclidean,
            limits
        )
        .is_none());
        let limits2 = BruteForceLimits {
            max_center_sets: 1_000_000,
            max_assignments: 1,
        };
        assert!(brute_force_unrestricted(&set, &pool, 2, &Euclidean, limits2).is_none());
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0;
        let complete = for_each_subset(5, 2, 100, |_| count += 1);
        assert!(complete);
        assert_eq!(count, 10);
        // Exhausted budget.
        let mut count2 = 0;
        let complete2 = for_each_subset(5, 2, 3, |_| count2 += 1);
        assert!(!complete2);
    }

    #[test]
    fn unrestricted_optimum_matches_hand_computed() {
        // One point with two distant locations, k=1, pool = locations:
        // best center is either location; cost = 0.5 * 10 = 5 (or weighted).
        let set = UncertainSet::new(vec![UncertainPoint::new(
            vec![Point::scalar(0.0), Point::scalar(10.0)],
            vec![0.3, 0.7],
        )
        .unwrap()]);
        let pool = set.location_pool();
        let sol = brute_force_unrestricted(&set, &pool, 1, &Euclidean, BruteForceLimits::default())
            .unwrap();
        // Center at 10: cost 0.3*10 = 3. Center at 0: 0.7*10 = 7.
        assert!((sol.ecost - 3.0).abs() < 1e-12);
        assert_eq!(sol.centers[0].x(), 10.0);
    }
}
