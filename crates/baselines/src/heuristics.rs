//! Guarantee-free baselines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ukc_core::assignments::{assign_ed, AssignmentRule};
use ukc_kcenter::gonzalez;
use ukc_metric::{DistanceOracle, Euclidean, Point};
use ukc_uncertain::{ecost_assigned, mode_location, sample_realization, UncertainSet};

/// A baseline's output: centers, ED assignment, and exact expected cost.
#[derive(Clone, Debug)]
pub struct BaselineSolution<P> {
    /// Chosen centers.
    pub centers: Vec<P>,
    /// Expected-distance assignment of every point to a center.
    pub assignment: Vec<usize>,
    /// Exact expected cost under that assignment.
    pub ecost: f64,
}

fn finish<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    centers: Vec<P>,
    metric: &M,
) -> BaselineSolution<P> {
    // All baselines use the ED assignment so differences come from the
    // center choice alone.
    let assignment = assign_ed(set, &centers, metric);
    let ecost = ecost_assigned(set, &centers, &assignment, metric);
    BaselineSolution {
        centers,
        assignment,
        ecost,
    }
}

/// Mode baseline: replace every uncertain point by its most likely
/// location, run Gonzalez. Ignores all probability mass except the mode —
/// the ablation-A2 strawman.
pub fn mode_baseline<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    k: usize,
    metric: &M,
) -> BaselineSolution<P> {
    let reps: Vec<P> = set.iter().map(|up| mode_location(up).clone()).collect();
    let sol = gonzalez(&reps, k, metric, 0);
    finish(set, sol.centers, metric)
}

/// All-locations baseline: treat every location of every point as a
/// certain point (ignoring probabilities) and run Gonzalez with `k`
/// centers over the inflated set.
pub fn all_locations_baseline<P: Clone, M: DistanceOracle<P>>(
    set: &UncertainSet<P>,
    k: usize,
    metric: &M,
) -> BaselineSolution<P> {
    let pool = set.location_pool();
    let sol = gonzalez(&pool, k, metric, 0);
    finish(set, sol.centers, metric)
}

/// Realization-sampling baseline (Cormode–McGregor flavored): draw
/// `samples` realizations, pool the realized locations, run Gonzalez on
/// the pool. Probability-aware only through the sampling frequency.
pub fn sample_union_baseline(
    set: &UncertainSet<Point>,
    k: usize,
    samples: usize,
    seed: u64,
) -> BaselineSolution<Point> {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<Point> = Vec::with_capacity(samples * set.n());
    for _ in 0..samples {
        let r = sample_realization(set, &mut rng);
        for (i, &j) in r.iter().enumerate() {
            pool.push(set[i].locations()[j].clone());
        }
    }
    let sol = gonzalez(&pool, k, &Euclidean, 0);
    finish(set, sol.centers, &Euclidean)
}

/// Convenience: the paper's own algorithm with the matching signature, for
/// side-by-side tables (Euclidean, Gonzalez backend).
pub fn paper_baseline(
    set: &UncertainSet<Point>,
    k: usize,
    rule: AssignmentRule,
) -> BaselineSolution<Point> {
    let config = ukc_core::SolverConfig::builder()
        .rule(rule)
        .lower_bound(false)
        .build()
        .expect("static baseline config");
    let sol = ukc_core::Problem::euclidean(set.clone(), k.min(set.n()))
        .expect("baseline instances are valid")
        .solve(&config)
        .expect("euclidean pipeline accepts every rule");
    BaselineSolution {
        centers: sol.centers,
        assignment: sol.assignment,
        ecost: sol.ecost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ukc_uncertain::generators::{clustered, two_scale, ProbModel};

    #[test]
    fn baselines_produce_valid_solutions() {
        let set = clustered(1, 12, 3, 2, 3, 4.0, 1.0, ProbModel::Random);
        for sol in [
            mode_baseline(&set, 3, &Euclidean),
            all_locations_baseline(&set, 3, &Euclidean),
            sample_union_baseline(&set, 3, 20, 7),
            paper_baseline(&set, 3, AssignmentRule::ExpectedPoint),
        ] {
            assert!(sol.centers.len() <= 3 && !sol.centers.is_empty());
            assert_eq!(sol.assignment.len(), 12);
            assert!(sol.ecost.is_finite() && sol.ecost >= 0.0);
        }
    }

    #[test]
    fn baselines_respect_lower_bound() {
        let set = clustered(2, 10, 3, 2, 2, 4.0, 1.0, ProbModel::HeavyTail);
        let lb = ukc_core::lower_bound_euclidean(&set, 2);
        for sol in [
            mode_baseline(&set, 2, &Euclidean),
            all_locations_baseline(&set, 2, &Euclidean),
            sample_union_baseline(&set, 2, 30, 3),
        ] {
            assert!(lb <= sol.ecost + 1e-9);
        }
    }

    #[test]
    fn mode_baseline_hurts_on_two_scale() {
        // On the two-scale workload the mode ignores the teleport mass;
        // the paper's expected-distance machinery accounts for it. The
        // paper algorithm should never be much worse, and typically wins.
        let mut paper_wins = 0;
        for seed in 0..10u64 {
            let set = two_scale(seed, 8, 3, 2, 0.5, 200.0, 0.45);
            let mode = mode_baseline(&set, 2, &Euclidean);
            let paper = paper_baseline(&set, 2, AssignmentRule::ExpectedDistance);
            if paper.ecost <= mode.ecost + 1e-9 {
                paper_wins += 1;
            }
        }
        assert!(paper_wins >= 5, "paper won only {paper_wins}/10");
    }

    #[test]
    fn sampling_baseline_deterministic_in_seed() {
        let set = clustered(4, 8, 3, 2, 2, 4.0, 1.0, ProbModel::Random);
        let a = sample_union_baseline(&set, 2, 10, 99);
        let b = sample_union_baseline(&set, 2, 10, 99);
        assert_eq!(a.ecost, b.ecost);
    }
}
