//! Property tests: every shipped space satisfies the metric axioms, and
//! equivalent constructions agree.

use proptest::prelude::*;
use ukc_metric::validate::check_metric_axioms;
use ukc_metric::{
    Chebyshev, Euclidean, FiniteMetric, Manhattan, Metric, Minkowski, Point, TreeMetric,
    WeightedGraph,
};

fn points(n: std::ops::RangeInclusive<usize>, dim: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim..=dim), n)
        .prop_map(|rows| rows.into_iter().map(Point::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lp_metrics_satisfy_axioms(pts in points(2..=6, 3), p in 1.0f64..5.0) {
        check_metric_axioms(&Euclidean, &pts, 1e-9).unwrap();
        check_metric_axioms(&Manhattan, &pts, 1e-9).unwrap();
        check_metric_axioms(&Chebyshev, &pts, 1e-9).unwrap();
        check_metric_axioms(&Minkowski::new(p), &pts, 1e-8).unwrap();
    }

    #[test]
    fn lp_distances_are_ordered(pts in points(2..=2, 4), p in 1.0f64..6.0) {
        // L∞ ≤ L_p ≤ L_1 for every p ≥ 1.
        let (a, b) = (&pts[0], &pts[1]);
        let linf = Chebyshev.dist(a, b);
        let lp = Minkowski::new(p).dist(a, b);
        let l1 = Manhattan.dist(a, b);
        prop_assert!(linf <= lp + 1e-9);
        prop_assert!(lp <= l1 + 1e-9);
    }

    #[test]
    fn embedding_preserves_distances(pts in points(2..=8, 2)) {
        let fm = FiniteMetric::from_points(&pts, &Euclidean);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                prop_assert!((fm.dist(&i, &j) - Euclidean.dist(&pts[i], &pts[j])).abs() < 1e-12);
            }
        }
        let ids = fm.ids();
        prop_assert!(check_metric_axioms(&fm, &ids, 1e-9).is_ok());
    }

    #[test]
    fn random_tree_matches_graph_closure(
        weights in prop::collection::vec(0.1f64..10.0, 7),
        parents_raw in prop::collection::vec(0usize..100, 7),
    ) {
        // Build a random tree on 8 vertices: vertex v+1 attaches to a
        // random earlier vertex.
        let n = 8;
        let edges: Vec<(usize, usize, f64)> = (1..n)
            .map(|v| (parents_raw[v - 1] % v, v, weights[v - 1]))
            .collect();
        let tm = TreeMetric::from_edges(n, &edges).unwrap();
        let mut g = WeightedGraph::new(n);
        for &(u, v, w) in &edges {
            g.add_edge(u, v, w).unwrap();
        }
        let fm = g.shortest_path_metric().unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((tm.dist(&i, &j) - fm.dist(&i, &j)).abs() < 1e-9,
                    "tree vs closure disagree at ({i},{j})");
            }
        }
    }

    #[test]
    fn graph_closure_never_exceeds_edge_weight(
        extra in prop::collection::vec((0usize..6, 0usize..6, 0.1f64..10.0), 0..=8),
    ) {
        let mut g = WeightedGraph::new(6);
        for v in 0..5 {
            g.add_edge(v, v + 1, 5.0).unwrap();
        }
        for &(u, v, w) in &extra {
            g.add_edge(u, v, w).unwrap();
        }
        let fm = g.shortest_path_metric().unwrap();
        // Closure distance is at most any direct edge weight.
        for &(u, v, w) in &extra {
            prop_assert!(fm.dist(&u, &v) <= w + 1e-12);
        }
        for v in 0..5usize {
            prop_assert!(fm.dist(&v, &(v + 1)) <= 5.0 + 1e-12);
        }
    }

    #[test]
    fn nearest_returns_global_minimum(pts in points(3..=8, 2)) {
        let query = &pts[0];
        let centers = &pts[1..];
        let (idx, d) = Euclidean.nearest(query, centers).unwrap();
        for (i, c) in centers.iter().enumerate() {
            let di = Euclidean.dist(query, c);
            prop_assert!(d <= di + 1e-12, "center {i} beats reported nearest");
        }
        prop_assert!((Euclidean.dist(query, &centers[idx]) - d).abs() < 1e-12);
    }
}
