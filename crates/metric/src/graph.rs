//! Weighted undirected graphs and their shortest-path metrics.
//!
//! Shortest-path closures of connected weighted graphs are the canonical
//! source of "genuinely non-Euclidean" metric spaces for the paper's
//! general-metric experiments (Table 1 row 9).

use crate::FiniteMetric;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Errors produced while building or closing a [`WeightedGraph`].
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// An edge references a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// An edge weight is negative, NaN or infinite.
    BadWeight {
        /// The offending weight.
        weight: f64,
    },
    /// The graph is disconnected, so the shortest-path metric is not finite.
    Disconnected {
        /// A vertex unreachable from vertex 0.
        unreachable: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::BadWeight { weight } => write!(f, "bad edge weight {weight}"),
            GraphError::Disconnected { unreachable } => {
                write!(f, "graph is disconnected: vertex {unreachable} unreachable")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected graph with non-negative edge weights, stored as adjacency
/// lists.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    adj: Vec<Vec<(usize, f64)>>,
}

/// Max-heap entry ordered by *smallest* distance first (reversed ordering).
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap pops the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl WeightedGraph {
    /// Creates a graph with `n` isolated vertices.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "graph must have at least one vertex");
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no vertices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) -> Result<(), GraphError> {
        let n = self.len();
        for &x in &[u, v] {
            if x >= n {
                return Err(GraphError::VertexOutOfRange { vertex: x, n });
            }
        }
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::BadWeight { weight: w });
        }
        self.adj[u].push((v, w));
        if u != v {
            self.adj[v].push((u, w));
        }
        Ok(())
    }

    /// Single-source shortest paths by Dijkstra's algorithm,
    /// O((V + E) log V). Unreachable vertices get `f64::INFINITY`.
    pub fn dijkstra(&self, source: usize) -> Vec<f64> {
        let n = self.len();
        assert!(source < n, "source out of range");
        let mut dist = vec![f64::INFINITY; n];
        dist[source] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            vertex: source,
        });
        while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
            if d > dist[u] {
                continue; // stale entry
            }
            for &(v, w) in &self.adj[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(HeapEntry {
                        dist: nd,
                        vertex: v,
                    });
                }
            }
        }
        dist
    }

    /// The all-pairs shortest-path closure as a [`FiniteMetric`].
    ///
    /// Runs Dijkstra from every vertex, O(V (V + E) log V). Fails when the
    /// graph is disconnected (the metric would be infinite).
    pub fn shortest_path_metric(&self) -> Result<FiniteMetric, GraphError> {
        let n = self.len();
        let mut rows = Vec::with_capacity(n);
        for s in 0..n {
            let d = self.dijkstra(s);
            if let Some(u) = d.iter().position(|x| !x.is_finite()) {
                return Err(GraphError::Disconnected { unreachable: u });
            }
            rows.push(d);
        }
        // Shortest-path distances of an undirected non-negative graph are a
        // metric by construction; skip the O(n^3) re-validation.
        Ok(FiniteMetric::from_matrix_unchecked(rows))
    }

    /// Builds a cycle graph `C_n` with the given uniform edge weight;
    /// a standard non-tree, non-Euclidean metric for tests and experiments.
    pub fn cycle(n: usize, weight: f64) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        let mut g = Self::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, weight)
                .expect("valid cycle edge");
        }
        g
    }

    /// Builds an `r × c` grid graph with the given uniform edge weight.
    pub fn grid(r: usize, c: usize, weight: f64) -> Self {
        assert!(r > 0 && c > 0, "grid must be non-empty");
        let mut g = Self::new(r * c);
        for i in 0..r {
            for j in 0..c {
                let v = i * c + j;
                if j + 1 < c {
                    g.add_edge(v, v + 1, weight).expect("valid grid edge");
                }
                if i + 1 < r {
                    g.add_edge(v, v + c, weight).expect("valid grid edge");
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_metric_axioms;
    use crate::Metric;

    #[test]
    fn dijkstra_on_path() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        g.add_edge(2, 3, 3.0).unwrap();
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn dijkstra_prefers_shortcut() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 1, 1.0).unwrap();
        let d = g.dijkstra(0);
        assert_eq!(d[1], 2.0);
    }

    #[test]
    fn closure_of_cycle_is_a_metric() {
        let g = WeightedGraph::cycle(7, 1.5);
        let fm = g.shortest_path_metric().unwrap();
        assert_eq!(fm.len(), 7);
        // Antipodal distance on C7 is 3 hops.
        assert!((fm.dist(&0, &3) - 4.5).abs() < 1e-12);
        assert!((fm.dist(&0, &4) - 4.5).abs() < 1e-12);
        let ids = fm.ids();
        check_metric_axioms(&fm, &ids, 1e-9).unwrap();
    }

    #[test]
    fn closure_of_grid_is_a_metric() {
        let g = WeightedGraph::grid(3, 4, 2.0);
        let fm = g.shortest_path_metric().unwrap();
        assert_eq!(fm.len(), 12);
        // Manhattan-like distance on the grid.
        assert!((fm.dist(&0, &11) - 2.0 * 5.0).abs() < 1e-12);
        let ids = fm.ids();
        check_metric_axioms(&fm, &ids, 1e-9).unwrap();
    }

    #[test]
    fn disconnected_graph_fails_closure() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0).unwrap();
        let err = g.shortest_path_metric().unwrap_err();
        assert!(matches!(err, GraphError::Disconnected { unreachable: 2 }));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = WeightedGraph::new(2);
        assert!(matches!(
            g.add_edge(0, 5, 1.0),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, -1.0),
            Err(GraphError::BadWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::BadWeight { .. })
        ));
    }

    #[test]
    fn multi_edges_take_minimum() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 5.0).unwrap();
        g.add_edge(0, 1, 2.0).unwrap();
        assert_eq!(g.dijkstra(0)[1], 2.0);
    }
}
