//! Dynamically-dimensioned Euclidean points.

use std::fmt;
use std::ops::{Add, Index, Mul, Sub};

/// Errors produced while constructing a [`Point`] (or pushing raw
/// coordinates into a [`crate::PointStore`]) without panicking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PointError {
    /// No coordinates supplied.
    Empty,
    /// A coordinate is NaN or infinite.
    NonFinite {
        /// Index of the offending coordinate.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The coordinate count disagrees with the expected dimension.
    DimMismatch {
        /// Length found.
        got: usize,
        /// Length expected.
        expected: usize,
    },
    /// A coordinate overflows the store's opt-in f32 mirror (its
    /// magnitude exceeds `f32::MAX`, so the narrowed copy would be
    /// infinite). Raised at ingest so the f32 kernels never see a
    /// non-finite coordinate.
    F32Overflow {
        /// Index of the offending coordinate.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Empty => write!(f, "Point must have at least one coordinate"),
            PointError::NonFinite { index, value } => {
                write!(f, "coordinate {index} is not finite: {value}")
            }
            PointError::DimMismatch { got, expected } => {
                write!(f, "dimension mismatch: {got} vs {expected}")
            }
            PointError::F32Overflow { index, value } => {
                write!(f, "coordinate {index} overflows f32 storage: {value}")
            }
        }
    }
}

impl std::error::Error for PointError {}

/// A point in `ℝ^d` with runtime-determined dimension `d`.
///
/// `Point` is the workhorse coordinate type of the Euclidean experiments.
/// It stores its coordinates in a boxed slice (two words on the stack) and
/// provides the small amount of affine arithmetic the algorithms need:
/// addition, subtraction, scaling, convex combination and norms.
///
/// All binary operations panic when the dimensions disagree; mixing
/// dimensions is a programming error, not an input error.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    /// Panics if `coords` is empty or contains a non-finite value.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(
            !coords.is_empty(),
            "Point must have at least one coordinate"
        );
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "Point coordinates must be finite"
        );
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// Creates a point, returning a typed error instead of panicking on
    /// empty or non-finite coordinates — the constructor for coordinates
    /// that arrive from untrusted input (JSON bodies, CLI files).
    pub fn try_new(coords: Vec<f64>) -> Result<Self, PointError> {
        if coords.is_empty() {
            return Err(PointError::Empty);
        }
        if let Some(index) = coords.iter().position(|c| !c.is_finite()) {
            return Err(PointError::NonFinite {
                index,
                value: coords[index],
            });
        }
        Ok(Self {
            coords: coords.into_boxed_slice(),
        })
    }

    /// The origin of `ℝ^dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn origin(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            coords: vec![0.0; dim].into_boxed_slice(),
        }
    }

    /// A one-dimensional point; convenient for the `ℝ¹` experiments.
    pub fn scalar(x: f64) -> Self {
        Self::new(vec![x])
    }

    /// The dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The first coordinate; the value of a 1-D point.
    #[inline]
    pub fn x(&self) -> f64 {
        self.coords[0]
    }

    /// `self + t * other`, the fused update used by Weiszfeld iterations and
    /// expected-point accumulation.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add_scaled(&self, t: f64, other: &Point) -> Point {
        self.check_dim(other);
        Point {
            coords: self
                .coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a + t * b)
                .collect(),
        }
    }

    /// In-place `self += t * other`; avoids an allocation in hot
    /// accumulation loops.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add_scaled_in_place(&mut self, t: f64, other: &Point) {
        self.check_dim(other);
        for (a, b) in self.coords.iter_mut().zip(other.coords.iter()) {
            *a += t * b;
        }
    }

    /// `t * self`.
    pub fn scale(&self, t: f64) -> Point {
        Point {
            coords: self.coords.iter().map(|a| a * t).collect(),
        }
    }

    /// The convex combination `(1 - t) * self + t * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        self.check_dim(other);
        Point {
            coords: self
                .coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| (1.0 - t) * a + t * b)
                .collect(),
        }
    }

    /// The squared Euclidean norm `‖self‖²`.
    pub fn norm_sq(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum()
    }

    /// The Euclidean norm `‖self‖`.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn dist_sq(&self, other: &Point) -> f64 {
        self.check_dim(other);
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance to `other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// The probability-weighted centroid `Σ wᵢ pᵢ / Σ wᵢ` of a non-empty
    /// weighted point set; this is exactly the paper's *expected point* `P̄`
    /// when the weights are the location probabilities.
    ///
    /// Returns `None` when `points` is empty, the weights do not match the
    /// points, any weight is negative, or the total weight is zero.
    pub fn weighted_centroid(points: &[Point], weights: &[f64]) -> Option<Point> {
        if points.is_empty() || points.len() != weights.len() {
            return None;
        }
        if weights.iter().any(|&w| w.is_nan() || w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut acc = Point::origin(points[0].dim());
        for (p, &w) in points.iter().zip(weights.iter()) {
            acc.add_scaled_in_place(w / total, p);
        }
        Some(acc)
    }

    #[inline]
    fn check_dim(&self, other: &Point) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch: {} vs {}",
            self.dim(),
            other.dim()
        );
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl Add<&Point> for &Point {
    type Output = Point;

    fn add(self, rhs: &Point) -> Point {
        self.add_scaled(1.0, rhs)
    }
}

impl Sub<&Point> for &Point {
    type Output = Point;

    fn sub(self, rhs: &Point) -> Point {
        self.add_scaled(-1.0, rhs)
    }
}

impl Mul<f64> for &Point {
    type Output = Point;

    fn mul(self, rhs: f64) -> Point {
        self.scale(rhs)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Point::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.x(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one coordinate")]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_point_panics() {
        let _ = Point::new(vec![f64::NAN]);
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(vec![1.0, 2.0]);
        let b = Point::new(vec![3.0, -1.0]);
        assert_eq!((&a + &b).coords(), &[4.0, 1.0]);
        assert_eq!((&a - &b).coords(), &[-2.0, 3.0]);
        assert_eq!((&a * 2.0).coords(), &[2.0, 4.0]);
        assert_eq!(a.add_scaled(0.5, &b).coords(), &[2.5, 1.5]);
    }

    #[test]
    fn add_scaled_in_place_matches_add_scaled() {
        let a = Point::new(vec![1.0, 2.0]);
        let b = Point::new(vec![3.0, -1.0]);
        let mut c = a.clone();
        c.add_scaled_in_place(0.25, &b);
        assert_eq!(c, a.add_scaled(0.25, &b));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![2.0, 4.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5).coords(), &[1.0, 2.0]);
    }

    #[test]
    fn norms_and_distance() {
        let a = Point::new(vec![3.0, 4.0]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let b = Point::origin(2);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let a = Point::new(vec![1.0]);
        let b = Point::new(vec![1.0, 2.0]);
        let _ = a.dist(&b);
    }

    #[test]
    fn weighted_centroid_is_expected_point() {
        let pts = vec![Point::new(vec![0.0, 0.0]), Point::new(vec![4.0, 0.0])];
        let c = Point::weighted_centroid(&pts, &[0.25, 0.75]).unwrap();
        assert_eq!(c.coords(), &[3.0, 0.0]);
    }

    #[test]
    fn weighted_centroid_normalizes_weights() {
        let pts = vec![Point::new(vec![0.0]), Point::new(vec![1.0])];
        let c = Point::weighted_centroid(&pts, &[2.0, 2.0]).unwrap();
        assert!((c.x() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_centroid_rejects_bad_input() {
        let pts = vec![Point::new(vec![0.0])];
        assert!(Point::weighted_centroid(&[], &[]).is_none());
        assert!(Point::weighted_centroid(&pts, &[1.0, 2.0]).is_none());
        assert!(Point::weighted_centroid(&pts, &[-1.0]).is_none());
        assert!(Point::weighted_centroid(&pts, &[0.0]).is_none());
    }

    #[test]
    fn scalar_constructor() {
        let p = Point::scalar(7.5);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.x(), 7.5);
    }
}
