//! Metric-axiom validators.
//!
//! The approximation proofs in the paper use nothing but the metric axioms,
//! so every space we feed an experiment must actually satisfy them. These
//! checkers verify the axioms exhaustively over a finite point sample; tests
//! and the [`FiniteMetric`](crate::FiniteMetric) builder call them.

use crate::Metric;

/// A violation of one of the metric axioms, reported with enough context to
/// reproduce it.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricViolation {
    /// `d(a, b) < 0`.
    Negative {
        /// Index of the first point.
        a: usize,
        /// Index of the second point.
        b: usize,
        /// The offending distance.
        dist: f64,
    },
    /// `d(a, a) != 0`.
    NonZeroSelf {
        /// Index of the point.
        a: usize,
        /// The offending self-distance.
        dist: f64,
    },
    /// `d(a, b) != d(b, a)` beyond tolerance.
    Asymmetric {
        /// Index of the first point.
        a: usize,
        /// Index of the second point.
        b: usize,
        /// `d(a, b)`.
        forward: f64,
        /// `d(b, a)`.
        backward: f64,
    },
    /// `d(a, c) > d(a, b) + d(b, c)` beyond tolerance.
    Triangle {
        /// Index of the first endpoint.
        a: usize,
        /// Index of the middle point.
        b: usize,
        /// Index of the second endpoint.
        c: usize,
        /// Amount by which the inequality is violated.
        excess: f64,
    },
    /// A distance is NaN or infinite.
    NonFinite {
        /// Index of the first point.
        a: usize,
        /// Index of the second point.
        b: usize,
    },
}

/// Checks all four metric axioms of `metric` over the sample `points`,
/// returning the first violation found.
///
/// Runs in O(n³) over the sample; intended for tests and small candidate
/// pools, not hot paths. `tol` is the absolute slack allowed for symmetry and
/// triangle checks (floating-point spaces need a small positive value;
/// `1e-9` is a good default for unit-scale data).
pub fn check_metric_axioms<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    tol: f64,
) -> Result<(), MetricViolation> {
    let n = points.len();
    for a in 0..n {
        for b in 0..n {
            let d = metric.dist(&points[a], &points[b]);
            if !d.is_finite() {
                return Err(MetricViolation::NonFinite { a, b });
            }
            if d < 0.0 {
                return Err(MetricViolation::Negative { a, b, dist: d });
            }
            if a == b && d.abs() > tol {
                return Err(MetricViolation::NonZeroSelf { a, dist: d });
            }
            let back = metric.dist(&points[b], &points[a]);
            if (d - back).abs() > tol {
                return Err(MetricViolation::Asymmetric {
                    a,
                    b,
                    forward: d,
                    backward: back,
                });
            }
        }
    }
    for a in 0..n {
        for b in 0..n {
            let dab = metric.dist(&points[a], &points[b]);
            for c in 0..n {
                let dbc = metric.dist(&points[b], &points[c]);
                let dac = metric.dist(&points[a], &points[c]);
                let excess = dac - (dab + dbc);
                if excess > tol {
                    return Err(MetricViolation::Triangle { a, b, c, excess });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chebyshev, Euclidean, Manhattan, Minkowski, Point};

    fn sample() -> Vec<Point> {
        vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.5]),
            Point::new(vec![-2.0, 3.0]),
            Point::new(vec![4.0, -1.0]),
            Point::new(vec![0.1, 0.1]),
        ]
    }

    #[test]
    fn lp_metrics_satisfy_axioms() {
        let pts = sample();
        check_metric_axioms(&Euclidean, &pts, 1e-9).unwrap();
        check_metric_axioms(&Manhattan, &pts, 1e-9).unwrap();
        check_metric_axioms(&Chebyshev, &pts, 1e-9).unwrap();
        check_metric_axioms(&Minkowski::new(3.0), &pts, 1e-9).unwrap();
    }

    /// A deliberately broken "metric" to exercise the violation paths.
    struct Broken(u8);

    impl Metric<usize> for Broken {
        fn dist(&self, a: &usize, b: &usize) -> f64 {
            match self.0 {
                0 => -1.0,                      // negative
                1 => 1.0,                       // d(a,a) != 0
                2 => (*a as f64) - (*b as f64), // asymmetric (and negative)
                3 => {
                    // triangle violation: d(0,2)=10, d(0,1)=d(1,2)=1
                    if (*a, *b) == (0, 2) || (*a, *b) == (2, 0) {
                        10.0
                    } else if a == b {
                        0.0
                    } else {
                        1.0
                    }
                }
                _ => f64::NAN,
            }
        }
    }

    #[test]
    fn detects_negative() {
        let err = check_metric_axioms(&Broken(0), &[0usize, 1], 1e-9).unwrap_err();
        assert!(matches!(err, MetricViolation::Negative { .. }));
    }

    #[test]
    fn detects_nonzero_self() {
        let err = check_metric_axioms(&Broken(1), &[0usize], 1e-9).unwrap_err();
        assert!(matches!(err, MetricViolation::NonZeroSelf { .. }));
    }

    #[test]
    fn detects_triangle_violation() {
        let err = check_metric_axioms(&Broken(3), &[0usize, 1, 2], 1e-9).unwrap_err();
        assert!(matches!(err, MetricViolation::Triangle { .. }));
    }

    #[test]
    fn detects_non_finite() {
        let err = check_metric_axioms(&Broken(9), &[0usize, 1], 1e-9).unwrap_err();
        assert!(matches!(err, MetricViolation::NonFinite { .. }));
    }
}
