//! Weighted tree metrics with O(log n) distance queries.
//!
//! Tree metrics appear throughout the deterministic k-center literature the
//! paper builds on ([5], [12], [23] in its bibliography); we provide them as
//! a third family of general metric spaces for the row-9 experiments.

use crate::Metric;
use std::fmt;

/// Errors produced while building a [`TreeMetric`].
#[derive(Clone, Debug, PartialEq)]
pub enum TreeError {
    /// The number of edges is not `n - 1`.
    WrongEdgeCount {
        /// Number of vertices.
        n: usize,
        /// Number of edges supplied.
        edges: usize,
    },
    /// An edge references a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
    },
    /// An edge weight is negative, NaN or infinite.
    BadWeight {
        /// The offending weight.
        weight: f64,
    },
    /// The edge set contains a cycle / leaves the graph disconnected.
    NotATree,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::WrongEdgeCount { n, edges } => {
                write!(
                    f,
                    "a tree on {n} vertices needs {} edges, got {edges}",
                    n - 1
                )
            }
            TreeError::VertexOutOfRange { vertex } => write!(f, "vertex {vertex} out of range"),
            TreeError::BadWeight { weight } => write!(f, "bad edge weight {weight}"),
            TreeError::NotATree => write!(f, "edge set is not a tree"),
        }
    }
}

impl std::error::Error for TreeError {}

/// The shortest-path metric of a weighted tree, answering distance queries
/// in O(log n) via binary-lifting lowest-common-ancestor.
///
/// `dist(u, v) = depth(u) + depth(v) − 2·depth(lca(u, v))` where `depth` is
/// the weighted root distance.
#[derive(Clone, Debug)]
pub struct TreeMetric {
    /// up[j][v] = 2^j-th ancestor of v (root's ancestor is itself).
    up: Vec<Vec<usize>>,
    level: Vec<usize>,
    depth_w: Vec<f64>,
}

impl TreeMetric {
    /// Builds the metric from an edge list `(u, v, w)` on vertices `0..n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self, TreeError> {
        if n == 0 {
            return Err(TreeError::NotATree);
        }
        if edges.len() != n - 1 {
            return Err(TreeError::WrongEdgeCount {
                n,
                edges: edges.len(),
            });
        }
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            for &x in &[u, v] {
                if x >= n {
                    return Err(TreeError::VertexOutOfRange { vertex: x });
                }
            }
            if !w.is_finite() || w < 0.0 {
                return Err(TreeError::BadWeight { weight: w });
            }
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
        // Iterative DFS from root 0, establishing parents / depths.
        let mut parent = vec![usize::MAX; n];
        let mut level = vec![0usize; n];
        let mut depth_w = vec![0.0f64; n];
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        parent[0] = 0;
        while let Some(u) = stack.pop() {
            for &(v, w) in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = u;
                    level[v] = level[u] + 1;
                    depth_w[v] = depth_w[u] + w;
                    stack.push(v);
                }
            }
        }
        if visited.iter().any(|&x| !x) {
            return Err(TreeError::NotATree);
        }
        // Binary lifting table.
        let log = usize::BITS as usize - n.leading_zeros() as usize;
        let log = log.max(1);
        let mut up = vec![parent];
        for j in 1..log {
            let prev = &up[j - 1];
            let mut row = vec![0usize; n];
            for v in 0..n {
                row[v] = prev[prev[v]];
            }
            up.push(row);
        }
        Ok(Self { up, level, depth_w })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// `true` when the tree has no vertices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    /// All vertex ids, `0..n`.
    pub fn ids(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn lca(&self, mut u: usize, mut v: usize) -> usize {
        if self.level[u] < self.level[v] {
            std::mem::swap(&mut u, &mut v);
        }
        let mut diff = self.level[u] - self.level[v];
        let mut j = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                u = self.up[j][u];
            }
            diff >>= 1;
            j += 1;
        }
        if u == v {
            return u;
        }
        for j in (0..self.up.len()).rev() {
            if self.up[j][u] != self.up[j][v] {
                u = self.up[j][u];
                v = self.up[j][v];
            }
        }
        self.up[0][u]
    }
}

impl Metric<usize> for TreeMetric {
    fn dist(&self, a: &usize, b: &usize) -> f64 {
        assert!(*a < self.len() && *b < self.len(), "vertex id out of range");
        let l = self.lca(*a, *b);
        self.depth_w[*a] + self.depth_w[*b] - 2.0 * self.depth_w[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_metric_axioms;

    /// A small caterpillar tree:
    ///
    /// ```text
    ///      0
    ///     / \
    ///    1   2
    ///   /|    \
    ///  3 4     5
    /// ```
    fn caterpillar() -> TreeMetric {
        TreeMetric::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 3, 3.0),
                (1, 4, 4.0),
                (2, 5, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn distances_match_paths() {
        let t = caterpillar();
        assert_eq!(t.dist(&3, &4), 7.0); // 3-1-4
        assert_eq!(t.dist(&3, &5), 11.0); // 3-1-0-2-5
        assert_eq!(t.dist(&0, &5), 7.0);
        assert_eq!(t.dist(&2, &2), 0.0);
    }

    #[test]
    fn lca_is_correct() {
        let t = caterpillar();
        assert_eq!(t.lca(3, 4), 1);
        assert_eq!(t.lca(3, 5), 0);
        assert_eq!(t.lca(1, 3), 1);
        assert_eq!(t.lca(0, 0), 0);
    }

    #[test]
    fn tree_metric_satisfies_axioms() {
        let t = caterpillar();
        let ids = t.ids();
        check_metric_axioms(&t, &ids, 1e-9).unwrap();
    }

    #[test]
    fn matches_graph_closure() {
        use crate::WeightedGraph;
        let edges = [(0, 1, 1.5), (1, 2, 2.5), (1, 3, 0.5), (3, 4, 4.0)];
        let t = TreeMetric::from_edges(5, &edges).unwrap();
        let mut g = WeightedGraph::new(5);
        for &(u, v, w) in &edges {
            g.add_edge(u, v, w).unwrap();
        }
        let fm = g.shortest_path_metric().unwrap();
        for i in 0..5usize {
            for j in 0..5usize {
                assert!((t.dist(&i, &j) - fm.dist(&i, &j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_cycle() {
        let err = TreeMetric::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        assert!(matches!(err, Err(TreeError::WrongEdgeCount { .. })));
        // Right edge count but with a cycle (vertex 3 disconnected).
        let err = TreeMetric::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        assert_eq!(err.unwrap_err(), TreeError::NotATree);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            TreeMetric::from_edges(2, &[(0, 9, 1.0)]),
            Err(TreeError::VertexOutOfRange { vertex: 9 })
        ));
        assert!(matches!(
            TreeMetric::from_edges(2, &[(0, 1, -1.0)]),
            Err(TreeError::BadWeight { .. })
        ));
    }

    #[test]
    fn single_vertex_tree() {
        let t = TreeMetric::from_edges(1, &[]).unwrap();
        assert_eq!(t.dist(&0, &0), 0.0);
        assert_eq!(t.len(), 1);
    }
}
