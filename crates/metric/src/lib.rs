//! # ukc-metric — metric-space substrate
//!
//! The uncertain k-center algorithms of Alipour & Jafari (PODS 2018) are
//! parameterized over an arbitrary metric space `(X, d)`. This crate provides
//! the metric abstraction and a family of concrete spaces used throughout the
//! reproduction:
//!
//! * [`Point`] — a dynamically-dimensioned Euclidean vector, the point type
//!   for all `ℝ^d` experiments.
//! * [`Euclidean`], [`Manhattan`], [`Chebyshev`], [`Minkowski`] — `L_p`
//!   metrics over [`Point`].
//! * [`FiniteMetric`] — an explicit `n × n` distance matrix over point ids,
//!   the "any metric space" of the paper's Table 1 row 9.
//! * [`WeightedGraph`] — a weighted undirected graph whose shortest-path
//!   closure yields a [`FiniteMetric`]; a convenient generator of
//!   non-Euclidean metrics.
//! * [`TreeMetric`] — the shortest-path metric of a weighted tree with
//!   O(log n) distance queries via binary-lifting LCA.
//! * [`validate`] — symmetry / identity / triangle-inequality checkers used
//!   by tests and by the [`FiniteMetric`] builder.
//!
//! The central trait is [`Metric`]:
//!
//! ```
//! use ukc_metric::{Metric, Euclidean, Point};
//! let m = Euclidean;
//! let a = Point::new(vec![0.0, 0.0]);
//! let b = Point::new(vec![3.0, 4.0]);
//! assert_eq!(m.dist(&a, &b), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod finite;
mod graph;
mod lp;
mod point;
mod store;
mod tree;
pub mod validate;

pub use batch::{DistCounter, Kernel, PAR_CHUNK, PAR_MIN_POINTS};
pub use finite::{FiniteMetric, FiniteMetricError};
pub use graph::{GraphError, WeightedGraph};
pub use lp::{Chebyshev, Euclidean, Manhattan, Minkowski};
pub use point::{Point, PointError};
pub use store::{mask_row, PointId, PointStore, StoreOracle};
pub use tree::{TreeError, TreeMetric};

/// A metric over points of type `P`.
///
/// Implementations must satisfy, up to floating-point rounding, the metric
/// axioms: non-negativity, `d(a, a) = 0`, symmetry and the triangle
/// inequality. The [`validate`] module provides checkers that tests use to
/// enforce these axioms on every space shipped by this crate.
pub trait Metric<P: ?Sized> {
    /// The distance between `a` and `b`.
    fn dist(&self, a: &P, b: &P) -> f64;

    /// Distance from `a` to the nearest of `centers`, together with the index
    /// of that nearest center.
    ///
    /// Returns `None` when `centers` is empty.
    fn nearest(&self, a: &P, centers: &[P]) -> Option<(usize, f64)>
    where
        P: Sized,
    {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in centers.iter().enumerate() {
            let d = self.dist(a, c);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best
    }

    /// Distance from `a` to the nearest of `centers` (the k-center point-to-
    /// set distance `d(a, C)`), or `+∞` for an empty center set.
    fn dist_to_set(&self, a: &P, centers: &[P]) -> f64
    where
        P: Sized,
    {
        self.nearest(a, centers).map_or(f64::INFINITY, |(_, d)| d)
    }
}

impl<P: ?Sized, M: Metric<P> + ?Sized> Metric<P> for &M {
    fn dist(&self, a: &P, b: &P) -> f64 {
        (**self).dist(a, b)
    }
}

/// A [`Metric`] that additionally answers *batched* distance queries —
/// the trait every solver hot loop is written against.
///
/// The default methods evaluate one pair at a time through
/// [`Metric::dist`], in the exact order the scalar loops always used, so
/// finite, graph, and tree metrics (and any custom [`Metric`]) participate
/// unchanged by adding an empty `impl DistanceOracle<…> for …` block. The
/// [`StoreOracle`] over a [`PointStore`] overrides them with the blocked
/// kernels of [`batch`], which is where the structure-of-arrays layout and
/// the `‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b` factorization pay off.
///
/// Contract for implementors: every override must evaluate (and, when
/// instrumented, count) exactly one distance per point-pair, must break
/// nearest-center ties toward the lower index, and may only change the
/// *rounding* of results relative to the defaults — never which pairs are
/// evaluated.
pub trait DistanceOracle<P>: Metric<P> {
    /// Fills `out[i] = d(points[i], q)`.
    ///
    /// # Panics
    /// Panics when `out` is shorter than `points`.
    fn dists_to_one(&self, points: &[P], q: &P, out: &mut [f64]) {
        assert!(out.len() >= points.len(), "output buffer too small");
        for (p, o) in points.iter().zip(out.iter_mut()) {
            *o = self.dist(p, q);
        }
    }

    /// Tightens a running minimum-distance array against a new center:
    /// `min_dist[i] = min(min_dist[i], d(points[i], center))` — the
    /// Gonzalez inner loop.
    ///
    /// # Panics
    /// Panics when `min_dist` is shorter than `points`.
    fn dists_to_set_min(&self, points: &[P], center: &P, min_dist: &mut [f64]) {
        assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
        for (p, d) in points.iter().zip(min_dist.iter_mut()) {
            let nd = self.dist(p, center);
            if nd < *d {
                *d = nd;
            }
        }
    }

    /// Tightens a running minimum-distance array against a whole center
    /// set: `min_dist[i] = min(min_dist[i], min_c d(points[i], c))` — the
    /// k-center cost sweep, fused across centers so oracle overrides can
    /// stream each point past all centers at once (the tiled kernel's
    /// mini-GEMM). The default is exactly one [`dists_to_set_min`] pass
    /// per center, in order.
    ///
    /// [`dists_to_set_min`]: DistanceOracle::dists_to_set_min
    ///
    /// # Panics
    /// Panics when `min_dist` is shorter than `points`.
    fn dists_to_centers_min(&self, points: &[P], centers: &[P], min_dist: &mut [f64]) {
        assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
        for c in centers {
            self.dists_to_set_min(points, c, min_dist);
        }
    }

    /// Fills `out[i]` with the index and distance of the center nearest
    /// `queries[i]` (ties toward the lower index) — the batched form of
    /// [`Metric::nearest`] behind every assignment sweep. Elementwise per
    /// query, so overrides may parallelize across queries without
    /// changing any result.
    ///
    /// # Panics
    /// Panics when `out` is shorter than `queries` or `centers` is empty
    /// while `queries` is not.
    fn nearest_each(&self, queries: &[P], centers: &[P], out: &mut [(usize, f64)]) {
        assert!(out.len() >= queries.len(), "output buffer too small");
        for (q, o) in queries.iter().zip(out.iter_mut()) {
            *o = self
                .nearest(q, centers)
                .expect("nearest_each requires at least one center");
        }
    }

    /// The additively-weighted (Apollonius) form of [`dists_to_set_min`]:
    /// `min_dist[i] = min(min_dist[i], d(points[i], center) − weight)`.
    /// `min_dist` holds *weighted* distances, which may be negative once a
    /// weight exceeds a distance.
    ///
    /// [`dists_to_set_min`]: DistanceOracle::dists_to_set_min
    ///
    /// # Panics
    /// Panics when `min_dist` is shorter than `points`.
    fn dists_to_set_min_weighted(
        &self,
        points: &[P],
        center: &P,
        weight: f64,
        min_dist: &mut [f64],
    ) {
        assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
        for (p, d) in points.iter().zip(min_dist.iter_mut()) {
            let nd = self.dist(p, center) - weight;
            if nd < *d {
                *d = nd;
            }
        }
    }

    /// Index and *weighted* distance `d(q, cᵢ) − weights[i]` of the
    /// additively-weighted nearest center, ties toward the lower index;
    /// `None` for an empty center set.
    ///
    /// # Panics
    /// Panics when `weights` and `centers` differ in length.
    fn nearest_weighted(&self, q: &P, centers: &[P], weights: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(
            centers.len(),
            weights.len(),
            "one weight per center required"
        );
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in centers.iter().enumerate() {
            let d = self.dist(q, c) - weights[i];
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best
    }

    /// The additively-weighted form of [`dists_to_centers_min`]:
    /// `min_dist[i] = min(min_dist[i], min_c d(points[i], c) − w_c)`. The
    /// default is one [`dists_to_set_min_weighted`] pass per center, in
    /// ascending center order.
    ///
    /// [`dists_to_centers_min`]: DistanceOracle::dists_to_centers_min
    /// [`dists_to_set_min_weighted`]: DistanceOracle::dists_to_set_min_weighted
    ///
    /// # Panics
    /// Panics when `min_dist` is shorter than `points` or `weights` and
    /// `centers` differ in length.
    fn dists_to_centers_min_weighted(
        &self,
        points: &[P],
        centers: &[P],
        weights: &[f64],
        min_dist: &mut [f64],
    ) {
        assert!(min_dist.len() >= points.len(), "min-dist buffer too small");
        assert_eq!(
            centers.len(),
            weights.len(),
            "one weight per center required"
        );
        for (c, w) in centers.iter().zip(weights) {
            self.dists_to_set_min_weighted(points, c, *w, min_dist);
        }
    }

    /// The additively-weighted form of [`nearest_each`]: fills `out[i]`
    /// with the index and weighted distance of the weighted-nearest
    /// center of `queries[i]`, ties toward the lower index.
    ///
    /// [`nearest_each`]: DistanceOracle::nearest_each
    ///
    /// # Panics
    /// Panics when `out` is shorter than `queries`, when `weights` and
    /// `centers` differ in length, or when `centers` is empty while
    /// `queries` is not.
    fn nearest_each_weighted(
        &self,
        queries: &[P],
        centers: &[P],
        weights: &[f64],
        out: &mut [(usize, f64)],
    ) {
        assert!(out.len() >= queries.len(), "output buffer too small");
        for (q, o) in queries.iter().zip(out.iter_mut()) {
            *o = self
                .nearest_weighted(q, centers, weights)
                .expect("nearest_each_weighted requires at least one center");
        }
    }
}

impl<P> DistanceOracle<P> for Euclidean where Euclidean: Metric<P> {}
impl<P> DistanceOracle<P> for Manhattan where Manhattan: Metric<P> {}
impl<P> DistanceOracle<P> for Chebyshev where Chebyshev: Metric<P> {}
impl<P> DistanceOracle<P> for Minkowski where Minkowski: Metric<P> {}
impl DistanceOracle<usize> for FiniteMetric {}
impl DistanceOracle<usize> for TreeMetric {}

// Metric trait objects participate with the default (pointwise) batch
// loops, so `&dyn Metric<P>` plugs into oracle-bounded algorithms as-is.
impl<P> DistanceOracle<P> for dyn Metric<P> + '_ {}
impl<P> DistanceOracle<P> for dyn Metric<P> + Send + Sync + '_ {}

impl<P, M: DistanceOracle<P> + ?Sized> DistanceOracle<P> for &M {
    fn dists_to_one(&self, points: &[P], q: &P, out: &mut [f64]) {
        (**self).dists_to_one(points, q, out)
    }

    fn dists_to_set_min(&self, points: &[P], center: &P, min_dist: &mut [f64]) {
        (**self).dists_to_set_min(points, center, min_dist)
    }

    fn dists_to_centers_min(&self, points: &[P], centers: &[P], min_dist: &mut [f64]) {
        (**self).dists_to_centers_min(points, centers, min_dist)
    }

    fn nearest_each(&self, queries: &[P], centers: &[P], out: &mut [(usize, f64)]) {
        (**self).nearest_each(queries, centers, out)
    }

    fn dists_to_set_min_weighted(
        &self,
        points: &[P],
        center: &P,
        weight: f64,
        min_dist: &mut [f64],
    ) {
        (**self).dists_to_set_min_weighted(points, center, weight, min_dist)
    }

    fn nearest_weighted(&self, q: &P, centers: &[P], weights: &[f64]) -> Option<(usize, f64)> {
        (**self).nearest_weighted(q, centers, weights)
    }

    fn dists_to_centers_min_weighted(
        &self,
        points: &[P],
        centers: &[P],
        weights: &[f64],
        min_dist: &mut [f64],
    ) {
        (**self).dists_to_centers_min_weighted(points, centers, weights, min_dist)
    }

    fn nearest_each_weighted(
        &self,
        queries: &[P],
        centers: &[P],
        weights: &[f64],
        out: &mut [(usize, f64)],
    ) {
        (**self).nearest_each_weighted(queries, centers, weights, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_picks_closest_center() {
        let m = Euclidean;
        let p = Point::new(vec![0.0]);
        let centers = vec![
            Point::new(vec![5.0]),
            Point::new(vec![-1.0]),
            Point::new(vec![2.0]),
        ];
        let (idx, d) = m.nearest(&p, &centers).unwrap();
        assert_eq!(idx, 1);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_empty_is_none() {
        let m = Euclidean;
        let p = Point::new(vec![0.0]);
        assert!(m.nearest(&p, &[]).is_none());
        assert_eq!(m.dist_to_set(&p, &[]), f64::INFINITY);
    }

    #[test]
    fn metric_by_reference_works() {
        fn takes_metric<M: Metric<Point>>(m: M, a: &Point, b: &Point) -> f64 {
            m.dist(a, b)
        }
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![1.0, 0.0]);
        assert_eq!(takes_metric(Euclidean, &a, &b), 1.0);
    }

    #[test]
    fn nearest_ties_prefer_first() {
        let m = Euclidean;
        let p = Point::new(vec![0.0]);
        let centers = vec![Point::new(vec![1.0]), Point::new(vec![-1.0])];
        let (idx, _) = m.nearest(&p, &centers).unwrap();
        assert_eq!(idx, 0);
    }
}
